//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stand-in's [`Value`] tree to JSON text and parses it back.
//! Floating-point numbers are printed with Rust's shortest-round-trip formatting,
//! so `f64` (and therefore `f32`, which is widened exactly) payloads survive a
//! text round-trip bit-for-bit.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(value: DeError) -> Self {
        Error(value.0)
    }
}

/// Serialize a value to a JSON string.
///
/// # Errors
///
/// Never fails for the value model supported here; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value to JSON bytes.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a structure mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Into::into)
}

/// Deserialize a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON or a structure mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` is the shortest representation that round-trips exactly.
                let s = format!("{n:?}");
                out.push_str(&s);
                // Keep integral floats distinguishable from integers ("1.0" not "1").
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error(format!(
                "expected `{keyword}` at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code}")))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_floats_exactly() {
        for x in [0.1f32, 1.0, -3.5e-8, f32::MAX, f32::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {json}");
        }
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_escape_correctly() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
