//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace's tests use: `StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over floating-point and
//! integer ranges. The generator is SplitMix64 — deterministic, fast, and easily
//! good enough for test-input generation (the only use in this workspace).

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                // 53 uniform mantissa bits scaled into [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires a non-empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// The standard generator: SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
        }
    }
}
