//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface used by this workspace's benches — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — backed by a
//! simple wall-clock timer: a few warm-up iterations, then timed iterations until
//! the configured measurement time elapses, reporting mean and best time per
//! iteration. No statistics, plots or baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    measurement_time: Duration,
    sample_size: usize,
    name: &'a str,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed calls.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        let mut times_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        while times_ns.len() < self.sample_size
            || (Instant::now() < deadline && times_ns.len() < 10 * self.sample_size)
        {
            let start = Instant::now();
            black_box(routine());
            times_ns.push(start.elapsed().as_secs_f64() * 1e9);
            if Instant::now() >= deadline && times_ns.len() >= self.sample_size.min(10) {
                break;
            }
        }
        let n = times_ns.len().max(1) as f64;
        let mean = times_ns.iter().sum::<f64>() / n;
        let best = times_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "bench {:<48} {:>12} mean   {:>12} best   ({} iters)",
            self.name,
            format_ns(mean),
            format_ns(best),
            times_ns.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget (accepted for API compatibility; warm-up is a fixed
    /// small number of calls in this stand-in).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: BenchmarkId, mut f: F) {
        let name = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            name: &name,
        };
        f(&mut bencher);
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            name: &name,
        };
        f(&mut bencher, input);
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a new benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}:");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
