//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependencies) are unavailable in
//! this offline build environment, so this crate parses the item definition directly
//! from the `proc_macro::TokenStream` and emits impls of the stand-in's value-tree
//! `Serialize` / `Deserialize` traits. Supported shapes — exactly what the
//! workspace uses — are non-generic structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Iterate the token stream, skipping outer attributes (`#[...]`).
fn significant_tokens(input: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '#' {
                // Skip the following [...] (or ![...]) group.
                if let Some(TokenTree::Punct(bang)) = iter.peek() {
                    if bang.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next(); // the bracket group
                continue;
            }
        }
        out.push(tt);
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens = significant_tokens(input);
    let mut i = 0;
    // Skip visibility: `pub` optionally followed by a parenthesized restriction.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let keyword = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the offline stand-in");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Struct(Fields::Named(parse_named_fields(g.stream()))),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: ItemKind::Struct(Fields::Tuple(tuple_arity(g.stream()))),
            },
            _ => Item {
                name,
                kind: ItemKind::Struct(Fields::Unit),
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Parse `name: Type, ...` field lists; types are skipped (only names matter).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens = significant_tokens(stream);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens = significant_tokens(stream);
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        arity -= 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens = significant_tokens(stream);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Derive the stand-in `Serialize` trait (value-tree encoder).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        ItemKind::Struct(Fields::Tuple(arity)) => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("v{i}")).collect();
                            let values: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                values.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the stand-in `Deserialize` trait (value-tree decoder).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Map(_) => Ok({name} {{ {} }}),\n\
                     other => Err(serde::unexpected(\"struct {name}\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        ItemKind::Struct(Fields::Tuple(arity)) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Seq(items) if items.len() == {arity} => Ok({name}({})),\n\
                     other => Err(serde::unexpected(\"tuple struct {name}\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                     serde::Value::Seq(items) if items.len() == {arity} => Ok({name}::{vn}({})),\n\
                                     other => Err(serde::unexpected(\"variant {name}::{vn}\", other)),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(payload.get(\"{f}\").unwrap_or(&serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(serde::DeError(format!(\"unknown variant {{other}} of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(serde::DeError(format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::unexpected(\"enum {name}\", other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
