//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock()`
//! returns the guard directly, recovering the data from a poisoned mutex instead
//! of returning a `Result`.

use std::sync::PoisonError;

/// A mutual-exclusion primitive (std mutex with parking_lot's `lock` signature).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (std RwLock with parking_lot's signatures).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1.0f64);
        *m.lock() += 0.5;
        assert_eq!(*m.lock(), 1.5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}
