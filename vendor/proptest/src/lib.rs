//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait over range /
//! `Just` / mapped / union / collection strategies, the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros, and
//! [`ProptestConfig::with_cases`]. Unlike the real proptest there is no shrinking
//! — failures report the sampled inputs via the panic message (every strategy
//! value is `Debug`).

use rand::{Rng, RngCore, SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (deterministic per property).
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic RNG for one (property, case) pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T: Debug, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Debug + PartialOrd> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (backing `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.0.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::{Rng, RngCore};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification: a fixed length or a half-open range.
    pub trait IntoLen {
        /// Sample a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.start..self.end)
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generate vectors whose elements come from `element` and whose length comes
    /// from `len` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    // Re-exported so macro expansions can name the RNG type.
    pub use super::TestRng as _TestRng;
    /// Internal helper used by the `proptest!` macro expansion.
    pub fn _next_u64(rng: &mut TestRng) -> u64 {
        rng.0.next_u64()
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property, reporting the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each function body runs for many sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal rules must come first so the public catch-all cannot shadow them.
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                // Report the sampled inputs if the body panics.
                let inputs = format!(concat!($(concat!(stringify!($arg), " = {:?}, ")),+), $(&$arg),+);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { $body }));
                if let Err(payload) = result {
                    eprintln!("proptest case {case} failed with inputs: {inputs}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // With an explicit config.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without a config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -1.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_vec_work(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
