//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment (no network access),
//! so this crate provides the exact API surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits plus `#[derive(Serialize, Deserialize)]`
//! via the companion `serde_derive` crate. Instead of serde's visitor machinery,
//! both traits go through an explicit self-describing [`Value`] tree, which the
//! `serde_json` stand-in renders to / parses from JSON text.
//!
//! The encoding is self-consistent (round-trips losslessly, including `f32`
//! payloads) but makes no attempt to be byte-compatible with upstream serde_json.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map of string keys to values.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Construct a [`DeError`] describing an unexpected value.
pub fn unexpected(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, got {got:?}"))
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize an instance from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value does not match the expected structure.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitives -------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    other => Err(unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(unexpected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round-trip through text is lossless.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- containers -------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx;
                            $name::from_value(it.next().ok_or_else(|| DeError("tuple too short".into()))?)?
                        },)+))
                    }
                    other => Err(unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Map keys, which JSON requires to be strings.
pub trait MapKey: Sized + Ord {
    /// Render the key as a string.
    fn to_key(&self) -> String;
    /// Parse the key back from a string.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("invalid {} map key: {s}", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(usize, u64, u32, i64, i32);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
