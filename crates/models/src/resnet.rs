//! ResNet-18 and ResNet-50 graph builders (He et al., 2016).

use crate::NUM_CLASSES;
use mnn_graph::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Graph, GraphBuilder, PoolAttrs, TensorId,
};
use mnn_tensor::Shape;

fn conv_bn(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    attrs: Conv2dAttrs,
    relu: bool,
) -> TensorId {
    let out_channels = attrs.out_channels;
    let y = b.conv2d_auto(name, input, attrs, false);
    let y = b.batch_norm_auto(&format!("{name}_bn"), y, out_channels);
    if relu {
        b.activation(&format!("{name}_relu"), y, ActivationKind::Relu)
    } else {
        y
    }
}

/// Basic residual block (two 3×3 convolutions), used by ResNet-18/34.
fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> TensorId {
    let y = conv_bn(
        b,
        &format!("{name}_conv1"),
        input,
        Conv2dAttrs::square(in_ch, out_ch, 3, stride, 1),
        true,
    );
    let y = conv_bn(
        b,
        &format!("{name}_conv2"),
        y,
        Conv2dAttrs::same_3x3(out_ch, out_ch),
        false,
    );
    let shortcut = if stride != 1 || in_ch != out_ch {
        conv_bn(
            b,
            &format!("{name}_downsample"),
            input,
            Conv2dAttrs::square(in_ch, out_ch, 1, stride, 0),
            false,
        )
    } else {
        input
    };
    let sum = b.binary(&format!("{name}_add"), y, shortcut, BinaryKind::Add);
    b.activation(&format!("{name}_out_relu"), sum, ActivationKind::Relu)
}

/// Bottleneck residual block (1×1 → 3×3 → 1×1), used by ResNet-50/101/152.
fn bottleneck_block(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
) -> TensorId {
    let y = conv_bn(
        b,
        &format!("{name}_conv1"),
        input,
        Conv2dAttrs::pointwise(in_ch, mid_ch),
        true,
    );
    let y = conv_bn(
        b,
        &format!("{name}_conv2"),
        y,
        Conv2dAttrs::square(mid_ch, mid_ch, 3, stride, 1),
        true,
    );
    let y = conv_bn(
        b,
        &format!("{name}_conv3"),
        y,
        Conv2dAttrs::pointwise(mid_ch, out_ch),
        false,
    );
    let shortcut = if stride != 1 || in_ch != out_ch {
        conv_bn(
            b,
            &format!("{name}_downsample"),
            input,
            Conv2dAttrs::square(in_ch, out_ch, 1, stride, 0),
            false,
        )
    } else {
        input
    };
    let sum = b.binary(&format!("{name}_add"), y, shortcut, BinaryKind::Add);
    b.activation(&format!("{name}_out_relu"), sum, ActivationKind::Relu)
}

fn stem(b: &mut GraphBuilder, batch: usize, input_size: usize) -> TensorId {
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));
    let y = conv_bn(b, "conv1", x, Conv2dAttrs::square(3, 64, 7, 2, 3), true);
    b.pool("pool1", y, PoolAttrs::max(3, 2).with_pad(1))
}

fn head(b: &mut GraphBuilder, input: TensorId, channels: usize) -> TensorId {
    let pooled = b.pool("global_pool", input, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    let logits = b.fully_connected_auto("fc", flat, channels, NUM_CLASSES);
    b.softmax("prob", logits)
}

/// ResNet-18: four stages of two basic blocks each.
pub fn resnet_18(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("resnet-18");
    let mut y = stem(&mut b, batch, input_size);
    let mut in_ch = 64usize;
    for (stage, (out_ch, first_stride)) in
        [(64, 1), (128, 2), (256, 2), (512, 2)].iter().enumerate()
    {
        for block in 0..2 {
            let stride = if block == 0 { *first_stride } else { 1 };
            y = basic_block(
                &mut b,
                &format!("layer{}_{block}", stage + 1),
                y,
                in_ch,
                *out_ch,
                stride,
            );
            in_ch = *out_ch;
        }
    }
    let out = head(&mut b, y, 512);
    b.build(vec![out])
}

/// ResNet-50: four stages of bottleneck blocks (3, 4, 6, 3).
pub fn resnet_50(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("resnet-50");
    let mut y = stem(&mut b, batch, input_size);
    let mut in_ch = 64usize;
    let stages = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (stage, (mid_ch, out_ch, blocks, first_stride)) in stages.iter().enumerate() {
        for block in 0..*blocks {
            let stride = if block == 0 { *first_stride } else { 1 };
            y = bottleneck_block(
                &mut b,
                &format!("layer{}_{block}", stage + 1),
                y,
                in_ch,
                *mid_ch,
                *out_ch,
                stride,
            );
            in_ch = *out_ch;
        }
    }
    let out = head(&mut b, y, 2048);
    b.build(vec![out])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_shapes_follow_the_published_downsampling_chain() {
        let mut g = resnet_18(1, 224);
        g.validate().unwrap();
        g.infer_shapes().unwrap();
        let pool_node = g.nodes().iter().find(|n| n.name == "global_pool").unwrap();
        let shape = g
            .tensor_info(pool_node.inputs[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(shape.dims(), &[1, 512, 7, 7]);
    }

    #[test]
    fn resnet50_ends_with_2048_channels() {
        let mut g = resnet_50(1, 224);
        g.infer_shapes().unwrap();
        let pool_node = g.nodes().iter().find(|n| n.name == "global_pool").unwrap();
        let shape = g
            .tensor_info(pool_node.inputs[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(shape.dims(), &[1, 2048, 7, 7]);
    }

    #[test]
    fn resnet50_has_more_parameters_and_compute_than_resnet18() {
        let mut r18 = resnet_18(1, 224);
        let mut r50 = resnet_50(1, 224);
        r18.infer_shapes().unwrap();
        r50.infer_shapes().unwrap();
        assert!(r50.parameter_count() > r18.parameter_count());
        assert!(r50.total_mul_count() > r18.total_mul_count());
    }

    #[test]
    fn projection_shortcuts_appear_only_where_needed() {
        let g = resnet_18(1, 224);
        let downsamples = g
            .nodes()
            .iter()
            .filter(|n| n.name.contains("downsample") && n.op.is_conv())
            .count();
        // Stages 2-4 each start with a projection shortcut; stage 1 does not.
        assert_eq!(downsamples, 3);
    }
}
