//! SqueezeNet v1.0 and v1.1 graph builders (Iandola et al., 2016).

use crate::NUM_CLASSES;
use mnn_graph::{
    ActivationKind, Conv2dAttrs, FlattenAttrs, Graph, GraphBuilder, PoolAttrs, TensorId,
};
use mnn_tensor::Shape;

/// A fire module: squeeze 1×1 followed by parallel expand 1×1 / expand 3×3 branches
/// concatenated along channels.
fn fire(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_channels: usize,
    squeeze: usize,
    expand1: usize,
    expand3: usize,
) -> (TensorId, usize) {
    let s = b.conv2d_auto(
        &format!("{name}_squeeze1x1"),
        input,
        Conv2dAttrs::pointwise(in_channels, squeeze),
        true,
    );
    let s = b.activation(&format!("{name}_squeeze_relu"), s, ActivationKind::Relu);
    let e1 = b.conv2d_auto(
        &format!("{name}_expand1x1"),
        s,
        Conv2dAttrs::pointwise(squeeze, expand1),
        true,
    );
    let e1 = b.activation(&format!("{name}_expand1x1_relu"), e1, ActivationKind::Relu);
    let e3 = b.conv2d_auto(
        &format!("{name}_expand3x3"),
        s,
        Conv2dAttrs::same_3x3(squeeze, expand3),
        true,
    );
    let e3 = b.activation(&format!("{name}_expand3x3_relu"), e3, ActivationKind::Relu);
    let out = b.concat(&format!("{name}_concat"), vec![e1, e3]);
    (out, expand1 + expand3)
}

fn classifier_head(b: &mut GraphBuilder, input: TensorId, in_channels: usize) -> TensorId {
    // SqueezeNet ends with a 1x1 convolution to NUM_CLASSES followed by global
    // average pooling — there is no fully-connected layer.
    let conv = b.conv2d_auto(
        "conv_final",
        input,
        Conv2dAttrs::pointwise(in_channels, NUM_CLASSES),
        true,
    );
    let conv = b.activation("conv_final_relu", conv, ActivationKind::Relu);
    let pooled = b.pool("global_pool", conv, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    b.softmax("prob", flat)
}

/// SqueezeNet v1.0: 7×7 stem and late downsampling.
pub fn squeezenet_v1_0(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("squeezenet-v1.0");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));
    let y = b.conv2d_auto("conv1", x, Conv2dAttrs::square(3, 96, 7, 2, 3), true);
    let y = b.activation("conv1_relu", y, ActivationKind::Relu);
    let y = b.pool("pool1", y, PoolAttrs::max(3, 2));

    let (y, c) = fire(&mut b, "fire2", y, 96, 16, 64, 64);
    let (y, c) = fire(&mut b, "fire3", y, c, 16, 64, 64);
    let (y, c) = fire(&mut b, "fire4", y, c, 32, 128, 128);
    let y = b.pool("pool4", y, PoolAttrs::max(3, 2));
    let (y, c) = fire(&mut b, "fire5", y, c, 32, 128, 128);
    let (y, c) = fire(&mut b, "fire6", y, c, 48, 192, 192);
    let (y, c) = fire(&mut b, "fire7", y, c, 48, 192, 192);
    let (y, c) = fire(&mut b, "fire8", y, c, 64, 256, 256);
    let y = b.pool("pool8", y, PoolAttrs::max(3, 2));
    let (y, c) = fire(&mut b, "fire9", y, c, 64, 256, 256);

    let out = classifier_head(&mut b, y, c);
    b.build(vec![out])
}

/// SqueezeNet v1.1: 3×3 stem and earlier downsampling (≈2.4× less computation than
/// v1.0 at the same accuracy).
pub fn squeezenet_v1_1(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("squeezenet-v1.1");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));
    let y = b.conv2d_auto("conv1", x, Conv2dAttrs::square(3, 64, 3, 2, 1), true);
    let y = b.activation("conv1_relu", y, ActivationKind::Relu);
    let y = b.pool("pool1", y, PoolAttrs::max(3, 2));

    let (y, c) = fire(&mut b, "fire2", y, 64, 16, 64, 64);
    let (y, c) = fire(&mut b, "fire3", y, c, 16, 64, 64);
    let y = b.pool("pool3", y, PoolAttrs::max(3, 2));
    let (y, c) = fire(&mut b, "fire4", y, c, 32, 128, 128);
    let (y, c) = fire(&mut b, "fire5", y, c, 32, 128, 128);
    let y = b.pool("pool5", y, PoolAttrs::max(3, 2));
    let (y, c) = fire(&mut b, "fire6", y, c, 48, 192, 192);
    let (y, c) = fire(&mut b, "fire7", y, c, 48, 192, 192);
    let (y, c) = fire(&mut b, "fire8", y, c, 64, 256, 256);
    let (y, c) = fire(&mut b, "fire9", y, c, 64, 256, 256);

    let out = classifier_head(&mut b, y, c);
    b.build(vec![out])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_versions_validate_and_infer() {
        for builder in [squeezenet_v1_0, squeezenet_v1_1] {
            let mut g = builder(1, 224);
            g.validate().unwrap();
            g.infer_shapes().unwrap();
        }
    }

    #[test]
    fn v1_1_is_cheaper_than_v1_0() {
        let mut a = squeezenet_v1_0(1, 224);
        let mut b = squeezenet_v1_1(1, 224);
        a.infer_shapes().unwrap();
        b.infer_shapes().unwrap();
        assert!(b.total_mul_count() < a.total_mul_count() / 2);
    }

    #[test]
    fn fire_module_concatenates_expand_branches() {
        let mut b = GraphBuilder::new("fire-test");
        let x = b.input("x", Shape::nchw(1, 64, 16, 16));
        let (out, c) = fire(&mut b, "fire", x, 64, 16, 64, 64);
        assert_eq!(c, 128);
        let mut g = b.build(vec![out]);
        g.infer_shapes().unwrap();
        let shape = g.tensor_info(out).unwrap().shape.clone().unwrap();
        assert_eq!(shape.dims(), &[1, 128, 16, 16]);
    }

    #[test]
    fn squeezenet_has_no_fully_connected_layer() {
        let g = squeezenet_v1_1(1, 224);
        assert!(!g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, mnn_graph::Op::FullyConnected { .. })));
    }
}
