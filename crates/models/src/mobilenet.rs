//! MobileNet-v1 and MobileNet-v2 graph builders.

use crate::NUM_CLASSES;
use mnn_graph::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Graph, GraphBuilder, PoolAttrs, TensorId,
};
use mnn_tensor::Shape;

/// Convolution + batch-norm + activation, the building block of both MobileNets.
fn conv_bn_act(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    attrs: Conv2dAttrs,
    act: ActivationKind,
) -> TensorId {
    let out_channels = attrs.out_channels;
    let y = b.conv2d_auto(name, input, attrs, false);
    let y = b.batch_norm_auto(&format!("{name}_bn"), y, out_channels);
    if act == ActivationKind::None {
        y
    } else {
        b.activation(&format!("{name}_act"), y, act)
    }
}

/// MobileNet-v1 (Howard et al., 2017) with a width multiplier.
///
/// The body is the standard stack of 13 depthwise-separable blocks; the classifier
/// is global-average-pool → fully-connected → softmax.
pub fn mobilenet_v1(batch: usize, input_size: usize, width_multiplier: f32) -> Graph {
    let c = |ch: usize| ((ch as f32 * width_multiplier).round() as usize).max(8);
    let mut b = GraphBuilder::new("mobilenet-v1");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));

    let mut y = conv_bn_act(
        &mut b,
        "conv1",
        x,
        Conv2dAttrs::square(3, c(32), 3, 2, 1),
        ActivationKind::Relu,
    );
    let mut in_ch = c(32);

    // (output channels, stride) for the 13 depthwise-separable blocks.
    let blocks = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out, stride)) in blocks.iter().enumerate() {
        let out_ch = c(*out);
        y = conv_bn_act(
            &mut b,
            &format!("dw{i}"),
            y,
            Conv2dAttrs::depthwise_3x3(in_ch, *stride),
            ActivationKind::Relu,
        );
        y = conv_bn_act(
            &mut b,
            &format!("pw{i}"),
            y,
            Conv2dAttrs::pointwise(in_ch, out_ch),
            ActivationKind::Relu,
        );
        in_ch = out_ch;
    }

    let pooled = b.pool("global_pool", y, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    let logits = b.fully_connected_auto("fc", flat, in_ch, NUM_CLASSES);
    let prob = b.softmax("prob", logits);
    b.build(vec![prob])
}

/// MobileNet-v2 (Sandler et al., 2018): inverted residual blocks with ReLU6.
pub fn mobilenet_v2(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("mobilenet-v2");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));

    let mut y = conv_bn_act(
        &mut b,
        "conv1",
        x,
        Conv2dAttrs::square(3, 32, 3, 2, 1),
        ActivationKind::Relu6,
    );
    let mut in_ch = 32usize;

    // (expansion, output channels, repeats, first stride)
    let settings = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut block_idx = 0usize;
    for (expand, out_ch, repeats, first_stride) in settings {
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let name = format!("ir{block_idx}");
            let hidden = in_ch * expand;
            let mut z = y;
            if expand != 1 {
                z = conv_bn_act(
                    &mut b,
                    &format!("{name}_expand"),
                    z,
                    Conv2dAttrs::pointwise(in_ch, hidden),
                    ActivationKind::Relu6,
                );
            }
            z = conv_bn_act(
                &mut b,
                &format!("{name}_dw"),
                z,
                Conv2dAttrs::depthwise_3x3(hidden, stride),
                ActivationKind::Relu6,
            );
            // Linear bottleneck: no activation on the projection.
            z = conv_bn_act(
                &mut b,
                &format!("{name}_project"),
                z,
                Conv2dAttrs::pointwise(hidden, out_ch),
                ActivationKind::None,
            );
            y = if stride == 1 && in_ch == out_ch {
                b.binary(&format!("{name}_add"), z, y, BinaryKind::Add)
            } else {
                z
            };
            in_ch = out_ch;
            block_idx += 1;
        }
    }

    let y = conv_bn_act(
        &mut b,
        "conv_last",
        y,
        Conv2dAttrs::pointwise(in_ch, 1280),
        ActivationKind::Relu6,
    );
    let pooled = b.pool("global_pool", y, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    let logits = b.fully_connected_auto("fc", flat, 1280, NUM_CLASSES);
    let prob = b.softmax("prob", logits);
    b.build(vec![prob])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v1_width_multiplier_scales_parameters() {
        let full = mobilenet_v1(1, 224, 1.0);
        let half = mobilenet_v1(1, 224, 0.5);
        assert!(half.parameter_count() < full.parameter_count() / 2);
    }

    #[test]
    fn mobilenet_v1_final_spatial_size_is_7x7_at_224() {
        let mut g = mobilenet_v1(1, 224, 1.0);
        g.infer_shapes().unwrap();
        // Find the global pool input shape.
        let pool_node = g.nodes().iter().find(|n| n.name == "global_pool").unwrap();
        let shape = g
            .tensor_info(pool_node.inputs[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(shape.dims(), &[1, 1024, 7, 7]);
    }

    #[test]
    fn mobilenet_v2_uses_relu6_and_residuals() {
        let g = mobilenet_v2(1, 224);
        let relu6 = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, mnn_graph::Op::Activation(ActivationKind::Relu6)))
            .count();
        let adds = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, mnn_graph::Op::Binary(BinaryKind::Add)))
            .count();
        assert!(relu6 > 20);
        // v2 has 10 residual connections (blocks with stride 1 and equal channels).
        assert_eq!(adds, 10);
    }

    #[test]
    fn mobilenet_v2_shapes_infer_at_224() {
        let mut g = mobilenet_v2(1, 224);
        g.validate().unwrap();
        g.infer_shapes().unwrap();
        let pool_node = g.nodes().iter().find(|n| n.name == "global_pool").unwrap();
        let shape = g
            .tensor_info(pool_node.inputs[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(shape.dims(), &[1, 1280, 7, 7]);
    }
}
