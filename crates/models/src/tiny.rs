//! A small CNN used by examples, tests and quick benchmarks.

use mnn_graph::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Graph, GraphBuilder, PoolAttrs,
};
use mnn_tensor::Shape;

/// Build a small residual CNN: stem convolution, one residual block, classifier.
///
/// `input_size` is the spatial resolution (e.g. 32); the classifier has 10 classes.
pub fn tiny_cnn(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("tiny-cnn");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));
    let stem = b.conv2d_auto("stem", x, Conv2dAttrs::same_3x3(3, 16), true);
    let stem = b.batch_norm_auto("stem_bn", stem, 16);
    let stem = b.activation("stem_relu", stem, ActivationKind::Relu);

    let branch = b.conv2d_auto("block_conv1", stem, Conv2dAttrs::same_3x3(16, 16), false);
    let branch = b.activation("block_relu1", branch, ActivationKind::Relu);
    let branch = b.conv2d_auto("block_conv2", branch, Conv2dAttrs::same_3x3(16, 16), false);
    let merged = b.binary("residual_add", branch, stem, BinaryKind::Add);
    let merged = b.activation("block_relu2", merged, ActivationKind::Relu);

    let down = b.conv2d_auto("down", merged, Conv2dAttrs::square(16, 32, 3, 2, 1), false);
    let down = b.activation("down_relu", down, ActivationKind::Relu);
    let pooled = b.pool("gap", down, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    let logits = b.fully_connected_auto("classifier", flat, 32, 10);
    let prob = b.softmax("prob", logits);
    b.build(vec![prob])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_is_valid_and_small() {
        let mut g = tiny_cnn(1, 32);
        g.validate().unwrap();
        g.infer_shapes().unwrap();
        assert!(g.parameter_count() < 50_000);
        let out_shape = g
            .tensor_info(g.outputs()[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(out_shape.dims(), &[1, 10]);
    }

    #[test]
    fn batch_dimension_propagates() {
        let mut g = tiny_cnn(4, 32);
        g.infer_shapes().unwrap();
        let out_shape = g
            .tensor_info(g.outputs()[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(out_shape.dims()[0], 4);
    }
}
