//! Model zoo for MNN-rs: the networks used throughout the paper's evaluation.
//!
//! The paper benchmarks MobileNet-v1/v2, SqueezeNet-v1.0/v1.1, ResNet-18/50 and
//! Inception-v3 (Section 4.1 and Fig. 9). This crate builds those architectures on
//! the `mnn-graph` IR with deterministic synthetic weights — latency is
//! shape-dependent, not value-dependent, so synthetic weights preserve every
//! performance experiment while keeping the repository self-contained.
//!
//! ```
//! use mnn_models::{build, ModelKind};
//!
//! let graph = build(ModelKind::MobileNetV1, 1, 224);
//! assert!(graph.parameter_count() > 3_000_000);
//! ```

#![deny(missing_docs)]

mod inception;
mod mobilenet;
mod resnet;
mod squeezenet;
mod tiny;

pub use inception::inception_v3;
pub use mobilenet::{mobilenet_v1, mobilenet_v2};
pub use resnet::{resnet_18, resnet_50};
pub use squeezenet::{squeezenet_v1_0, squeezenet_v1_1};
pub use tiny::tiny_cnn;

use mnn_graph::Graph;

/// Number of classes in the classifier head (ImageNet-1k).
pub const NUM_CLASSES: usize = 1000;

/// The networks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// MobileNet-v1 (Howard et al., 2017) — depthwise-separable convolutions.
    MobileNetV1,
    /// MobileNet-v2 (Sandler et al., 2018) — inverted residuals with ReLU6.
    MobileNetV2,
    /// SqueezeNet v1.0 (Iandola et al., 2016) — fire modules, 7×7 stem.
    SqueezeNetV1_0,
    /// SqueezeNet v1.1 — fire modules, 3×3 stem, earlier downsampling.
    SqueezeNetV1_1,
    /// ResNet-18 (He et al., 2016) — basic residual blocks.
    ResNet18,
    /// ResNet-50 — bottleneck residual blocks.
    ResNet50,
    /// Inception-v3 (Szegedy et al., 2015) — includes the 1×7/7×1 factorized
    /// convolutions highlighted in the paper's Fig. 8.
    InceptionV3,
    /// A small CNN used by examples and tests.
    TinyCnn,
}

impl ModelKind {
    /// All paper-relevant model kinds (excludes the test-only tiny CNN).
    pub const PAPER_MODELS: [ModelKind; 7] = [
        ModelKind::MobileNetV1,
        ModelKind::MobileNetV2,
        ModelKind::SqueezeNetV1_0,
        ModelKind::SqueezeNetV1_1,
        ModelKind::ResNet18,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
    ];

    /// Canonical short name used in benchmark tables.
    pub const fn name(self) -> &'static str {
        match self {
            ModelKind::MobileNetV1 => "MobileNet-v1",
            ModelKind::MobileNetV2 => "MobileNet-v2",
            ModelKind::SqueezeNetV1_0 => "SqueezeNet-v1.0",
            ModelKind::SqueezeNetV1_1 => "SqueezeNet-v1.1",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::InceptionV3 => "Inception-v3",
            ModelKind::TinyCnn => "Tiny-CNN",
        }
    }

    /// Default input spatial resolution used by the paper's benchmarks.
    pub const fn default_input_size(self) -> usize {
        match self {
            ModelKind::InceptionV3 => 299,
            ModelKind::TinyCnn => 32,
            _ => 224,
        }
    }

    /// Resolve a zoo model from its [`ModelKind::name`] (case-insensitive;
    /// `_` and `-` are interchangeable), for command-line flags like
    /// `--zoo squeezenet-v1.1=64`. A few short aliases are accepted.
    pub fn from_name(name: &str) -> Option<ModelKind> {
        let normalized = name.trim().to_ascii_lowercase().replace('_', "-");
        match normalized.as_str() {
            "mobilenet-v1" | "mobilenetv1" => Some(ModelKind::MobileNetV1),
            "mobilenet-v2" | "mobilenetv2" => Some(ModelKind::MobileNetV2),
            "squeezenet-v1.0" | "squeezenetv1.0" => Some(ModelKind::SqueezeNetV1_0),
            "squeezenet-v1.1" | "squeezenetv1.1" | "squeezenet" => Some(ModelKind::SqueezeNetV1_1),
            "resnet-18" | "resnet18" => Some(ModelKind::ResNet18),
            "resnet-50" | "resnet50" => Some(ModelKind::ResNet50),
            "inception-v3" | "inceptionv3" => Some(ModelKind::InceptionV3),
            "tiny-cnn" | "tinycnn" | "tiny" => Some(ModelKind::TinyCnn),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build a zoo model with the given batch size and input resolution.
///
/// Input resolution may be reduced (e.g. to 64 or 128) to keep CPU-bound test and
/// benchmark times manageable; the architecture is unchanged.
pub fn build(kind: ModelKind, batch: usize, input_size: usize) -> Graph {
    match kind {
        ModelKind::MobileNetV1 => mobilenet_v1(batch, input_size, 1.0),
        ModelKind::MobileNetV2 => mobilenet_v2(batch, input_size),
        ModelKind::SqueezeNetV1_0 => squeezenet_v1_0(batch, input_size),
        ModelKind::SqueezeNetV1_1 => squeezenet_v1_1(batch, input_size),
        ModelKind::ResNet18 => resnet_18(batch, input_size),
        ModelKind::ResNet50 => resnet_50(batch, input_size),
        ModelKind::InceptionV3 => inception_v3(batch, input_size),
        ModelKind::TinyCnn => tiny_cnn(batch, input_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every zoo model must validate and shape-infer at its default resolution.
    #[test]
    fn all_models_build_validate_and_infer_shapes() {
        for kind in ModelKind::PAPER_MODELS {
            // Use a reduced input so shape inference stays fast; architecture is the
            // same at any resolution that survives the downsampling chain.
            let size = match kind {
                ModelKind::InceptionV3 => 299,
                _ => 224,
            };
            let mut graph = build(kind, 1, size);
            graph.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            graph
                .infer_shapes()
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let out = graph.outputs()[0];
            let shape = graph.tensor_info(out).unwrap().shape.clone().unwrap();
            assert_eq!(
                shape.dims().last().copied(),
                Some(NUM_CLASSES),
                "{kind} must end in a {NUM_CLASSES}-way classifier"
            );
        }
    }

    #[test]
    fn parameter_counts_are_in_the_right_ballpark() {
        // Published parameter counts (±35% tolerance: synthetic heads/stems differ
        // slightly from the original papers).
        let expectations = [
            (ModelKind::MobileNetV1, 4.2e6),
            (ModelKind::MobileNetV2, 3.5e6),
            (ModelKind::SqueezeNetV1_1, 1.2e6),
            (ModelKind::ResNet18, 11.7e6),
            (ModelKind::ResNet50, 25.6e6),
        ];
        for (kind, expected) in expectations {
            let graph = build(kind, 1, 224);
            let params = graph.parameter_count() as f64;
            assert!(
                params > expected * 0.65 && params < expected * 1.35,
                "{kind}: {params} parameters, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn mul_counts_rank_models_as_expected() {
        // ResNet-50 is far heavier than MobileNet-v1; SqueezeNet-v1.1 is lighter than
        // SqueezeNet-v1.0 (that is the whole point of v1.1).
        let muls = |kind| {
            let mut g = build(kind, 1, 224);
            g.infer_shapes().unwrap();
            g.total_mul_count()
        };
        let mobilenet = muls(ModelKind::MobileNetV1);
        let resnet50 = muls(ModelKind::ResNet50);
        let sq10 = muls(ModelKind::SqueezeNetV1_0);
        let sq11 = muls(ModelKind::SqueezeNetV1_1);
        assert!(resnet50 > 4 * mobilenet);
        assert!(sq11 < sq10);
    }

    #[test]
    fn inception_contains_factorized_convolutions() {
        let graph = build(ModelKind::InceptionV3, 1, 299);
        let has_1x7 = graph.nodes().iter().any(|n| {
            n.op.conv_attrs()
                .map(|a| a.kernel == (1, 7) || a.kernel == (7, 1))
                .unwrap_or(false)
        });
        assert!(has_1x7, "Inception-v3 must contain 1x7 / 7x1 convolutions");
    }

    #[test]
    fn mobilenet_contains_depthwise_convolutions() {
        let graph = build(ModelKind::MobileNetV1, 1, 224);
        let depthwise = graph
            .nodes()
            .iter()
            .filter(|n| n.op.conv_attrs().map(|a| a.groups > 1).unwrap_or(false))
            .count();
        assert_eq!(depthwise, 13, "MobileNet-v1 has 13 depthwise layers");
    }

    #[test]
    fn resnet_contains_residual_additions() {
        let graph = build(ModelKind::ResNet18, 1, 224);
        let adds = graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, mnn_graph::Op::Binary(mnn_graph::BinaryKind::Add)))
            .count();
        assert_eq!(adds, 8, "ResNet-18 has 8 residual additions");
    }

    #[test]
    fn models_build_at_reduced_resolution() {
        for kind in [
            ModelKind::MobileNetV1,
            ModelKind::ResNet18,
            ModelKind::SqueezeNetV1_1,
        ] {
            let mut g = build(kind, 1, 64);
            g.validate().unwrap();
            g.infer_shapes().unwrap();
        }
    }

    #[test]
    fn names_and_default_sizes() {
        assert_eq!(ModelKind::MobileNetV1.name(), "MobileNet-v1");
        assert_eq!(ModelKind::InceptionV3.default_input_size(), 299);
        assert_eq!(ModelKind::ResNet18.default_input_size(), 224);
        assert_eq!(ModelKind::TinyCnn.to_string(), "Tiny-CNN");
    }

    #[test]
    fn from_name_round_trips_every_canonical_name() {
        for kind in ModelKind::PAPER_MODELS
            .into_iter()
            .chain([ModelKind::TinyCnn])
        {
            assert_eq!(ModelKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::from_name("tiny"), Some(ModelKind::TinyCnn));
        assert_eq!(ModelKind::from_name("RESNET_18"), Some(ModelKind::ResNet18));
        assert_eq!(ModelKind::from_name("vgg-16"), None);
    }
}
