//! Inception-v3 graph builder (Szegedy et al., 2015).
//!
//! Inception-v3 matters to the paper beyond being a benchmark network: its
//! factorized 1×7 / 7×1 convolutions are exactly the operators NCNN's case-by-case
//! optimization leaves uncovered, producing the bottleneck of Fig. 8. The builder
//! below follows the standard v3 topology (stem, 3×A, reduction-A, 4×B with the
//! factorized convolutions, reduction-B, 2×C, classifier).

use crate::NUM_CLASSES;
use mnn_graph::{
    ActivationKind, Conv2dAttrs, FlattenAttrs, Graph, GraphBuilder, PoolAttrs, TensorId,
};
use mnn_tensor::Shape;

/// Convolution + batch-norm + ReLU, the basic Inception unit.
fn conv_bn_relu(b: &mut GraphBuilder, name: &str, input: TensorId, attrs: Conv2dAttrs) -> TensorId {
    let out_channels = attrs.out_channels;
    let y = b.conv2d_auto(name, input, attrs, false);
    let y = b.batch_norm_auto(&format!("{name}_bn"), y, out_channels);
    b.activation(&format!("{name}_relu"), y, ActivationKind::Relu)
}

/// Inception-A block: 1×1, 5×5, double-3×3 and pooled branches.
fn inception_a(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
    pool_proj: usize,
) -> (TensorId, usize) {
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 64),
    );

    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 48),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_5x5"),
        b2,
        Conv2dAttrs::square(48, 64, 5, 1, 2),
    );

    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 64),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_3x3a"),
        b3,
        Conv2dAttrs::same_3x3(64, 96),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_3x3b"),
        b3,
        Conv2dAttrs::same_3x3(96, 96),
    );

    let b4 = b.pool(
        &format!("{name}_b4_pool"),
        input,
        PoolAttrs::avg(3, 1).with_pad(1),
    );
    let b4 = conv_bn_relu(
        b,
        &format!("{name}_b4_proj"),
        b4,
        Conv2dAttrs::pointwise(in_ch, pool_proj),
    );

    let out = b.concat(&format!("{name}_concat"), vec![b1, b2, b3, b4]);
    (out, 64 + 64 + 96 + pool_proj)
}

/// Reduction-A block: strided 3×3 branches plus max pooling.
fn reduction_a(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
) -> (TensorId, usize) {
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_3x3"),
        input,
        Conv2dAttrs::square(in_ch, 384, 3, 2, 0),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 64),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_3x3a"),
        b2,
        Conv2dAttrs::same_3x3(64, 96),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_3x3b"),
        b2,
        Conv2dAttrs::square(96, 96, 3, 2, 0),
    );
    let b3 = b.pool(&format!("{name}_b3_pool"), input, PoolAttrs::max(3, 2));
    let out = b.concat(&format!("{name}_concat"), vec![b1, b2, b3]);
    (out, 384 + 96 + in_ch)
}

/// Inception-B block with the 1×7 / 7×1 factorized convolutions of Fig. 8.
fn inception_b(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
    ch7: usize,
) -> (TensorId, usize) {
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 192),
    );

    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, ch7),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x7"),
        b2,
        Conv2dAttrs::rect(ch7, ch7, (1, 7), (0, 3)),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_7x1"),
        b2,
        Conv2dAttrs::rect(ch7, 192, (7, 1), (3, 0)),
    );

    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, ch7),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_7x1a"),
        b3,
        Conv2dAttrs::rect(ch7, ch7, (7, 1), (3, 0)),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_1x7a"),
        b3,
        Conv2dAttrs::rect(ch7, ch7, (1, 7), (0, 3)),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_7x1b"),
        b3,
        Conv2dAttrs::rect(ch7, ch7, (7, 1), (3, 0)),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_1x7b"),
        b3,
        Conv2dAttrs::rect(ch7, 192, (1, 7), (0, 3)),
    );

    let b4 = b.pool(
        &format!("{name}_b4_pool"),
        input,
        PoolAttrs::avg(3, 1).with_pad(1),
    );
    let b4 = conv_bn_relu(
        b,
        &format!("{name}_b4_proj"),
        b4,
        Conv2dAttrs::pointwise(in_ch, 192),
    );

    let out = b.concat(&format!("{name}_concat"), vec![b1, b2, b3, b4]);
    (out, 192 * 4)
}

/// Reduction-B block.
fn reduction_b(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
) -> (TensorId, usize) {
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 192),
    );
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_3x3"),
        b1,
        Conv2dAttrs::square(192, 320, 3, 2, 0),
    );

    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 192),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x7"),
        b2,
        Conv2dAttrs::rect(192, 192, (1, 7), (0, 3)),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_7x1"),
        b2,
        Conv2dAttrs::rect(192, 192, (7, 1), (3, 0)),
    );
    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_3x3"),
        b2,
        Conv2dAttrs::square(192, 192, 3, 2, 0),
    );

    let b3 = b.pool(&format!("{name}_b3_pool"), input, PoolAttrs::max(3, 2));
    let out = b.concat(&format!("{name}_concat"), vec![b1, b2, b3]);
    (out, 320 + 192 + in_ch)
}

/// Inception-C block (split 1×3 / 3×1 branches).
fn inception_c(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    in_ch: usize,
) -> (TensorId, usize) {
    let b1 = conv_bn_relu(
        b,
        &format!("{name}_b1_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 320),
    );

    let b2 = conv_bn_relu(
        b,
        &format!("{name}_b2_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 384),
    );
    let b2a = conv_bn_relu(
        b,
        &format!("{name}_b2_1x3"),
        b2,
        Conv2dAttrs::rect(384, 384, (1, 3), (0, 1)),
    );
    let b2b = conv_bn_relu(
        b,
        &format!("{name}_b2_3x1"),
        b2,
        Conv2dAttrs::rect(384, 384, (3, 1), (1, 0)),
    );
    let b2 = b.concat(&format!("{name}_b2_concat"), vec![b2a, b2b]);

    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_1x1"),
        input,
        Conv2dAttrs::pointwise(in_ch, 448),
    );
    let b3 = conv_bn_relu(
        b,
        &format!("{name}_b3_3x3"),
        b3,
        Conv2dAttrs::same_3x3(448, 384),
    );
    let b3a = conv_bn_relu(
        b,
        &format!("{name}_b3_1x3"),
        b3,
        Conv2dAttrs::rect(384, 384, (1, 3), (0, 1)),
    );
    let b3b = conv_bn_relu(
        b,
        &format!("{name}_b3_3x1"),
        b3,
        Conv2dAttrs::rect(384, 384, (3, 1), (1, 0)),
    );
    let b3 = b.concat(&format!("{name}_b3_concat"), vec![b3a, b3b]);

    let b4 = b.pool(
        &format!("{name}_b4_pool"),
        input,
        PoolAttrs::avg(3, 1).with_pad(1),
    );
    let b4 = conv_bn_relu(
        b,
        &format!("{name}_b4_proj"),
        b4,
        Conv2dAttrs::pointwise(in_ch, 192),
    );

    let out = b.concat(&format!("{name}_concat"), vec![b1, b2, b3, b4]);
    (out, 320 + 768 + 768 + 192)
}

/// Build Inception-v3. The canonical input resolution is 299×299.
pub fn inception_v3(batch: usize, input_size: usize) -> Graph {
    let mut b = GraphBuilder::new("inception-v3");
    let x = b.input("data", Shape::nchw(batch, 3, input_size, input_size));

    // Stem.
    let y = conv_bn_relu(&mut b, "stem_conv1", x, Conv2dAttrs::square(3, 32, 3, 2, 0));
    let y = conv_bn_relu(
        &mut b,
        "stem_conv2",
        y,
        Conv2dAttrs::square(32, 32, 3, 1, 0),
    );
    let y = conv_bn_relu(&mut b, "stem_conv3", y, Conv2dAttrs::same_3x3(32, 64));
    let y = b.pool("stem_pool1", y, PoolAttrs::max(3, 2));
    let y = conv_bn_relu(&mut b, "stem_conv4", y, Conv2dAttrs::pointwise(64, 80));
    let y = conv_bn_relu(
        &mut b,
        "stem_conv5",
        y,
        Conv2dAttrs::square(80, 192, 3, 1, 0),
    );
    let y = b.pool("stem_pool2", y, PoolAttrs::max(3, 2));
    let mut channels = 192usize;
    let mut y = y;

    // 3 × Inception-A.
    for (i, pool_proj) in [32usize, 64, 64].iter().enumerate() {
        let (out, c) = inception_a(&mut b, &format!("mixed_a{i}"), y, channels, *pool_proj);
        y = out;
        channels = c;
    }

    // Reduction-A.
    let (out, c) = reduction_a(&mut b, "reduction_a", y, channels);
    y = out;
    channels = c;

    // 4 × Inception-B with the factorized 7-tap convolutions.
    for (i, ch7) in [128usize, 160, 160, 192].iter().enumerate() {
        let (out, c) = inception_b(&mut b, &format!("mixed_b{i}"), y, channels, *ch7);
        y = out;
        channels = c;
    }

    // Reduction-B.
    let (out, c) = reduction_b(&mut b, "reduction_b", y, channels);
    y = out;
    channels = c;

    // 2 × Inception-C.
    for i in 0..2 {
        let (out, c) = inception_c(&mut b, &format!("mixed_c{i}"), y, channels);
        y = out;
        channels = c;
    }

    let pooled = b.pool("global_pool", y, PoolAttrs::global_avg());
    let flat = b.flatten("flatten", pooled, FlattenAttrs { start_axis: 1 });
    let logits = b.fully_connected_auto("fc", flat, channels, NUM_CLASSES);
    let prob = b.softmax("prob", logits);
    b.build(vec![prob])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_v3_validates_and_infers_at_299() {
        let mut g = inception_v3(1, 299);
        g.validate().unwrap();
        g.infer_shapes().unwrap();
        let pool_node = g.nodes().iter().find(|n| n.name == "global_pool").unwrap();
        let shape = g
            .tensor_info(pool_node.inputs[0])
            .unwrap()
            .shape
            .clone()
            .unwrap();
        assert_eq!(shape.dims(), &[1, 2048, 8, 8]);
    }

    #[test]
    fn factorized_convolution_count_matches_structure() {
        let g = inception_v3(1, 299);
        let seven_tap = g
            .nodes()
            .iter()
            .filter(|n| {
                n.op.conv_attrs()
                    .map(|a| a.kernel == (1, 7) || a.kernel == (7, 1))
                    .unwrap_or(false)
            })
            .count();
        // 4 Inception-B blocks contribute 6 each; reduction-B contributes 2.
        assert_eq!(seven_tap, 4 * 6 + 2);
    }

    #[test]
    fn parameter_count_is_near_the_published_24m() {
        let g = inception_v3(1, 299);
        let params = g.parameter_count() as f64;
        assert!(params > 18e6 && params < 32e6, "got {params}");
    }
}
