//! The `Backend` abstraction (paper Fig. 5) and supporting types.

use crate::memory::BufferAllocator;
use crate::BackendError;
use mnn_graph::{Graph, Node};
use mnn_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;

/// The hardware/software solution a backend targets.
///
/// Mirrors MNN's `MNNForwardType`: the CPU plus the four GPU standards discussed in
/// the paper (Metal on iOS; OpenCL / OpenGL / Vulkan on Android).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ForwardType {
    /// Multi-threaded CPU.
    Cpu,
    /// Apple Metal (iOS GPU).
    Metal,
    /// OpenCL (Android GPU).
    OpenCl,
    /// OpenGL compute (Android GPU).
    OpenGl,
    /// Vulkan (Android GPU).
    Vulkan,
}

impl ForwardType {
    /// Whether this is a GPU-style backend (i.e. pays a per-dispatch schedule cost).
    pub const fn is_gpu(self) -> bool {
        !matches!(self, ForwardType::Cpu)
    }

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            ForwardType::Cpu => "cpu",
            ForwardType::Metal => "metal",
            ForwardType::OpenCl => "opencl",
            ForwardType::OpenGl => "opengl",
            ForwardType::Vulkan => "vulkan",
        }
    }
}

impl fmt::Display for ForwardType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a buffer should live (MNN's `StorageType`): statically planned for the
/// whole session, or dynamically recycled between operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageType {
    /// Buffer reused across operators within one inference (eligible for the memory
    /// pool / arena reuse of Fig. 3).
    #[default]
    Dynamic,
    /// Buffer that must persist for the lifetime of the session (e.g. pre-transformed
    /// weights).
    Static,
}

/// Handle to a buffer acquired from a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferHandle(pub usize);

/// Performance characteristics of a backend, used by the pre-inference cost model
/// (paper Eq. 5 and Appendix C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendDescriptor {
    /// The targeted forward type.
    pub forward_type: ForwardType,
    /// Estimated attainable floating-point throughput, in FLOPs per second.
    pub flops: f64,
    /// Per-operator scheduling overhead in milliseconds (command-buffer setup for
    /// GPU-style backends; 0 for the CPU).
    pub t_schedule_ms: f64,
    /// Number of worker threads (CPU only; 1 for GPU-style backends).
    pub threads: usize,
}

impl BackendDescriptor {
    /// Estimated time in milliseconds to run an operator with `muls` scalar
    /// multiplications on this backend (paper Eq. 5).
    pub fn op_cost_ms(&self, muls: u64) -> f64 {
        let compute = muls as f64 / self.flops * 1000.0;
        if self.forward_type.is_gpu() {
            compute + self.t_schedule_ms
        } else {
            compute
        }
    }
}

/// The convolution algorithm chosen by pre-inference for one layer
/// (the *scheme pool* of paper Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvScheme {
    /// Direct sliding-window convolution.
    SlidingWindow,
    /// im2col + GEMM.
    Im2col,
    /// Winograd `F(n×n, k×k)` with the given output tile size.
    Winograd {
        /// Output tile size `n̂` selected by the cost model (Eq. 2).
        tile: usize,
    },
    /// 1×1 convolution lowered to a Strassen-accelerated GEMM.
    Strassen1x1,
    /// Channel-wise (depthwise) direct convolution.
    Depthwise,
    /// Int8 integer kernel: activations quantized on the fly, `i32` accumulation,
    /// per-output-channel rescale (selected for quantized graphs).
    QuantizedGemm,
    /// im2col + GEMM with the runtime-detected SIMD micro-kernel (AVX2/FMA or
    /// NEON). Only enters candidate pools when the host's active
    /// [`mnn_kernels::simd::KernelBackend`] is vectorized.
    Im2colSimd,
    /// Winograd `F(n×n, k×k)` with SIMD transforms and per-position GEMMs.
    WinogradSimd {
        /// Output tile size `n̂` (same meaning as [`ConvScheme::Winograd`]).
        tile: usize,
    },
    /// Channel-wise (depthwise) convolution with per-row SIMD axpy taps.
    DepthwiseSimd,
    /// Int8 kernel with the SIMD integer GEMM stage — bit-identical to
    /// [`ConvScheme::QuantizedGemm`] (exact `i32` accumulation), just faster.
    QuantizedGemmSimd,
}

impl fmt::Display for ConvScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvScheme::SlidingWindow => write!(f, "sliding-window"),
            ConvScheme::Im2col => write!(f, "im2col"),
            ConvScheme::Winograd { tile } => write!(f, "winograd-F({tile}x{tile})"),
            ConvScheme::Strassen1x1 => write!(f, "strassen-1x1"),
            ConvScheme::Depthwise => write!(f, "depthwise"),
            ConvScheme::QuantizedGemm => write!(f, "quantized-gemm"),
            ConvScheme::Im2colSimd => write!(f, "im2col-simd"),
            ConvScheme::WinogradSimd { tile } => write!(f, "winograd-simd-F({tile}x{tile})"),
            ConvScheme::DepthwiseSimd => write!(f, "depthwise-simd"),
            ConvScheme::QuantizedGemmSimd => write!(f, "quantized-gemm-simd"),
        }
    }
}

impl ConvScheme {
    /// Parse the canonical [`Display`](fmt::Display) form back into a scheme —
    /// the inverse used by the persistent tuning cache, whose entries store
    /// schemes as their display strings.
    pub fn parse(key: &str) -> Option<ConvScheme> {
        match key {
            "sliding-window" => Some(ConvScheme::SlidingWindow),
            "im2col" => Some(ConvScheme::Im2col),
            "strassen-1x1" => Some(ConvScheme::Strassen1x1),
            "depthwise" => Some(ConvScheme::Depthwise),
            "quantized-gemm" => Some(ConvScheme::QuantizedGemm),
            "im2col-simd" => Some(ConvScheme::Im2colSimd),
            "depthwise-simd" => Some(ConvScheme::DepthwiseSimd),
            "quantized-gemm-simd" => Some(ConvScheme::QuantizedGemmSimd),
            other => {
                let (body, simd) = match other.strip_prefix("winograd-simd-F(") {
                    Some(rest) => (rest, true),
                    None => (other.strip_prefix("winograd-F(")?, false),
                };
                let body = body.strip_suffix(')')?;
                let (n, m) = body.split_once('x')?;
                let tile: usize = n.parse().ok()?;
                if m != n || tile < 2 {
                    return None;
                }
                Some(if simd {
                    ConvScheme::WinogradSimd { tile }
                } else {
                    ConvScheme::Winograd { tile }
                })
            }
        }
    }

    /// Whether this scheme requires a vectorized kernel backend. SIMD schemes
    /// enter execution plans only via tuning candidates (never via the cost
    /// model), and `on_create` rejects them when the host's active kernel
    /// backend is scalar — so a tuning cache persisted on a SIMD host can
    /// never install a kernel a scalar host lacks.
    pub fn is_simd(self) -> bool {
        matches!(
            self,
            ConvScheme::Im2colSimd
                | ConvScheme::WinogradSimd { .. }
                | ConvScheme::DepthwiseSimd
                | ConvScheme::QuantizedGemmSimd
        )
    }

    /// The scalar scheme this SIMD scheme accelerates (identity for scalar
    /// schemes). Used by tests and reporting.
    pub fn scalar_equivalent(self) -> ConvScheme {
        match self {
            ConvScheme::Im2colSimd => ConvScheme::Im2col,
            ConvScheme::WinogradSimd { tile } => ConvScheme::Winograd { tile },
            ConvScheme::DepthwiseSimd => ConvScheme::Depthwise,
            ConvScheme::QuantizedGemmSimd => ConvScheme::QuantizedGemm,
            other => other,
        }
    }

    /// Every float scheme the CPU backend can execute for `params` — the
    /// candidate pool the auto-tuner measures (a superset of what the cost
    /// model would shortlist). `max_tile` bounds the Winograd tile-size
    /// candidates. The order is deterministic so tuned plans are reproducible
    /// under an injected timer.
    ///
    /// When the host's active kernel backend is vectorized
    /// ([`mnn_kernels::simd::simd_available`]), each scalar scheme with a SIMD
    /// implementation also contributes its SIMD twin, so the tuner picks
    /// scalar-vs-SIMD empirically per geometry.
    pub fn float_conv_pool(
        params: &mnn_kernels::conv::ConvParams,
        max_tile: usize,
    ) -> Vec<ConvScheme> {
        let simd = mnn_kernels::simd::simd_available();
        if params.is_depthwise() {
            let mut pool = vec![ConvScheme::Depthwise];
            if simd {
                pool.push(ConvScheme::DepthwiseSimd);
            }
            return pool;
        }
        let mut pool = Vec::new();
        if params.is_pointwise() {
            pool.push(ConvScheme::Strassen1x1);
        }
        pool.push(ConvScheme::SlidingWindow);
        if params.im2col_applicable() {
            pool.push(ConvScheme::Im2col);
            if simd {
                pool.push(ConvScheme::Im2colSimd);
            }
        }
        if params.winograd_applicable() {
            for tile in 2..=max_tile.max(2) {
                pool.push(ConvScheme::Winograd { tile });
                if simd {
                    pool.push(ConvScheme::WinogradSimd { tile });
                }
            }
        }
        pool
    }
}

/// Per-node hints passed from pre-inference to [`Backend::on_create`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchemeHint {
    /// Convolution scheme chosen by the cost model; `None` lets the backend pick a
    /// reasonable default.
    pub conv_scheme: Option<ConvScheme>,
    /// Thread-count override.
    pub threads: Option<usize>,
}

/// A ready-to-run operator instance (MNN's `Execution`).
///
/// Constant inputs (weights, biases, statistics) are captured at creation time so
/// they can be pre-processed once (e.g. Winograd-transformed); `run` receives only
/// the activation inputs, in graph order.
pub trait Execution: Send {
    /// Execute the operator.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the tensors are inconsistent with the graph
    /// metadata captured at creation time.
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError>;

    /// Human-readable description (op + chosen scheme) for logs and debugging.
    fn describe(&self) -> String {
        "execution".to_string()
    }
}

/// The backend abstraction of paper Fig. 5.
///
/// A backend owns resource management (buffers), knows its performance envelope
/// ([`BackendDescriptor`]) and creates [`Execution`] instances for graph nodes.
pub trait Backend: Send {
    /// The forward type this backend implements.
    fn forward_type(&self) -> ForwardType;

    /// Performance characteristics used by the pre-inference cost model.
    fn descriptor(&self) -> BackendDescriptor;

    /// Whether the backend has an implementation for the operator.
    fn supports(&self, op: &mnn_graph::Op) -> bool;

    /// Create an execution instance for `node` (MNN's `onCreate`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::UnsupportedOp`] when the operator is not supported and
    /// [`BackendError::MissingConstant`] when a weight input has no constant data.
    fn on_create(
        &self,
        node: &Node,
        graph: &Graph,
        hint: &SchemeHint,
    ) -> Result<Box<dyn Execution>, BackendError>;

    /// Whether this backend's [`Execution`] instances stay valid when the input
    /// geometry changes (they read activation shapes at run time and capture no
    /// per-shape state).
    ///
    /// Pre-inference may carry such executions across a `resize_session` instead
    /// of re-creating them. Backends that bake shape-derived state into their
    /// executions at creation time — e.g. the simulated GPU backends, whose
    /// per-run virtual cost is computed from the shapes seen at `on_create` —
    /// must return `false` (the default) so resizes re-encode them.
    fn executions_are_geometry_invariant(&self) -> bool {
        false
    }

    /// Hook called before a sequence of executions (MNN's `onExecuteBegin`).
    fn on_execute_begin(&mut self) {}

    /// Hook called after a sequence of executions (MNN's `onExecuteEnd`).
    fn on_execute_end(&mut self) {}

    /// Allocate a buffer of `len` f32 elements (MNN's `onAcquireBuffer`).
    fn on_acquire_buffer(&mut self, len: usize, storage: StorageType) -> BufferHandle;

    /// Release a buffer (MNN's `onReleaseBuffer`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidBuffer`] for unknown handles.
    fn on_release_buffer(&mut self, handle: BufferHandle) -> Result<(), BackendError>;

    /// Drop all cached buffers (MNN's `onClearBuffer`).
    fn on_clear_buffer(&mut self);

    /// Copy tensor contents between backends / layouts (MNN's `onCopyBuffer`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] when the logical shapes differ.
    fn on_copy_buffer(&self, src: &Tensor, dst: &mut Tensor) -> Result<(), BackendError> {
        if src.shape() != dst.shape() {
            return Err(BackendError::ShapeMismatch(format!(
                "copy between {} and {}",
                src.shape(),
                dst.shape()
            )));
        }
        *dst = src.clone();
        Ok(())
    }

    /// Accumulated virtual time, in milliseconds, for simulated backends.
    ///
    /// The CPU backend reports 0 (callers measure wall-clock time instead).
    fn virtual_elapsed_ms(&self) -> f64 {
        0.0
    }

    /// Reset the virtual clock of a simulated backend.
    fn reset_virtual_clock(&mut self) {}
}

/// Shared buffer bookkeeping used by both the CPU and the simulated GPU backends.
#[derive(Debug, Default)]
pub(crate) struct BufferTable {
    pool: BufferAllocator,
    buffers: HashMap<usize, Vec<f32>>,
    next: usize,
}

impl BufferTable {
    pub(crate) fn acquire(&mut self, len: usize) -> BufferHandle {
        let buf = self.pool.acquire(len);
        let id = self.next;
        self.next += 1;
        self.buffers.insert(id, buf);
        BufferHandle(id)
    }

    pub(crate) fn release(&mut self, handle: BufferHandle) -> Result<(), BackendError> {
        match self.buffers.remove(&handle.0) {
            Some(buf) => {
                self.pool.release(buf);
                Ok(())
            }
            None => Err(BackendError::InvalidBuffer(handle.0)),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.buffers.clear();
        self.pool.clear();
    }

    #[cfg(test)]
    pub(crate) fn live_count(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_type_gpu_flag() {
        assert!(!ForwardType::Cpu.is_gpu());
        assert!(ForwardType::Vulkan.is_gpu());
        assert_eq!(ForwardType::Metal.to_string(), "metal");
    }

    #[test]
    fn descriptor_cost_follows_eq5() {
        let cpu = BackendDescriptor {
            forward_type: ForwardType::Cpu,
            flops: 2e9,
            t_schedule_ms: 0.0,
            threads: 4,
        };
        let gpu = BackendDescriptor {
            forward_type: ForwardType::Vulkan,
            flops: 4e9,
            t_schedule_ms: 0.01,
            threads: 1,
        };
        // 2e6 muls: CPU = 1 ms, GPU = 0.5 ms + 0.01 ms
        assert!((cpu.op_cost_ms(2_000_000) - 1.0).abs() < 1e-9);
        assert!((gpu.op_cost_ms(2_000_000) - 0.51).abs() < 1e-9);
    }

    #[test]
    fn conv_scheme_display() {
        assert_eq!(
            ConvScheme::Winograd { tile: 4 }.to_string(),
            "winograd-F(4x4)"
        );
        assert_eq!(ConvScheme::SlidingWindow.to_string(), "sliding-window");
        assert_eq!(
            ConvScheme::WinogradSimd { tile: 4 }.to_string(),
            "winograd-simd-F(4x4)"
        );
        assert_eq!(ConvScheme::Im2colSimd.to_string(), "im2col-simd");
    }

    #[test]
    fn simd_schemes_round_trip_through_parse() {
        let schemes = [
            ConvScheme::Im2colSimd,
            ConvScheme::WinogradSimd { tile: 2 },
            ConvScheme::WinogradSimd { tile: 6 },
            ConvScheme::DepthwiseSimd,
            ConvScheme::QuantizedGemmSimd,
            ConvScheme::Winograd { tile: 3 },
            ConvScheme::Im2col,
        ];
        for scheme in schemes {
            assert_eq!(ConvScheme::parse(&scheme.to_string()), Some(scheme));
        }
        assert_eq!(ConvScheme::parse("winograd-simd-F(1x1)"), None);
        assert_eq!(ConvScheme::parse("winograd-simd-F(2x3)"), None);
    }

    #[test]
    fn is_simd_and_scalar_equivalent_agree() {
        assert!(ConvScheme::Im2colSimd.is_simd());
        assert!(ConvScheme::WinogradSimd { tile: 2 }.is_simd());
        assert!(!ConvScheme::Im2col.is_simd());
        assert!(!ConvScheme::QuantizedGemm.is_simd());
        assert_eq!(
            ConvScheme::WinogradSimd { tile: 4 }.scalar_equivalent(),
            ConvScheme::Winograd { tile: 4 }
        );
        assert_eq!(
            ConvScheme::QuantizedGemmSimd.scalar_equivalent(),
            ConvScheme::QuantizedGemm
        );
        assert_eq!(
            ConvScheme::SlidingWindow.scalar_equivalent(),
            ConvScheme::SlidingWindow
        );
    }

    #[test]
    fn float_pool_offers_simd_twins_only_when_available() {
        let params = mnn_kernels::conv::ConvParams::square(8, 8, 3, 1);
        let pool = ConvScheme::float_conv_pool(&params, 4);
        let simd_count = pool.iter().filter(|s| s.is_simd()).count();
        if mnn_kernels::simd::simd_available() {
            assert!(simd_count > 0, "SIMD host must offer SIMD candidates");
            // Every SIMD candidate has its scalar twin in the same pool.
            for s in pool.iter().filter(|s| s.is_simd()) {
                assert!(pool.contains(&s.scalar_equivalent()));
            }
        } else {
            assert_eq!(simd_count, 0, "scalar host must not offer SIMD candidates");
        }
    }

    #[test]
    fn buffer_table_acquire_release_cycle() {
        let mut table = BufferTable::default();
        let h = table.acquire(32);
        assert_eq!(table.live_count(), 1);
        table.release(h).unwrap();
        assert_eq!(table.live_count(), 0);
        assert!(table.release(h).is_err());
    }
}
