//! Wall-clock micro-benchmarking of [`Execution`] instances — the measured half
//! of the `mnn-tune` subsystem.
//!
//! The paper's *semi-automated search* argument is that the engine should pick
//! kernels from **measurements on the actual device** when it can afford to,
//! falling back to the closed-form cost model otherwise. These helpers are the
//! measurement primitive: run a prepared execution a few times on real inputs
//! and report the best observed wall-clock time (minimum, not mean — the
//! minimum is the least noisy estimator of a kernel's attainable latency on a
//! machine with background load).

use crate::traits::Execution;
use crate::BackendError;
use mnn_tensor::{Shape, Tensor};
use std::time::Instant;

/// Time `runs` invocations of `f` after `warmup` untimed ones and return the
/// minimum observed milliseconds. `runs` is clamped to at least 1.
pub fn time_runs(warmup: usize, runs: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Micro-benchmark one prepared execution on the given activation inputs:
/// `warmup` untimed runs, then `runs` timed ones; returns the minimum
/// wall-clock milliseconds.
///
/// Standalone convenience over [`time_runs`] for one-off measurements (tools,
/// calibration scripts). The tuner itself composes [`time_runs`] through its
/// injectable timer abstraction instead, so tests can script candidate
/// latencies deterministically.
///
/// The first (validation) run propagates any execution error, so an
/// inapplicable candidate fails fast instead of being timed; subsequent runs of
/// a valid execution are assumed not to fail.
///
/// # Errors
///
/// Returns the [`BackendError`] of the validation run when the execution
/// rejects the inputs.
pub fn measure_execution_ms(
    execution: &mut dyn Execution,
    inputs: &[&Tensor],
    warmup: usize,
    runs: usize,
) -> Result<f64, BackendError> {
    let mut output = Tensor::zeros(Shape::vector(1));
    execution.run(inputs, &mut output)?;
    Ok(time_runs(warmup, runs, || {
        let _ = execution.run(inputs, &mut output);
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuBackend;
    use crate::traits::{Backend, ConvScheme, SchemeHint};
    use mnn_graph::{Conv2dAttrs, GraphBuilder};

    #[test]
    fn time_runs_reports_positive_minimum() {
        let ms = time_runs(1, 3, || {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                acc += (i as f32).sqrt();
            }
            std::hint::black_box(acc);
        });
        assert!(ms.is_finite());
        assert!(ms >= 0.0);
    }

    #[test]
    fn measure_execution_times_a_real_convolution() {
        let mut b = GraphBuilder::new("timing");
        let x = b.input("x", mnn_tensor::Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        let backend = CpuBackend::new(1);
        let hint = SchemeHint {
            conv_scheme: Some(ConvScheme::SlidingWindow),
            threads: Some(1),
        };
        let mut exec = backend.on_create(&g.nodes()[0], &g, &hint).unwrap();
        let input = Tensor::zeros(mnn_tensor::Shape::nchw(1, 3, 8, 8));
        let ms = measure_execution_ms(exec.as_mut(), &[&input], 1, 2).unwrap();
        assert!(ms.is_finite() && ms >= 0.0);
    }

    #[test]
    fn measure_execution_surfaces_validation_errors() {
        let mut b = GraphBuilder::new("timing-err");
        let x = b.input("x", mnn_tensor::Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        let backend = CpuBackend::new(1);
        let mut exec = backend
            .on_create(&g.nodes()[0], &g, &SchemeHint::default())
            .unwrap();
        // 2-D input: the convolution rejects it on the validation run.
        let bad = Tensor::zeros(mnn_tensor::Shape::matrix(4, 4));
        assert!(measure_execution_ms(exec.as_mut(), &[&bad], 0, 1).is_err());
    }
}
