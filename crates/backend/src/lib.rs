//! Backend abstraction for the MNN-rs inference engine.
//!
//! The paper's backend abstraction module (Section 3.4, Fig. 5) encapsulates every
//! hardware platform / software standard behind a uniform `Backend` class so that
//! resource management, memory allocation and scheduling are decoupled from operator
//! implementations. This crate provides the Rust equivalent:
//!
//! * [`Backend`] — the trait mirroring Fig. 5 (`on_create`, `on_acquire_buffer`,
//!   `on_release_buffer`, `on_copy_buffer`, execution begin/end hooks).
//! * [`CpuBackend`] — the real CPU backend executing `mnn-kernels` with a
//!   configurable thread count.
//! * [`SimGpuBackend`] — simulated Metal / OpenCL / OpenGL / Vulkan backends: they
//!   run the same kernels on the CPU for bit-exact outputs, while a virtual clock
//!   charges the analytic GPU cost (`MUL / FLOPS + t_schedule`, paper Eq. 5 and
//!   Appendix C). This substitutes for physical mobile GPUs; see `DESIGN.md`.
//! * [`memory`] — the memory pool / static memory planner behind the paper's
//!   preparation–execution decoupling (Fig. 3).
//! * [`capability`] — per-backend operator support and the Table 4 statistics.
//! * [`timing`] — wall-clock micro-benchmarking of prepared executions, the
//!   measurement primitive used by the `mnn-tune` auto-tuner.

#![deny(missing_docs)]

pub mod capability;
mod cpu;
mod error;
pub mod memory;
mod sim_gpu;
pub mod timing;
mod traits;

pub use cpu::CpuBackend;
pub use error::BackendError;
pub use sim_gpu::{GpuProfile, SimGpuBackend};
pub use traits::{
    Backend, BackendDescriptor, BufferHandle, ConvScheme, Execution, ForwardType, SchemeHint,
    StorageType,
};
