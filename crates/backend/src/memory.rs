//! Memory pooling and static memory planning.
//!
//! MNN decouples memory management from computation (paper Section 3.2, Fig. 3):
//! during pre-inference the engine *virtually* walks the graph, records every
//! allocation and release, and computes a reusable memory plan; the actual inference
//! then only computes, touching a pre-allocated arena.
//!
//! Two cooperating pieces implement that here:
//!
//! * [`BufferAllocator`] — a size-classed runtime pool that recycles buffers between
//!   acquire/release calls (MNN's `BufferAllocator` equivalent).
//! * [`MemoryPlanner`] / [`MemoryArena`] — the static planner: `plan_acquire` /
//!   `plan_release` calls made while virtually walking the graph produce
//!   offset/size assignments with aggressive reuse; [`MemoryArena`] then backs the
//!   whole plan with a single allocation.

use std::collections::BTreeMap;

/// Identifier of a planned buffer within a [`MemoryPlanner`] / [`MemoryArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub usize);

/// A size-classed pool of reusable `f32` buffers.
///
/// `acquire` returns a zero-length-agnostic buffer of at least the requested length
/// (buffers are recycled by exact length class); `release` puts it back for reuse.
/// The pool tracks the total number of elements ever allocated versus recycled so
/// tests can assert reuse actually happens.
#[derive(Debug, Default)]
pub struct BufferAllocator {
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    allocated_elements: usize,
    recycled_hits: usize,
}

impl BufferAllocator {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a buffer with exactly `len` elements (zero-filled).
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        if let Some(bufs) = self.free.get_mut(&len) {
            if let Some(mut buf) = bufs.pop() {
                self.recycled_hits += 1;
                buf.iter_mut().for_each(|v| *v = 0.0);
                return buf;
            }
        }
        self.allocated_elements += len;
        vec![0.0; len]
    }

    /// Return a buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// Total number of elements allocated from the system (not counting reuse).
    pub fn allocated_elements(&self) -> usize {
        self.allocated_elements
    }

    /// Number of acquisitions served from the free list.
    pub fn recycled_hits(&self) -> usize {
        self.recycled_hits
    }

    /// Drop all cached buffers (the `on_clear_buffer` hook of Fig. 5).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

/// A planned buffer assignment: byte-less (element) offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBuffer {
    /// Offset (in `f32` elements) inside the arena.
    pub offset: usize,
    /// Length in elements.
    pub len: usize,
}

/// Static memory planner: performs the "virtual walk" of Fig. 3.
///
/// Call [`MemoryPlanner::plan_acquire`] when an intermediate tensor becomes live and
/// [`MemoryPlanner::plan_release`] when its last consumer has run; the planner packs
/// live intervals into an arena with first-fit reuse of freed regions.
#[derive(Debug, Default)]
pub struct MemoryPlanner {
    buffers: Vec<PlannedBuffer>,
    /// Free regions as (offset, len), kept sorted by offset and coalesced.
    free_regions: Vec<(usize, usize)>,
    total: usize,
    live: Vec<bool>,
}

impl MemoryPlanner {
    /// Create an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `len` elements; returns its plan id.
    pub fn plan_acquire(&mut self, len: usize) -> PlanId {
        let offset = self.find_region(len);
        let id = PlanId(self.buffers.len());
        self.buffers.push(PlannedBuffer { offset, len });
        self.live.push(true);
        id
    }

    /// Record that the buffer is no longer needed; its region becomes reusable.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or already released.
    pub fn plan_release(&mut self, id: PlanId) {
        assert!(id.0 < self.buffers.len(), "unknown plan id {id:?}");
        assert!(self.live[id.0], "buffer {id:?} released twice");
        self.live[id.0] = false;
        let buf = self.buffers[id.0];
        self.free_regions.push((buf.offset, buf.len));
        self.coalesce();
    }

    /// Total arena size (in elements) required by the plan so far.
    pub fn total_elements(&self) -> usize {
        self.total
    }

    /// The assignment for a planned buffer.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn buffer(&self, id: PlanId) -> PlannedBuffer {
        self.buffers[id.0]
    }

    /// All planned buffers, in allocation order.
    pub fn buffers(&self) -> &[PlannedBuffer] {
        &self.buffers
    }

    fn find_region(&mut self, len: usize) -> usize {
        // first-fit over the free list
        if let Some(pos) = self
            .free_regions
            .iter()
            .position(|&(_, free_len)| free_len >= len)
        {
            let (offset, free_len) = self.free_regions[pos];
            if free_len == len {
                self.free_regions.remove(pos);
            } else {
                self.free_regions[pos] = (offset + len, free_len - len);
            }
            return offset;
        }
        let offset = self.total;
        self.total += len;
        offset
    }

    fn coalesce(&mut self) {
        self.free_regions.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.free_regions.len());
        for &(offset, len) in &self.free_regions {
            if let Some(last) = merged.last_mut() {
                if last.0 + last.1 == offset {
                    last.1 += len;
                    continue;
                }
            }
            merged.push((offset, len));
        }
        // Trim a trailing free region that touches the end of the arena.
        if let Some(&(offset, len)) = merged.last() {
            if offset + len == self.total {
                self.total = offset;
                merged.pop();
            }
        }
        self.free_regions = merged;
    }
}

/// The arena backing a finished [`MemoryPlanner`]: one contiguous allocation reused
/// across every inference of a session.
#[derive(Debug)]
pub struct MemoryArena {
    data: Vec<f32>,
    buffers: Vec<PlannedBuffer>,
}

impl MemoryArena {
    /// Materialize the plan into a single allocation.
    pub fn from_planner(planner: &MemoryPlanner) -> Self {
        // The arena must cover every planned buffer even if trailing space was trimmed
        // after releases.
        let needed = planner
            .buffers()
            .iter()
            .map(|b| b.offset + b.len)
            .max()
            .unwrap_or(0)
            .max(planner.total_elements());
        MemoryArena {
            data: vec![0.0; needed],
            buffers: planner.buffers().to_vec(),
        }
    }

    /// Total arena size in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy data into a planned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the planned length.
    pub fn write(&mut self, id: PlanId, src: &[f32]) {
        let buf = self.buffers[id.0];
        assert_eq!(src.len(), buf.len, "write length mismatch");
        self.data[buf.offset..buf.offset + buf.len].copy_from_slice(src);
    }

    /// Read a planned buffer.
    pub fn read(&self, id: PlanId) -> &[f32] {
        let buf = self.buffers[id.0];
        &self.data[buf.offset..buf.offset + buf.len]
    }

    /// Mutable access to a planned buffer.
    pub fn read_mut(&mut self, id: PlanId) -> &mut [f32] {
        let buf = self.buffers[id.0];
        &mut self.data[buf.offset..buf.offset + buf.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocator_recycles_buffers() {
        let mut pool = BufferAllocator::new();
        let a = pool.acquire(128);
        pool.release(a);
        let _b = pool.acquire(128);
        assert_eq!(pool.recycled_hits(), 1);
        assert_eq!(pool.allocated_elements(), 128);
    }

    #[test]
    fn allocator_zeroes_recycled_buffers() {
        let mut pool = BufferAllocator::new();
        let mut a = pool.acquire(4);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        pool.release(a);
        let b = pool.acquire(4);
        assert_eq!(b, vec![0.0; 4]);
    }

    #[test]
    fn allocator_clear_drops_cache() {
        let mut pool = BufferAllocator::new();
        let a = pool.acquire(64);
        pool.release(a);
        pool.clear();
        let _b = pool.acquire(64);
        assert_eq!(pool.recycled_hits(), 0);
        assert_eq!(pool.allocated_elements(), 128);
    }

    #[test]
    fn planner_reuses_released_regions() {
        // Mirrors Fig. 3: Alloc 0, Alloc 1, Free 0, Alloc 2 — buffer 2 should reuse
        // buffer 0's region when it fits.
        let mut planner = MemoryPlanner::new();
        let b0 = planner.plan_acquire(100);
        let _b1 = planner.plan_acquire(50);
        planner.plan_release(b0);
        let b2 = planner.plan_acquire(80);
        assert_eq!(planner.buffer(b2).offset, planner.buffer(b0).offset);
        assert_eq!(planner.total_elements(), 150);
    }

    #[test]
    fn planner_grows_when_no_region_fits() {
        let mut planner = MemoryPlanner::new();
        let b0 = planner.plan_acquire(10);
        planner.plan_release(b0);
        let b1 = planner.plan_acquire(20);
        // The freed 10-element region does not fit 20 elements; since it sat at the
        // arena tail it was trimmed, so the new buffer starts at offset 0 again.
        assert_eq!(planner.buffer(b1).offset, 0);
        assert_eq!(planner.total_elements(), 20);
    }

    #[test]
    fn planner_coalesces_adjacent_free_regions() {
        let mut planner = MemoryPlanner::new();
        let a = planner.plan_acquire(10);
        let b = planner.plan_acquire(10);
        let _hold = planner.plan_acquire(10);
        planner.plan_release(a);
        planner.plan_release(b);
        // Regions [0,10) and [10,20) coalesce into [0,20) so a 20-element buffer fits.
        let c = planner.plan_acquire(20);
        assert_eq!(planner.buffer(c).offset, 0);
        assert_eq!(planner.total_elements(), 30);
    }

    #[test]
    fn arena_reads_back_what_was_written() {
        let mut planner = MemoryPlanner::new();
        let a = planner.plan_acquire(4);
        let b = planner.plan_acquire(2);
        let mut arena = MemoryArena::from_planner(&planner);
        arena.write(a, &[1.0, 2.0, 3.0, 4.0]);
        arena.write(b, &[9.0, 8.0]);
        assert_eq!(arena.read(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(arena.read(b), &[9.0, 8.0]);
    }

    /// Live buffers must never overlap, whatever the acquire/release pattern.
    #[derive(Debug, Clone)]
    enum PlanOp {
        Acquire(usize),
        ReleaseOldestLive,
    }

    fn plan_ops() -> impl Strategy<Value = Vec<PlanOp>> {
        proptest::collection::vec(
            prop_oneof![
                (1usize..512).prop_map(PlanOp::Acquire),
                Just(PlanOp::ReleaseOldestLive),
            ],
            1..64,
        )
    }

    proptest! {
        #[test]
        fn prop_live_buffers_never_overlap(ops in plan_ops()) {
            let mut planner = MemoryPlanner::new();
            let mut live: Vec<PlanId> = Vec::new();
            for op in ops {
                match op {
                    PlanOp::Acquire(len) => live.push(planner.plan_acquire(len)),
                    PlanOp::ReleaseOldestLive => {
                        if !live.is_empty() {
                            planner.plan_release(live.remove(0));
                        }
                    }
                }
                // check pairwise disjointness of live buffers
                for i in 0..live.len() {
                    for j in (i + 1)..live.len() {
                        let a = planner.buffer(live[i]);
                        let b = planner.buffer(live[j]);
                        let disjoint = a.offset + a.len <= b.offset || b.offset + b.len <= a.offset;
                        prop_assert!(disjoint, "buffers {:?} and {:?} overlap", a, b);
                    }
                }
            }
        }

        #[test]
        fn prop_arena_covers_every_buffer(ops in plan_ops()) {
            let mut planner = MemoryPlanner::new();
            let mut live: Vec<PlanId> = Vec::new();
            let mut all: Vec<PlanId> = Vec::new();
            for op in ops {
                match op {
                    PlanOp::Acquire(len) => {
                        let id = planner.plan_acquire(len);
                        live.push(id);
                        all.push(id);
                    }
                    PlanOp::ReleaseOldestLive => {
                        if !live.is_empty() {
                            planner.plan_release(live.remove(0));
                        }
                    }
                }
            }
            let arena = MemoryArena::from_planner(&planner);
            for id in all {
                let b = planner.buffer(id);
                prop_assert!(b.offset + b.len <= arena.len());
            }
        }

        #[test]
        fn prop_reuse_saves_memory_versus_no_reuse(
            size in 1usize..256, count in 3usize..32
        ) {
            // A sequential chain of equally-sized buffers (each released right after
            // its successor is allocated) needs at most two slots worth of arena —
            // this is exactly the saving Fig. 3's pre-planned reuse provides.
            let mut planner = MemoryPlanner::new();
            let mut prev: Option<PlanId> = None;
            for _ in 0..count {
                let id = planner.plan_acquire(size);
                if let Some(p) = prev.take() {
                    planner.plan_release(p);
                }
                prev = Some(id);
            }
            prop_assert!(planner.total_elements() <= 2 * size);
            prop_assert!(planner.total_elements() < count * size);
        }
    }
}
