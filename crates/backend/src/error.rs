//! Error type for backend operations.

use std::error::Error;
use std::fmt;

/// Errors produced while creating or running backend executions.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The backend does not implement the requested operator.
    UnsupportedOp {
        /// Operator name.
        op: String,
        /// Backend name.
        backend: String,
    },
    /// An execution received tensors whose shapes do not match the graph metadata.
    ShapeMismatch(String),
    /// A required constant input (weight/bias) was missing at execution-creation time.
    MissingConstant(String),
    /// A tensor had an unexpected data type or layout.
    InvalidTensor(String),
    /// A buffer handle was used after release or from the wrong backend.
    InvalidBuffer(usize),
    /// A convolution scheme requires a kernel backend (e.g. AVX2/NEON SIMD)
    /// the host does not provide — raised by `on_create` so the tuner skips
    /// the candidate and stale cache entries degrade to re-tuning instead of
    /// dispatching a kernel that does not exist here.
    UnavailableScheme {
        /// Display form of the requested scheme (e.g. `im2col-simd`).
        scheme: String,
        /// The host's active kernel set (e.g. `scalar`).
        kernel_set: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::UnsupportedOp { op, backend } => {
                write!(f, "operator '{op}' is not supported by backend '{backend}'")
            }
            BackendError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            BackendError::MissingConstant(name) => write!(f, "missing constant tensor '{name}'"),
            BackendError::InvalidTensor(msg) => write!(f, "invalid tensor: {msg}"),
            BackendError::InvalidBuffer(id) => write!(f, "invalid buffer handle {id}"),
            BackendError::UnavailableScheme { scheme, kernel_set } => write!(
                f,
                "scheme '{scheme}' requires a SIMD kernel backend, but the active kernel set is '{kernel_set}'"
            ),
        }
    }
}

impl Error for BackendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_the_problem() {
        let e = BackendError::UnsupportedOp {
            op: "Conv2d".into(),
            backend: "vulkan".into(),
        };
        assert!(e.to_string().contains("Conv2d"));
        assert!(e.to_string().contains("vulkan"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<BackendError>();
    }
}
