//! Backend capability statistics (paper Table 4).
//!
//! Table 4 of the paper compares how many operators each mobile inference engine
//! supports per backend. The numbers for the external engines are reproduced as
//! published (they are survey data, not measurements); the MNN-rs numbers are
//! computed from the operator set this crate actually implements so the table stays
//! honest about the reproduction.

use crate::traits::{Backend, ForwardType};
use crate::{CpuBackend, GpuProfile, SimGpuBackend};
use mnn_graph::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Op, PoolAttrs, QuantAttrs, SoftmaxAttrs,
};

/// Operator-count entry for one engine (one row of Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCapability {
    /// Engine name.
    pub engine: &'static str,
    /// Operator count on the CPU backend.
    pub cpu_ops: Option<u32>,
    /// Operator count on the Metal backend.
    pub metal_ops: Option<u32>,
    /// Operator count on the OpenGL backend.
    pub opengl_ops: Option<u32>,
    /// Operator count on the OpenCL backend.
    pub opencl_ops: Option<u32>,
    /// Operator count on the Vulkan backend.
    pub vulkan_ops: Option<u32>,
    /// Supported operating systems.
    pub supported_os: &'static str,
}

/// The published Table 4 rows for the external engines plus MNN as reported in the
/// paper. `None` marks "not supported / not applicable".
pub fn published_capabilities() -> Vec<EngineCapability> {
    vec![
        EngineCapability {
            engine: "CoreML",
            cpu_ops: Some(110),
            metal_ops: Some(110),
            opengl_ops: None,
            opencl_ops: None,
            vulkan_ops: None,
            supported_os: "iOS",
        },
        EngineCapability {
            engine: "TF-Lite",
            cpu_ops: Some(93),
            metal_ops: Some(17),
            opengl_ops: Some(19),
            opencl_ops: None,
            vulkan_ops: None,
            supported_os: "iOS+Android",
        },
        EngineCapability {
            engine: "MACE",
            cpu_ops: Some(61),
            metal_ops: None,
            opengl_ops: None,
            opencl_ops: Some(29),
            vulkan_ops: None,
            supported_os: "Android",
        },
        EngineCapability {
            engine: "NCNN",
            cpu_ops: Some(65),
            metal_ops: None,
            opengl_ops: None,
            opencl_ops: None,
            vulkan_ops: Some(32),
            supported_os: "iOS+Android",
        },
        EngineCapability {
            engine: "MNN (paper)",
            cpu_ops: Some(94),
            metal_ops: Some(55),
            opengl_ops: Some(15),
            opencl_ops: Some(33),
            vulkan_ops: Some(35),
            supported_os: "iOS+Android",
        },
    ]
}

/// One representative instance of every operator kind in the MNN-rs IR, used to
/// probe what a backend supports.
pub fn representative_ops() -> Vec<Op> {
    vec![
        Op::Conv2d(Conv2dAttrs::same_3x3(8, 8)),
        Op::Conv2dFused {
            attrs: Conv2dAttrs::pointwise(8, 8),
            activation: ActivationKind::Relu,
        },
        Op::Pool(PoolAttrs::max(2, 2)),
        Op::Activation(ActivationKind::Relu),
        Op::Binary(BinaryKind::Add),
        Op::Concat,
        Op::BatchNorm { epsilon: 1e-5 },
        Op::Scale,
        Op::FullyConnected {
            in_features: 8,
            out_features: 8,
            has_bias: true,
        },
        Op::Conv2dQuantized {
            attrs: Conv2dAttrs::same_3x3(8, 8),
            activation: ActivationKind::None,
            quant: QuantAttrs {
                weight_scales: vec![1.0; 8],
            },
        },
        Op::FullyConnectedQuantized {
            in_features: 8,
            out_features: 8,
            has_bias: false,
            quant: QuantAttrs {
                weight_scales: vec![1.0; 8],
            },
        },
        Op::Softmax(SoftmaxAttrs::default()),
        Op::Flatten(FlattenAttrs::default()),
        Op::Reshape { shape: vec![1, 8] },
    ]
}

/// Count how many of the representative operators a backend supports.
pub fn supported_op_count(backend: &dyn Backend) -> u32 {
    representative_ops()
        .iter()
        .filter(|op| backend.supports(op))
        .count() as u32
}

/// Capability row computed for this reproduction's own backends.
pub fn mnn_rs_capability() -> EngineCapability {
    let cpu = CpuBackend::new(1);
    let gpu = |ft| SimGpuBackend::new(ft, GpuProfile::GENERIC);
    EngineCapability {
        engine: "MNN-rs (this repo)",
        cpu_ops: Some(supported_op_count(&cpu)),
        metal_ops: Some(supported_op_count(&gpu(ForwardType::Metal))),
        opengl_ops: Some(supported_op_count(&gpu(ForwardType::OpenGl))),
        opencl_ops: Some(supported_op_count(&gpu(ForwardType::OpenCl))),
        vulkan_ops: Some(supported_op_count(&gpu(ForwardType::Vulkan))),
        supported_os: "any (Rust)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_table_matches_paper_headline_numbers() {
        let rows = published_capabilities();
        let mnn = rows.iter().find(|r| r.engine == "MNN (paper)").unwrap();
        assert_eq!(mnn.cpu_ops, Some(94));
        assert_eq!(mnn.vulkan_ops, Some(35));
        let ncnn = rows.iter().find(|r| r.engine == "NCNN").unwrap();
        assert_eq!(ncnn.vulkan_ops, Some(32));
        assert_eq!(ncnn.opencl_ops, None);
    }

    #[test]
    fn mnn_supports_most_backends_in_the_published_table() {
        // The paper's headline claim: MNN covers more backend standards than the
        // other engines.
        let rows = published_capabilities();
        let count_backends = |r: &EngineCapability| {
            [r.metal_ops, r.opengl_ops, r.opencl_ops, r.vulkan_ops]
                .iter()
                .filter(|v| v.is_some())
                .count()
        };
        let mnn = rows.iter().find(|r| r.engine == "MNN (paper)").unwrap();
        for other in rows.iter().filter(|r| r.engine != "MNN (paper)") {
            assert!(count_backends(mnn) >= count_backends(other));
        }
    }

    #[test]
    fn cpu_supports_every_representative_op() {
        let cpu = CpuBackend::new(1);
        assert_eq!(supported_op_count(&cpu), representative_ops().len() as u32);
    }

    #[test]
    fn gpu_supports_a_strict_subset() {
        let cpu_count = supported_op_count(&CpuBackend::new(1));
        let vulkan = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::GENERIC);
        let vulkan_count = supported_op_count(&vulkan);
        assert!(vulkan_count > 0);
        assert!(vulkan_count < cpu_count);
    }

    #[test]
    fn computed_capability_row_is_consistent() {
        let row = mnn_rs_capability();
        assert_eq!(row.cpu_ops, Some(representative_ops().len() as u32));
        assert_eq!(row.metal_ops, row.vulkan_ops);
    }
}
