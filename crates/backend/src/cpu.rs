//! The CPU backend: real multi-threaded execution of `mnn-kernels`.

use crate::traits::{
    Backend, BackendDescriptor, BufferHandle, BufferTable, ConvScheme, Execution, ForwardType,
    SchemeHint, StorageType,
};
use crate::BackendError;
use mnn_graph::{ActivationKind, Conv2dAttrs, Graph, Node, Op, QuantAttrs, TensorId};
use mnn_kernels::activation::Activation;
use mnn_kernels::conv::ConvParams;
use mnn_kernels::simd::KernelBackend;
use mnn_kernels::winograd::PreparedWinogradWeights;
use mnn_kernels::{activation, conv, elementwise, fc, norm, pool, quant, winograd};
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;

/// Estimated sustained FLOPs per second per CPU thread used by the cost model when
/// no device profile is supplied (the appendix's default of 2 GFLOPs).
pub const DEFAULT_FLOPS_PER_THREAD: f64 = 2.0e9;

/// The real CPU backend.
///
/// Executes every operator with the kernels from `mnn-kernels`, using up to
/// `threads` worker threads for the heavy ones (convolution / GEMM).
#[derive(Debug)]
pub struct CpuBackend {
    threads: usize,
    flops: f64,
    buffers: BufferTable,
}

impl CpuBackend {
    /// Create a CPU backend with the given thread count.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        CpuBackend {
            threads,
            flops: DEFAULT_FLOPS_PER_THREAD * threads as f64,
            buffers: BufferTable::default(),
        }
    }

    /// Override the FLOPS estimate used by the cost model (e.g. from a device
    /// profile).
    pub fn with_flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn constant(graph: &Graph, id: TensorId, what: &str) -> Result<Arc<Tensor>, BackendError> {
        graph
            .constant_arc(id)
            .ok_or_else(|| BackendError::MissingConstant(what.to_string()))
    }

    /// Pick a default convolution scheme when pre-inference did not provide one.
    pub fn default_conv_scheme(params: &ConvParams) -> ConvScheme {
        if params.is_depthwise() {
            ConvScheme::Depthwise
        } else if params.is_pointwise() {
            ConvScheme::Strassen1x1
        } else if params.winograd_applicable() {
            let tile = winograd::optimal_tile_size(
                params.kernel_h,
                params.in_channels,
                params.out_channels,
                6,
            );
            if tile > 1 {
                ConvScheme::Winograd { tile }
            } else {
                ConvScheme::SlidingWindow
            }
        } else if params.groups == 1 {
            ConvScheme::Im2col
        } else {
            ConvScheme::SlidingWindow
        }
    }

    /// Default scheme for a convolution over int8 weights: the integer kernel,
    /// except for depthwise layers, which are deterministically kept in `f32`
    /// (one input channel per group leaves no integer-GEMM reuse to exploit; the
    /// weights are dequantized once at preparation time instead).
    pub fn default_quantized_conv_scheme(params: &ConvParams) -> ConvScheme {
        if params.is_depthwise() {
            ConvScheme::Depthwise
        } else {
            ConvScheme::QuantizedGemm
        }
    }
}

impl Backend for CpuBackend {
    fn forward_type(&self) -> ForwardType {
        ForwardType::Cpu
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            forward_type: ForwardType::Cpu,
            flops: self.flops,
            t_schedule_ms: 0.0,
            threads: self.threads,
        }
    }

    fn supports(&self, _op: &Op) -> bool {
        // The CPU backend implements the whole operator set — it is the universal
        // fallback required by the hybrid-scheduling rule of Section 3.2.
        true
    }

    fn executions_are_geometry_invariant(&self) -> bool {
        // CPU executions capture constants (weights, transformed Winograd
        // kernels) but read activation shapes at run time, so they survive a
        // `resize_session` unchanged.
        true
    }

    fn on_create(
        &self,
        node: &Node,
        graph: &Graph,
        hint: &SchemeHint,
    ) -> Result<Box<dyn Execution>, BackendError> {
        let threads = hint.threads.unwrap_or(self.threads);
        match &node.op {
            Op::Conv2d(attrs) => {
                create_conv(node, graph, attrs, ActivationKind::None, hint, threads)
            }
            Op::Conv2dFused { attrs, activation } => {
                create_conv(node, graph, attrs, *activation, hint, threads)
            }
            Op::Conv2dQuantized {
                attrs,
                activation,
                quant,
            } => create_conv_quantized(node, graph, attrs, *activation, quant, hint, threads),
            Op::Pool(attrs) => Ok(Box::new(PoolExec {
                params: attrs.to_pool_params(),
            })),
            Op::Activation(kind) => Ok(Box::new(ActivationExec {
                activation: kind.to_kernel(),
            })),
            Op::Binary(kind) => Ok(Box::new(BinaryExec {
                op: kind.to_kernel(),
            })),
            Op::Concat => Ok(Box::new(ConcatExec)),
            Op::BatchNorm { epsilon } => {
                let mean = Self::constant(graph, node.inputs[1], "batchnorm mean")?;
                let var = Self::constant(graph, node.inputs[2], "batchnorm variance")?;
                let gamma = Self::constant(graph, node.inputs[3], "batchnorm gamma")?;
                let beta = Self::constant(graph, node.inputs[4], "batchnorm beta")?;
                Ok(Box::new(BatchNormExec {
                    mean,
                    var,
                    gamma,
                    beta,
                    epsilon: *epsilon,
                }))
            }
            Op::Scale => {
                let scale = Self::constant(graph, node.inputs[1], "scale factors")?;
                let shift = Self::constant(graph, node.inputs[2], "scale shifts")?;
                Ok(Box::new(ScaleExec { scale, shift }))
            }
            Op::FullyConnected {
                in_features,
                out_features,
                has_bias,
            } => {
                let weight = Self::constant(graph, node.inputs[1], "fc weight")?;
                let bias = if *has_bias {
                    Some(Self::constant(graph, node.inputs[2], "fc bias")?)
                } else {
                    None
                };
                Ok(Box::new(FullyConnectedExec {
                    weight,
                    bias,
                    in_features: *in_features,
                    out_features: *out_features,
                    threads,
                }))
            }
            Op::FullyConnectedQuantized {
                in_features,
                out_features,
                has_bias,
                quant,
            } => {
                let weight = Self::constant(graph, node.inputs[1], "quantized fc weight")?;
                weight.try_data_i8().map_err(|_| {
                    BackendError::InvalidTensor(format!(
                        "quantized fully-connected '{}' expects an i8 weight constant, got {}",
                        node.name,
                        weight.data_type()
                    ))
                })?;
                let bias = if *has_bias {
                    Some(Self::constant(graph, node.inputs[2], "fc bias")?)
                } else {
                    None
                };
                Ok(Box::new(QuantFullyConnectedExec {
                    weight,
                    scales: quant.weight_scales.clone(),
                    bias,
                    in_features: *in_features,
                    out_features: *out_features,
                    threads,
                }))
            }
            Op::Softmax(_) => Ok(Box::new(SoftmaxExec)),
            Op::Flatten(attrs) => Ok(Box::new(ReshapeLikeExec {
                kind: ReshapeKind::Flatten {
                    start_axis: attrs.start_axis,
                },
            })),
            Op::Reshape { shape } => Ok(Box::new(ReshapeLikeExec {
                kind: ReshapeKind::Explicit {
                    shape: Shape::new(shape.clone()),
                },
            })),
        }
    }

    fn on_acquire_buffer(&mut self, len: usize, _storage: StorageType) -> BufferHandle {
        self.buffers.acquire(len)
    }

    fn on_release_buffer(&mut self, handle: BufferHandle) -> Result<(), BackendError> {
        self.buffers.release(handle)
    }

    fn on_clear_buffer(&mut self) {
        self.buffers.clear();
    }
}

fn create_conv(
    node: &Node,
    graph: &Graph,
    attrs: &Conv2dAttrs,
    fused: ActivationKind,
    hint: &SchemeHint,
    threads: usize,
) -> Result<Box<dyn Execution>, BackendError> {
    let weight = CpuBackend::constant(graph, node.inputs[1], "conv weight")?;
    let bias = if attrs.has_bias {
        Some(CpuBackend::constant(graph, node.inputs[2], "conv bias")?)
    } else {
        None
    };
    let params = attrs.to_conv_params();
    let scheme = hint
        .conv_scheme
        .unwrap_or_else(|| CpuBackend::default_conv_scheme(&params));
    build_float_conv_exec(params, scheme, weight, bias, fused, threads)
}

/// Convolution over int8 weights. The integer scheme captures the i8 weights
/// directly; any `f32` scheme (e.g. the deterministic depthwise fallback)
/// dequantizes the weights **once**, at preparation time, so the per-run cost of
/// the fallback is identical to a float convolution.
fn create_conv_quantized(
    node: &Node,
    graph: &Graph,
    attrs: &Conv2dAttrs,
    fused: ActivationKind,
    quant: &QuantAttrs,
    hint: &SchemeHint,
    threads: usize,
) -> Result<Box<dyn Execution>, BackendError> {
    let weight = CpuBackend::constant(graph, node.inputs[1], "quantized conv weight")?;
    let weight_q = weight.try_data_i8().map_err(|_| {
        BackendError::InvalidTensor(format!(
            "quantized convolution '{}' expects an i8 weight constant, got {}",
            node.name,
            weight.data_type()
        ))
    })?;
    let params = attrs.to_conv_params();
    if quant.weight_scales.len() != params.out_channels {
        return Err(BackendError::InvalidTensor(format!(
            "quantized convolution '{}' has {} weight scales for {} output channels",
            node.name,
            quant.weight_scales.len(),
            params.out_channels
        )));
    }
    let bias = if attrs.has_bias {
        Some(CpuBackend::constant(graph, node.inputs[2], "conv bias")?)
    } else {
        None
    };
    let scheme = hint
        .conv_scheme
        .unwrap_or_else(|| CpuBackend::default_quantized_conv_scheme(&params));
    if matches!(
        scheme,
        ConvScheme::QuantizedGemm | ConvScheme::QuantizedGemmSimd
    ) {
        let kernel_backend = kernel_backend_for(scheme)?;
        return Ok(Box::new(QuantConvExec {
            params,
            scheme,
            kernel_backend,
            weight,
            scales: quant.weight_scales.clone(),
            bias,
            activation: fused.to_kernel(),
            threads,
        }));
    }
    // f32 fallback: dequantize the weights once and run the float kernels.
    let dequantized = quant::dequantize_per_channel(weight_q, &quant.weight_scales);
    let weight_f32 = Arc::new(Tensor::from_vec(weight.shape().clone(), dequantized));
    build_float_conv_exec(params, scheme, weight_f32, bias, fused, threads)
}

/// Resolve the kernel backend `scheme` dispatches to. SIMD schemes require
/// the host's active kernel backend to be vectorized; otherwise `on_create`
/// fails here, which makes the tuner skip the candidate and lets stale cache
/// entries from a SIMD host degrade to re-tuning instead of mis-dispatching.
fn kernel_backend_for(scheme: ConvScheme) -> Result<KernelBackend, BackendError> {
    if !scheme.is_simd() {
        return Ok(KernelBackend::Scalar);
    }
    let active = KernelBackend::active();
    if active.is_simd() {
        Ok(active)
    } else {
        Err(BackendError::UnavailableScheme {
            scheme: scheme.to_string(),
            kernel_set: active.name().to_string(),
        })
    }
}

fn build_float_conv_exec(
    params: ConvParams,
    scheme: ConvScheme,
    weight: Arc<Tensor>,
    bias: Option<Arc<Tensor>>,
    fused: ActivationKind,
    threads: usize,
) -> Result<Box<dyn Execution>, BackendError> {
    if matches!(
        scheme,
        ConvScheme::QuantizedGemm | ConvScheme::QuantizedGemmSimd
    ) {
        return Err(BackendError::InvalidTensor(
            "the quantized-gemm scheme requires i8 weights (float convolution given)".into(),
        ));
    }
    let kernel_backend = kernel_backend_for(scheme)?;
    let prepared = match scheme {
        ConvScheme::Winograd { tile } | ConvScheme::WinogradSimd { tile } => Some(
            winograd::prepare_winograd_weights(&params, tile, weight.data_f32()),
        ),
        _ => None,
    };
    Ok(Box::new(ConvExec {
        params,
        scheme,
        kernel_backend,
        weight,
        bias,
        prepared,
        activation: fused.to_kernel(),
        threads,
    }))
}

// ---------------------------------------------------------------------------
// Execution implementations
// ---------------------------------------------------------------------------

/// Convolution execution with a pre-selected scheme.
struct ConvExec {
    params: ConvParams,
    scheme: ConvScheme,
    /// `Scalar` for scalar schemes; the host's active SIMD backend for `*Simd`
    /// schemes (validated at creation time by `kernel_backend_for`).
    kernel_backend: KernelBackend,
    weight: Arc<Tensor>,
    bias: Option<Arc<Tensor>>,
    /// Winograd weights transformed once at creation time (paper Fig. 3:
    /// preparation work hoisted out of the inference loop).
    prepared: Option<PreparedWinogradWeights>,
    activation: Activation,
    threads: usize,
}

impl Execution for ConvExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs
            .first()
            .ok_or_else(|| BackendError::ShapeMismatch("convolution needs one input".into()))?;
        let shape = input.shape();
        if !shape.is_4d() {
            return Err(BackendError::InvalidTensor(format!(
                "convolution input must be 4-D, got {shape}"
            )));
        }
        let (batch, in_h, in_w) = (shape.batch(), shape.height(), shape.width());
        let x = input.data_f32();
        let w = self.weight.data_f32();
        let empty: &[f32] = &[];
        let b = self.bias.as_ref().map(|t| t.data_f32()).unwrap_or(empty);
        let mut result = match self.scheme {
            ConvScheme::SlidingWindow => {
                conv::conv2d_sliding_window(&self.params, self.threads, batch, in_h, in_w, x, w, b)
            }
            ConvScheme::Im2col => {
                conv::conv2d_im2col(&self.params, self.threads, batch, in_h, in_w, x, w, b)
            }
            ConvScheme::Im2colSimd => conv::conv2d_im2col_with(
                self.kernel_backend,
                &self.params,
                self.threads,
                batch,
                in_h,
                in_w,
                x,
                w,
                b,
            ),
            ConvScheme::Winograd { tile } | ConvScheme::WinogradSimd { tile } => {
                // `create_conv` always prepares weights for the selected tile; a
                // mismatch is a programming error. Do NOT silently re-transform
                // here — that would hide the per-run cost that preparation
                // decoupling exists to remove.
                let prepared = self
                    .prepared
                    .as_ref()
                    .filter(|p| p.tile() == tile)
                    .expect("Winograd execution created without matching prepared weights");
                winograd::conv2d_winograd_prepared_with(
                    self.kernel_backend,
                    &self.params,
                    prepared,
                    self.threads,
                    batch,
                    in_h,
                    in_w,
                    x,
                    b,
                )
            }
            ConvScheme::Strassen1x1 => {
                conv::conv2d_1x1_strassen(&self.params, batch, in_h, in_w, x, w, b)
            }
            ConvScheme::Depthwise => {
                conv::conv2d_depthwise(&self.params, self.threads, batch, in_h, in_w, x, w, b)
            }
            ConvScheme::DepthwiseSimd => conv::conv2d_depthwise_with(
                self.kernel_backend,
                &self.params,
                self.threads,
                batch,
                in_h,
                in_w,
                x,
                w,
                b,
            ),
            ConvScheme::QuantizedGemm | ConvScheme::QuantizedGemmSimd => {
                // Float executions are never created with the integer scheme
                // (`build_float_conv_exec` rejects it).
                return Err(BackendError::InvalidTensor(
                    "float convolution execution cannot run the quantized-gemm scheme".into(),
                ));
            }
        };
        self.activation.apply(&mut result);
        let (oh, ow) = self.params.output_size(in_h, in_w);
        *output = Tensor::from_vec(Shape::nchw(batch, self.params.out_channels, oh, ow), result);
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "conv {}x{} via {}",
            self.params.kernel_h, self.params.kernel_w, self.scheme
        )
    }
}

/// Convolution executed with the int8 integer kernel: i8 weights captured at
/// creation, activations quantized per sample at run time, `i32` accumulation.
struct QuantConvExec {
    params: ConvParams,
    scheme: ConvScheme,
    /// `Scalar` for `QuantizedGemm`, the host's active SIMD backend for
    /// `QuantizedGemmSimd`. Both produce identical bits (exact `i32` math).
    kernel_backend: KernelBackend,
    weight: Arc<Tensor>,
    scales: Vec<f32>,
    bias: Option<Arc<Tensor>>,
    activation: Activation,
    threads: usize,
}

impl Execution for QuantConvExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs.first().ok_or_else(|| {
            BackendError::ShapeMismatch("quantized convolution needs one input".into())
        })?;
        let shape = input.shape();
        if !shape.is_4d() {
            return Err(BackendError::InvalidTensor(format!(
                "convolution input must be 4-D, got {shape}"
            )));
        }
        let (batch, in_h, in_w) = (shape.batch(), shape.height(), shape.width());
        let empty: &[f32] = &[];
        let b = self.bias.as_ref().map(|t| t.data_f32()).unwrap_or(empty);
        let weight_q = self
            .weight
            .try_data_i8()
            .map_err(|e| BackendError::InvalidTensor(e.to_string()))?;
        let mut result = quant::conv2d_quantized_with(
            self.kernel_backend,
            &self.params,
            self.threads,
            batch,
            in_h,
            in_w,
            input.data_f32(),
            weight_q,
            &self.scales,
            b,
        );
        self.activation.apply(&mut result);
        let (oh, ow) = self.params.output_size(in_h, in_w);
        *output = Tensor::from_vec(Shape::nchw(batch, self.params.out_channels, oh, ow), result);
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "conv {}x{} via {} (int8)",
            self.params.kernel_h, self.params.kernel_w, self.scheme
        )
    }
}

/// Fully-connected layer over int8 weights with per-output-feature scales.
struct QuantFullyConnectedExec {
    weight: Arc<Tensor>,
    scales: Vec<f32>,
    bias: Option<Arc<Tensor>>,
    in_features: usize,
    out_features: usize,
    threads: usize,
}

impl Execution for QuantFullyConnectedExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs[0];
        let total = input.shape().num_elements();
        if !total.is_multiple_of(self.in_features) {
            return Err(BackendError::ShapeMismatch(format!(
                "fully-connected input {} is not divisible by in_features {}",
                input.shape(),
                self.in_features
            )));
        }
        let batch = total / self.in_features;
        let empty: &[f32] = &[];
        let bias = self.bias.as_ref().map(|t| t.data_f32()).unwrap_or(empty);
        let weight_q = self
            .weight
            .try_data_i8()
            .map_err(|e| BackendError::InvalidTensor(e.to_string()))?;
        let data = quant::fully_connected_quantized(
            self.threads,
            batch,
            self.in_features,
            self.out_features,
            input.data_f32(),
            weight_q,
            &self.scales,
            bias,
        );
        *output = Tensor::from_vec(Shape::matrix(batch, self.out_features), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "fully-connected via quantized-gemm (int8)".to_string()
    }
}

struct PoolExec {
    params: pool::PoolParams,
}

impl Execution for PoolExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs[0];
        let s = input.shape();
        let result = pool::pool2d(
            &self.params,
            s.batch(),
            s.channels(),
            s.height(),
            s.width(),
            input.data_f32(),
        );
        let (oh, ow) = self.params.output_size(s.height(), s.width());
        *output = Tensor::from_vec(Shape::nchw(s.batch(), s.channels(), oh, ow), result);
        Ok(())
    }

    fn describe(&self) -> String {
        "pool".to_string()
    }
}

struct ActivationExec {
    activation: Activation,
}

impl Execution for ActivationExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let mut data = inputs[0].data_f32().to_vec();
        self.activation.apply(&mut data);
        *output = Tensor::from_vec(inputs[0].shape().clone(), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "activation".to_string()
    }
}

struct BinaryExec {
    op: elementwise::BinaryOp,
}

impl Execution for BinaryExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        if inputs[0].shape() != inputs[1].shape() {
            return Err(BackendError::ShapeMismatch(format!(
                "binary operands {} vs {}",
                inputs[0].shape(),
                inputs[1].shape()
            )));
        }
        let data = elementwise::binary(self.op, inputs[0].data_f32(), inputs[1].data_f32());
        *output = Tensor::from_vec(inputs[0].shape().clone(), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "binary".to_string()
    }
}

struct ConcatExec;

impl Execution for ConcatExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let first = inputs[0].shape();
        let plane = first.height() * first.width();
        let batch = first.batch();
        let parts: Vec<(&[f32], usize)> = inputs
            .iter()
            .map(|t| (t.data_f32(), t.shape().channels()))
            .collect();
        let (data, channels) = elementwise::concat_channels(&parts, batch, plane);
        *output = Tensor::from_vec(
            Shape::nchw(batch, channels, first.height(), first.width()),
            data,
        );
        Ok(())
    }

    fn describe(&self) -> String {
        "concat".to_string()
    }
}

struct BatchNormExec {
    mean: Arc<Tensor>,
    var: Arc<Tensor>,
    gamma: Arc<Tensor>,
    beta: Arc<Tensor>,
    epsilon: f32,
}

impl Execution for BatchNormExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let s = inputs[0].shape();
        let mut data = inputs[0].data_f32().to_vec();
        norm::batch_norm_inplace(
            &mut data,
            s.batch(),
            s.channels(),
            s.height() * s.width(),
            self.mean.data_f32(),
            self.var.data_f32(),
            self.gamma.data_f32(),
            self.beta.data_f32(),
            self.epsilon,
        );
        *output = Tensor::from_vec(s.clone(), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "batch-norm".to_string()
    }
}

struct ScaleExec {
    scale: Arc<Tensor>,
    shift: Arc<Tensor>,
}

impl Execution for ScaleExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let s = inputs[0].shape();
        let mut data = inputs[0].data_f32().to_vec();
        norm::scale_inplace(
            &mut data,
            s.batch(),
            s.channels(),
            s.height() * s.width(),
            self.scale.data_f32(),
            self.shift.data_f32(),
        );
        *output = Tensor::from_vec(s.clone(), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "scale".to_string()
    }
}

struct FullyConnectedExec {
    weight: Arc<Tensor>,
    bias: Option<Arc<Tensor>>,
    in_features: usize,
    out_features: usize,
    threads: usize,
}

impl Execution for FullyConnectedExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs[0];
        let total = input.shape().num_elements();
        if !total.is_multiple_of(self.in_features) {
            return Err(BackendError::ShapeMismatch(format!(
                "fully-connected input {} is not divisible by in_features {}",
                input.shape(),
                self.in_features
            )));
        }
        let batch = total / self.in_features;
        let empty: &[f32] = &[];
        let bias = self.bias.as_ref().map(|t| t.data_f32()).unwrap_or(empty);
        let data = fc::fully_connected(
            self.threads,
            batch,
            self.in_features,
            self.out_features,
            input.data_f32(),
            self.weight.data_f32(),
            bias,
        );
        *output = Tensor::from_vec(Shape::matrix(batch, self.out_features), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "fully-connected".to_string()
    }
}

struct SoftmaxExec;

impl Execution for SoftmaxExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let s = inputs[0].shape();
        let axis_len = *s.dims().last().unwrap_or(&1);
        let mut data = inputs[0].data_f32().to_vec();
        activation::softmax_inplace(&mut data, axis_len.max(1));
        *output = Tensor::from_vec(s.clone(), data);
        Ok(())
    }

    fn describe(&self) -> String {
        "softmax".to_string()
    }
}

enum ReshapeKind {
    Flatten { start_axis: usize },
    Explicit { shape: Shape },
}

struct ReshapeLikeExec {
    kind: ReshapeKind,
}

impl Execution for ReshapeLikeExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        let input = inputs[0];
        let target = match &self.kind {
            ReshapeKind::Flatten { start_axis } => {
                let dims = input.shape().dims();
                let axis = (*start_axis).min(dims.len());
                let mut out: Vec<usize> = dims[..axis].to_vec();
                out.push(dims[axis..].iter().product());
                Shape::new(out)
            }
            ReshapeKind::Explicit { shape } => shape.clone(),
        };
        if target.num_elements() != input.shape().num_elements() {
            return Err(BackendError::ShapeMismatch(format!(
                "reshape from {} to {} changes element count",
                input.shape(),
                target
            )));
        }
        *output = Tensor::from_vec(target, input.data_f32().to_vec());
        Ok(())
    }

    fn describe(&self) -> String {
        "reshape".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{GraphBuilder, PoolAttrs};
    use mnn_tensor::Shape;

    fn run_single_node_graph(
        graph: &Graph,
        backend: &CpuBackend,
        input: &Tensor,
        hint: &SchemeHint,
    ) -> Tensor {
        let node = &graph.nodes()[0];
        let mut exec = backend.on_create(node, graph, hint).unwrap();
        let mut out = Tensor::zeros(Shape::vector(1));
        exec.run(&[input], &mut out).unwrap();
        out
    }

    #[test]
    fn conv_execution_matches_reference_for_every_scheme() {
        let mut b = GraphBuilder::new("conv");
        let x = b.input("x", Shape::nchw(1, 3, 12, 12));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 8), true);
        let g = b.build(vec![y]);
        let backend = CpuBackend::new(2);

        let input = Tensor::from_vec(
            Shape::nchw(1, 3, 12, 12),
            (0..432).map(|v| (v % 17) as f32 * 0.1 - 0.8).collect(),
        );
        let reference = run_single_node_graph(
            &g,
            &backend,
            &input,
            &SchemeHint {
                conv_scheme: Some(ConvScheme::SlidingWindow),
                threads: Some(1),
            },
        );
        for scheme in [
            ConvScheme::Im2col,
            ConvScheme::Winograd { tile: 2 },
            ConvScheme::Winograd { tile: 4 },
        ] {
            let got = run_single_node_graph(
                &g,
                &backend,
                &input,
                &SchemeHint {
                    conv_scheme: Some(scheme),
                    threads: Some(2),
                },
            );
            assert_eq!(got.shape(), reference.shape());
            assert!(
                reference.max_abs_diff(&got) < 1e-2,
                "scheme {scheme} diverged"
            );
        }
    }

    #[test]
    fn pointwise_conv_uses_strassen_by_default() {
        let params = Conv2dAttrs::pointwise(16, 32).to_conv_params();
        assert_eq!(
            CpuBackend::default_conv_scheme(&params),
            ConvScheme::Strassen1x1
        );
        let dw = Conv2dAttrs::depthwise_3x3(16, 1).to_conv_params();
        assert_eq!(CpuBackend::default_conv_scheme(&dw), ConvScheme::Depthwise);
    }

    #[test]
    fn pool_and_activation_executions() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 2, 4, 4));
        let y = b.pool("pool", x, PoolAttrs::max(2, 2));
        let g = b.build(vec![y]);
        let backend = CpuBackend::new(1);
        let input = Tensor::from_vec(Shape::nchw(1, 2, 4, 4), (0..32).map(|v| v as f32).collect());
        let out = run_single_node_graph(&g, &backend, &input, &SchemeHint::default());
        assert_eq!(out.shape(), &Shape::nchw(1, 2, 2, 2));
        assert_eq!(out.data_f32()[0], 5.0);
    }

    #[test]
    fn unsupported_missing_weight_is_reported() {
        let mut g = Graph::new("broken");
        let x = g.add_tensor("x", Some(Shape::nchw(1, 3, 8, 8)));
        g.mark_input(x);
        // weight slot exists but holds no constant data
        let w = g.add_tensor("w", Some(Shape::new(vec![8, 3, 3, 3])));
        let (_, out) = g.add_node("conv", Op::Conv2d(Conv2dAttrs::same_3x3(3, 8)), vec![x, w]);
        g.mark_output(out);
        let backend = CpuBackend::new(1);
        let err = backend
            .on_create(&g.nodes()[0], &g, &SchemeHint::default())
            .err()
            .unwrap();
        assert!(matches!(err, BackendError::MissingConstant(_)));
    }

    #[test]
    fn cpu_backend_descriptor_scales_with_threads() {
        let d1 = CpuBackend::new(1).descriptor();
        let d4 = CpuBackend::new(4).descriptor();
        assert!(d4.flops > d1.flops);
        assert_eq!(d1.t_schedule_ms, 0.0);
        assert!(!d1.forward_type.is_gpu());
    }

    #[test]
    fn buffer_management_roundtrip() {
        let mut backend = CpuBackend::new(1);
        let h = backend.on_acquire_buffer(64, StorageType::Dynamic);
        backend.on_release_buffer(h).unwrap();
        assert!(backend.on_release_buffer(h).is_err());
        backend.on_clear_buffer();
    }

    #[test]
    fn copy_buffer_checks_shapes() {
        let backend = CpuBackend::new(1);
        let src = Tensor::full(Shape::vector(4), 2.0);
        let mut dst = Tensor::zeros(Shape::vector(4));
        backend.on_copy_buffer(&src, &mut dst).unwrap();
        assert_eq!(dst.data_f32(), src.data_f32());
        let mut wrong = Tensor::zeros(Shape::vector(5));
        assert!(backend.on_copy_buffer(&src, &mut wrong).is_err());
    }
}
