//! Simulated GPU backends (Metal / OpenCL / OpenGL / Vulkan).
//!
//! Physical mobile GPUs are not available in this reproduction, so GPU backends are
//! *simulated*: operator outputs are computed with the same CPU kernels (bit-exact
//! results, so hybrid scheduling stays correct), while a virtual clock charges the
//! analytic cost of paper Eq. 5,
//!
//! ```text
//! C_op = MUL / FLOPS * 1000 + t_schedule        (milliseconds)
//! ```
//!
//! using the per-GPU `FLOPS` figures and per-standard `t_schedule` constants from the
//! paper's Appendix C. The backend also models the *preparation–execution
//! decoupling* of Section 3.2: when decoupling is enabled, the command-buffer setup
//! cost (`t_schedule`) is paid once at execution-creation time instead of on every
//! inference, which is what produces the large GPU-side gains of Table 2.

use crate::cpu::CpuBackend;
use crate::traits::{
    Backend, BackendDescriptor, BufferHandle, BufferTable, Execution, ForwardType, SchemeHint,
    StorageType,
};
use crate::BackendError;
use mnn_graph::{Graph, Node, Op};
use mnn_tensor::Tensor;
use parking_lot::Mutex;
use std::sync::Arc;

/// Performance profile of a (simulated) mobile GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Marketing name of the GPU (e.g. `"Mali-G72"`).
    pub name: &'static str,
    /// Sustained throughput in FLOPs per second (Appendix C table).
    pub flops: f64,
}

impl GpuProfile {
    /// A generic GPU not present in the appendix list: the paper assigns 4 GFLOPS.
    pub const GENERIC: GpuProfile = GpuProfile {
        name: "generic-gpu",
        flops: 4.0e9,
    };

    /// Look up a GPU from the paper's Appendix C list by name.
    pub fn by_name(name: &str) -> GpuProfile {
        const TABLE: &[(&str, f64)] = &[
            ("Mali-T860", 6.83e9),
            ("Mali-T880", 6.83e9),
            ("Mali-G51", 6.83e9),
            ("Mali-G52", 6.83e9),
            ("Mali-G71", 31.61e9),
            ("Mali-G72", 31.61e9),
            ("Mali-G76", 31.61e9),
            ("Adreno 505", 3.19e9),
            ("Adreno 506", 4.74e9),
            ("Adreno 512", 14.23e9),
            ("Adreno 530", 25.40e9),
            ("Adreno 540", 42.74e9),
            ("Adreno 615", 16.77e9),
            ("Adreno 616", 18.77e9),
            ("Adreno 618", 18.77e9),
            ("Adreno 630", 42.74e9),
            ("Adreno 640", 42.74e9),
        ];
        TABLE
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(name, flops)| GpuProfile { name, flops })
            .unwrap_or(GpuProfile::GENERIC)
    }
}

/// Per-standard command scheduling overhead in milliseconds (paper Appendix C):
/// OpenCL/OpenGL pay ≈0.05 ms per kernel enqueue, Vulkan/Metal only submit command
/// buffers and pay ≈0.01 ms.
pub fn t_schedule_ms(standard: ForwardType) -> f64 {
    match standard {
        ForwardType::OpenCl | ForwardType::OpenGl => 0.05,
        ForwardType::Vulkan | ForwardType::Metal => 0.01,
        ForwardType::Cpu => 0.0,
    }
}

/// A simulated GPU backend.
pub struct SimGpuBackend {
    standard: ForwardType,
    profile: GpuProfile,
    /// Inner CPU backend used to actually produce numeric results.
    cpu: CpuBackend,
    /// Accumulated virtual time in milliseconds.
    clock: Arc<Mutex<f64>>,
    /// Whether preparation (command encoding) is decoupled from execution.
    decoupled: bool,
    buffers: BufferTable,
}

impl SimGpuBackend {
    /// Create a simulated backend for the given GPU standard and profile.
    ///
    /// # Panics
    ///
    /// Panics if `standard` is [`ForwardType::Cpu`].
    pub fn new(standard: ForwardType, profile: GpuProfile) -> Self {
        assert!(
            standard.is_gpu(),
            "SimGpuBackend requires a GPU forward type"
        );
        SimGpuBackend {
            standard,
            profile,
            cpu: CpuBackend::new(1),
            clock: Arc::new(Mutex::new(0.0)),
            decoupled: true,
            buffers: BufferTable::default(),
        }
    }

    /// Enable or disable preparation–execution decoupling (Table 2's ablation).
    pub fn set_decoupled(&mut self, decoupled: bool) {
        self.decoupled = decoupled;
    }

    /// Whether preparation–execution decoupling is enabled.
    pub fn decoupled(&self) -> bool {
        self.decoupled
    }

    /// The GPU profile backing the simulation.
    pub fn profile(&self) -> GpuProfile {
        self.profile
    }
}

impl Backend for SimGpuBackend {
    fn forward_type(&self) -> ForwardType {
        self.standard
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            forward_type: self.standard,
            flops: self.profile.flops,
            t_schedule_ms: t_schedule_ms(self.standard),
            threads: 1,
        }
    }

    fn supports(&self, op: &Op) -> bool {
        // GPU backends implement the compute-heavy operators; the long tail
        // (fully-connected heads, reshapes, softmax) falls back to the CPU, which is
        // exactly the hybrid-scheduling situation described in Section 3.4.
        // Quantized (int8) operators are CPU-only too: the simulated GPUs model
        // f32 pipelines, so hybrid scheduling routes `Conv2dQuantized` /
        // `FullyConnectedQuantized` to the CPU's integer kernels.
        matches!(
            op,
            Op::Conv2d(_)
                | Op::Conv2dFused { .. }
                | Op::Pool(_)
                | Op::Activation(_)
                | Op::Binary(_)
                | Op::Concat
                | Op::BatchNorm { .. }
                | Op::Scale
        )
    }

    fn on_create(
        &self,
        node: &Node,
        graph: &Graph,
        hint: &SchemeHint,
    ) -> Result<Box<dyn Execution>, BackendError> {
        if !self.supports(&node.op) {
            return Err(BackendError::UnsupportedOp {
                op: node.op.name().to_string(),
                backend: self.standard.name().to_string(),
            });
        }
        let inner = self.cpu.on_create(node, graph, hint)?;
        let muls = graph.node_mul_count(node).unwrap_or(0);
        let descriptor = self.descriptor();
        // Preparation cost: when decoupled, command encoding happens here (once per
        // session) instead of on every run.
        if self.decoupled {
            *self.clock.lock() += descriptor.t_schedule_ms;
        }
        Ok(Box::new(SimGpuExec {
            inner,
            muls,
            compute_ms: muls as f64 / descriptor.flops * 1000.0,
            schedule_ms: descriptor.t_schedule_ms,
            charge_schedule_per_run: !self.decoupled,
            clock: Arc::clone(&self.clock),
        }))
    }

    fn on_acquire_buffer(&mut self, len: usize, _storage: StorageType) -> BufferHandle {
        self.buffers.acquire(len)
    }

    fn on_release_buffer(&mut self, handle: BufferHandle) -> Result<(), BackendError> {
        self.buffers.release(handle)
    }

    fn on_clear_buffer(&mut self) {
        self.buffers.clear();
    }

    fn virtual_elapsed_ms(&self) -> f64 {
        *self.clock.lock()
    }

    fn reset_virtual_clock(&mut self) {
        *self.clock.lock() = 0.0;
    }
}

/// Execution wrapper that produces CPU results while charging GPU costs.
struct SimGpuExec {
    inner: Box<dyn Execution>,
    muls: u64,
    compute_ms: f64,
    schedule_ms: f64,
    charge_schedule_per_run: bool,
    clock: Arc<Mutex<f64>>,
}

impl Execution for SimGpuExec {
    fn run(&mut self, inputs: &[&Tensor], output: &mut Tensor) -> Result<(), BackendError> {
        self.inner.run(inputs, output)?;
        let mut clock = self.clock.lock();
        *clock += self.compute_ms;
        if self.charge_schedule_per_run {
            *clock += self.schedule_ms;
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("sim-gpu[{} muls] {}", self.muls, self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", Shape::nchw(1, 3, 16, 16));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 8), false);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        g
    }

    #[test]
    fn profile_lookup_matches_appendix() {
        assert_eq!(GpuProfile::by_name("Mali-G72").flops, 31.61e9);
        assert_eq!(GpuProfile::by_name("Adreno 540").flops, 42.74e9);
        assert_eq!(GpuProfile::by_name("Unknown GPU 9000"), GpuProfile::GENERIC);
    }

    #[test]
    fn schedule_cost_depends_on_standard() {
        assert_eq!(t_schedule_ms(ForwardType::OpenCl), 0.05);
        assert_eq!(t_schedule_ms(ForwardType::Vulkan), 0.01);
        assert_eq!(t_schedule_ms(ForwardType::Cpu), 0.0);
    }

    #[test]
    fn gpu_results_match_cpu_results() {
        let g = conv_graph();
        let node = &g.nodes()[0];
        let cpu = CpuBackend::new(1);
        let gpu = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::by_name("Adreno 540"));
        let input = Tensor::from_vec(
            Shape::nchw(1, 3, 16, 16),
            (0..768).map(|v| (v % 13) as f32 * 0.1).collect(),
        );
        let mut cpu_out = Tensor::zeros(Shape::vector(1));
        let mut gpu_out = Tensor::zeros(Shape::vector(1));
        cpu.on_create(node, &g, &SchemeHint::default())
            .unwrap()
            .run(&[&input], &mut cpu_out)
            .unwrap();
        gpu.on_create(node, &g, &SchemeHint::default())
            .unwrap()
            .run(&[&input], &mut gpu_out)
            .unwrap();
        assert!(cpu_out.max_abs_diff(&gpu_out) < 1e-5);
    }

    #[test]
    fn virtual_clock_accumulates_compute_and_schedule_cost() {
        let g = conv_graph();
        let node = &g.nodes()[0];
        let muls = g.node_mul_count(node).unwrap();
        let mut gpu = SimGpuBackend::new(ForwardType::OpenCl, GpuProfile::GENERIC);
        gpu.set_decoupled(false);
        let mut exec = gpu.on_create(node, &g, &SchemeHint::default()).unwrap();
        let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        let mut out = Tensor::zeros(Shape::vector(1));
        exec.run(&[&input], &mut out).unwrap();
        exec.run(&[&input], &mut out).unwrap();
        let expected = 2.0 * (muls as f64 / GpuProfile::GENERIC.flops * 1000.0 + 0.05);
        assert!((gpu.virtual_elapsed_ms() - expected).abs() < 1e-9);
        gpu.reset_virtual_clock();
        assert_eq!(gpu.virtual_elapsed_ms(), 0.0);
    }

    #[test]
    fn decoupling_moves_schedule_cost_out_of_the_run_loop() {
        let g = conv_graph();
        let node = &g.nodes()[0];
        let muls = g.node_mul_count(node).unwrap();
        let runs = 10usize;
        let measure = |decoupled: bool| {
            let mut gpu = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::GENERIC);
            gpu.set_decoupled(decoupled);
            let mut exec = gpu.on_create(node, &g, &SchemeHint::default()).unwrap();
            gpu.reset_virtual_clock(); // exclude preparation from the measured loop
            let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
            let mut out = Tensor::zeros(Shape::vector(1));
            for _ in 0..runs {
                exec.run(&[&input], &mut out).unwrap();
            }
            gpu.virtual_elapsed_ms()
        };
        let with = measure(true);
        let without = measure(false);
        let compute = runs as f64 * muls as f64 / GpuProfile::GENERIC.flops * 1000.0;
        assert!((with - compute).abs() < 1e-9);
        assert!((without - (compute + runs as f64 * 0.01)).abs() < 1e-9);
        assert!(without > with);
    }

    #[test]
    fn unsupported_op_is_rejected_for_hybrid_fallback() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", Shape::matrix(1, 8));
        let y = b.fully_connected_auto("fc", x, 8, 4);
        let g = b.build(vec![y]);
        let gpu = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::GENERIC);
        let err = gpu
            .on_create(&g.nodes()[0], &g, &SchemeHint::default())
            .err()
            .unwrap();
        assert!(matches!(err, BackendError::UnsupportedOp { .. }));
        assert!(!gpu.supports(&g.nodes()[0].op));
    }
}
