//! Offline conversion for MNN-rs (paper Fig. 2, left half).
//!
//! The original MNN converter ingests TensorFlow / Caffe / ONNX models, applies
//! graph-level optimizations and writes a compact `.mnn` file. This reproduction
//! keeps the same pipeline over the `mnn-graph` IR:
//!
//! * [`format`] — the serializable model container (`.mnnr` files, JSON-encoded via
//!   serde), the stand-in for the FlatBuffer-based `.mnn` format.
//! * [`optimizer`] — offline graph optimizations: Conv+BatchNorm folding,
//!   Conv+Activation fusion, constant folding of activation/scale chains, and
//!   dead-node elimination (the paper's "operator fusion, replacement" step).
//! * [`quantize`] — the model compressor: post-training symmetric int8 weight
//!   quantization with a size/error report.
//! * [`manifest`] — named multi-model manifests, the unit a serving registry
//!   (`mnn-http`) loads at startup.

#![deny(missing_docs)]

pub mod format;
pub mod manifest;
pub mod optimizer;
pub mod quantize;

pub use format::{ConverterError, ModelFile, MODEL_FORMAT_VERSION};
pub use manifest::{ManifestEntry, ModelManifest, MANIFEST_VERSION};
pub use optimizer::{optimize, OptimizerOptions, OptimizerReport};
pub use quantize::{quantize_weights, quantized_conv_candidates, QuantizationReport};
