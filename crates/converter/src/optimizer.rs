//! Offline graph optimization passes (paper Fig. 2, "offline graph optimizer").
//!
//! The converter rewrites the graph before it ever reaches a device:
//!
//! * **Conv + BatchNorm folding** — the batch-norm affine transform is folded into
//!   the convolution's weights and bias, removing a whole memory-bound operator.
//! * **Conv + Activation fusion** — a ReLU/ReLU6/Sigmoid/Tanh that directly follows a
//!   convolution becomes a fused epilogue ([`mnn_graph::Op::Conv2dFused`]).
//! * **Constant folding** — activations/scales applied to constants are evaluated at
//!   conversion time.
//! * **Dead-node elimination** — operators whose results are never consumed are
//!   dropped.
//!
//! All passes preserve numerical behaviour; the integration tests compare optimized
//! and unoptimized inference outputs end to end.

use mnn_graph::{ActivationKind, Graph, Node, Op, TensorId};
use mnn_kernels::norm::batch_norm_to_scale_shift;
use mnn_tensor::{Shape, Tensor};

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Fold BatchNorm nodes into the preceding convolution.
    pub fuse_batch_norm: bool,
    /// Fuse activation nodes into the preceding convolution.
    pub fuse_activations: bool,
    /// Evaluate operators whose inputs are all constants.
    pub fold_constants: bool,
    /// Remove nodes whose outputs are never used.
    pub eliminate_dead_nodes: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            fuse_batch_norm: true,
            fuse_activations: true,
            fold_constants: true,
            eliminate_dead_nodes: true,
        }
    }
}

/// What the optimizer did, for logging and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    /// Number of BatchNorm nodes folded into convolutions.
    pub fused_batch_norms: usize,
    /// Number of activation nodes fused into convolutions.
    pub fused_activations: usize,
    /// Number of constant-folded nodes.
    pub folded_constants: usize,
    /// Number of dead nodes removed.
    pub removed_dead_nodes: usize,
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
}

/// Run the selected optimization passes on `graph`.
pub fn optimize(graph: &mut Graph, options: OptimizerOptions) -> OptimizerReport {
    let mut report = OptimizerReport {
        nodes_before: graph.nodes().len(),
        ..OptimizerReport::default()
    };
    if options.fuse_batch_norm {
        report.fused_batch_norms = fuse_conv_batch_norm(graph);
    }
    if options.fuse_activations {
        report.fused_activations = fuse_conv_activation(graph);
    }
    if options.fold_constants {
        report.folded_constants = fold_constant_activations(graph);
    }
    if options.eliminate_dead_nodes {
        report.removed_dead_nodes = eliminate_dead_nodes(graph);
    }
    report.nodes_after = graph.nodes().len();
    report
}

/// Replace every use of `from` (node inputs and graph outputs) with `to`.
fn rewire(nodes: &mut [Node], outputs: &mut [TensorId], from: TensorId, to: TensorId) {
    for node in nodes.iter_mut() {
        for input in &mut node.inputs {
            if *input == from {
                *input = to;
            }
        }
    }
    for output in outputs.iter_mut() {
        if *output == from {
            *output = to;
        }
    }
}

/// Number of nodes (other than `except`) consuming `id`.
fn consumer_count(nodes: &[Node], id: TensorId, except: usize) -> usize {
    nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| *i != except && n.inputs.contains(&id))
        .count()
}

fn fuse_conv_batch_norm(graph: &mut Graph) -> usize {
    let mut fused = 0usize;
    loop {
        let nodes = graph.nodes().to_vec();
        let outputs = graph.outputs().to_vec();
        // Find a BatchNorm whose data input comes from a conv with no other consumer.
        let candidate = nodes.iter().enumerate().find_map(|(bn_idx, bn)| {
            let Op::BatchNorm { epsilon } = bn.op else {
                return None;
            };
            let conv_idx = nodes
                .iter()
                .position(|n| matches!(n.op, Op::Conv2d(_)) && n.outputs[0] == bn.inputs[0])?;
            // The conv output must feed only this BatchNorm, and must not itself be a
            // graph output.
            if consumer_count(&nodes, nodes[conv_idx].outputs[0], bn_idx) > 0
                || outputs.contains(&nodes[conv_idx].outputs[0])
            {
                return None;
            }
            Some((bn_idx, conv_idx, epsilon))
        });
        let Some((bn_idx, conv_idx, epsilon)) = candidate else {
            break;
        };

        let bn = nodes[bn_idx].clone();
        let conv = nodes[conv_idx].clone();
        let Op::Conv2d(mut attrs) = conv.op.clone() else {
            break;
        };

        // Gather constants.
        let mean = graph
            .constant(bn.inputs[1])
            .expect("bn mean")
            .data_f32()
            .to_vec();
        let var = graph
            .constant(bn.inputs[2])
            .expect("bn var")
            .data_f32()
            .to_vec();
        let gamma = graph
            .constant(bn.inputs[3])
            .expect("bn gamma")
            .data_f32()
            .to_vec();
        let beta = graph
            .constant(bn.inputs[4])
            .expect("bn beta")
            .data_f32()
            .to_vec();
        let (scale, shift) = batch_norm_to_scale_shift(&mean, &var, &gamma, &beta, epsilon);

        let weight_id = conv.inputs[1];
        let weight = graph.constant(weight_id).expect("conv weight").clone();
        let oc = attrs.out_channels;
        let per_oc = weight.shape().num_elements() / oc;
        let mut new_weight = weight.data_f32().to_vec();
        for o in 0..oc {
            for v in &mut new_weight[o * per_oc..(o + 1) * per_oc] {
                *v *= scale[o];
            }
        }
        let old_bias: Vec<f32> = if attrs.has_bias {
            graph
                .constant(conv.inputs[2])
                .expect("conv bias")
                .data_f32()
                .to_vec()
        } else {
            vec![0.0; oc]
        };
        let new_bias: Vec<f32> = old_bias
            .iter()
            .zip(&scale)
            .zip(&shift)
            .map(|((b, s), sh)| b * s + sh)
            .collect();

        graph.replace_constant(
            weight_id,
            Tensor::from_vec(weight.shape().clone(), new_weight),
        );
        let bias_id = if attrs.has_bias {
            let id = conv.inputs[2];
            graph.replace_constant(id, Tensor::from_vec(Shape::vector(oc), new_bias));
            id
        } else {
            graph.add_constant(
                format!("{}.folded_bias", conv.name),
                Tensor::from_vec(Shape::vector(oc), new_bias),
            )
        };

        // Rebuild the node list: update the conv, drop the BatchNorm, rewire.
        attrs.has_bias = true;
        let mut new_nodes = graph.nodes().to_vec();
        new_nodes[conv_idx].op = Op::Conv2d(attrs);
        new_nodes[conv_idx].inputs = vec![conv.inputs[0], weight_id, bias_id];
        let bn_out = bn.outputs[0];
        let conv_out = conv.outputs[0];
        new_nodes.remove(bn_idx);
        let mut new_outputs = graph.outputs().to_vec();
        rewire(&mut new_nodes, &mut new_outputs, bn_out, conv_out);
        graph.set_nodes(new_nodes);
        graph.set_outputs(new_outputs);
        fused += 1;
    }
    fused
}

fn fuse_conv_activation(graph: &mut Graph) -> usize {
    let mut fused = 0usize;
    loop {
        let nodes = graph.nodes().to_vec();
        let outputs = graph.outputs().to_vec();
        let candidate = nodes.iter().enumerate().find_map(|(act_idx, act)| {
            let Op::Activation(kind) = act.op else {
                return None;
            };
            if kind == ActivationKind::None {
                return None;
            }
            let conv_idx = nodes.iter().position(|n| {
                matches!(
                    n.op,
                    Op::Conv2d(_)
                        | Op::Conv2dFused {
                            activation: ActivationKind::None,
                            ..
                        }
                ) && n.outputs[0] == act.inputs[0]
            })?;
            if consumer_count(&nodes, nodes[conv_idx].outputs[0], act_idx) > 0
                || outputs.contains(&nodes[conv_idx].outputs[0])
            {
                return None;
            }
            Some((act_idx, conv_idx, kind))
        });
        let Some((act_idx, conv_idx, kind)) = candidate else {
            break;
        };
        let attrs = match &nodes[conv_idx].op {
            Op::Conv2d(a) => a.clone(),
            Op::Conv2dFused { attrs, .. } => attrs.clone(),
            _ => unreachable!("candidate is always a convolution"),
        };
        let act_out = nodes[act_idx].outputs[0];
        let conv_out = nodes[conv_idx].outputs[0];
        let mut new_nodes = graph.nodes().to_vec();
        new_nodes[conv_idx].op = Op::Conv2dFused {
            attrs,
            activation: kind,
        };
        new_nodes.remove(act_idx);
        let mut new_outputs = graph.outputs().to_vec();
        rewire(&mut new_nodes, &mut new_outputs, act_out, conv_out);
        graph.set_nodes(new_nodes);
        graph.set_outputs(new_outputs);
        fused += 1;
    }
    fused
}

fn fold_constant_activations(graph: &mut Graph) -> usize {
    let mut folded = 0usize;
    loop {
        let nodes = graph.nodes().to_vec();
        let candidate = nodes.iter().enumerate().find(|(_, node)| {
            matches!(node.op, Op::Activation(_))
                && node.inputs.iter().all(|id| graph.constant(*id).is_some())
        });
        let Some((idx, node)) = candidate else {
            break;
        };
        let Op::Activation(kind) = node.op else {
            break;
        };
        let input = graph
            .constant(node.inputs[0])
            .expect("constant input")
            .clone();
        let mut data = input.data_f32().to_vec();
        kind.to_kernel().apply(&mut data);
        let out_id = node.outputs[0];
        graph.replace_constant(out_id, Tensor::from_vec(input.shape().clone(), data));
        let mut new_nodes = graph.nodes().to_vec();
        new_nodes.remove(idx);
        graph.set_nodes(new_nodes);
        folded += 1;
    }
    folded
}

fn eliminate_dead_nodes(graph: &mut Graph) -> usize {
    let mut removed = 0usize;
    loop {
        let nodes = graph.nodes().to_vec();
        let outputs = graph.outputs().to_vec();
        let dead = nodes.iter().enumerate().position(|(idx, node)| {
            node.outputs
                .iter()
                .all(|out| !outputs.contains(out) && consumer_count(&nodes, *out, idx) == 0)
        });
        let Some(idx) = dead else {
            break;
        };
        let mut new_nodes = graph.nodes().to_vec();
        new_nodes.remove(idx);
        graph.set_nodes(new_nodes);
        removed += 1;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder, PoolAttrs};
    use mnn_kernels::conv::conv2d_reference;
    use mnn_tensor::Shape;

    /// Build conv -> bn -> relu -> pool with deterministic weights.
    fn conv_bn_relu_graph() -> Graph {
        let mut b = GraphBuilder::new("cbr");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), false);
        let y = b.batch_norm_auto("bn", y, 4);
        let y = b.activation("relu", y, ActivationKind::Relu);
        let y = b.pool("pool", y, PoolAttrs::max(2, 2));
        b.build(vec![y])
    }

    /// Execute a conv(+optional bn)(+optional relu) pipeline directly with kernels.
    fn run_reference(graph: &Graph, input: &[f32]) -> Vec<f32> {
        // Manually interpret the tiny graph structure (conv [+bn] [+relu] [+pool]).
        let mut current = input.to_vec();
        let mut h = 8usize;
        let mut w = 8usize;
        for node in graph.nodes() {
            match &node.op {
                Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => {
                    let params = attrs.to_conv_params();
                    let weight = graph.constant(node.inputs[1]).unwrap().data_f32().to_vec();
                    let bias = if attrs.has_bias {
                        graph.constant(node.inputs[2]).unwrap().data_f32().to_vec()
                    } else {
                        Vec::new()
                    };
                    current = conv2d_reference(&params, 1, h, w, &current, &weight, &bias);
                    let (oh, ow) = params.output_size(h, w);
                    h = oh;
                    w = ow;
                    if let Op::Conv2dFused { activation, .. } = &node.op {
                        activation.to_kernel().apply(&mut current);
                    }
                }
                Op::BatchNorm { epsilon } => {
                    let mean = graph.constant(node.inputs[1]).unwrap().data_f32().to_vec();
                    let var = graph.constant(node.inputs[2]).unwrap().data_f32().to_vec();
                    let gamma = graph.constant(node.inputs[3]).unwrap().data_f32().to_vec();
                    let beta = graph.constant(node.inputs[4]).unwrap().data_f32().to_vec();
                    let channels = mean.len();
                    mnn_kernels::norm::batch_norm_inplace(
                        &mut current,
                        1,
                        channels,
                        h * w,
                        &mean,
                        &var,
                        &gamma,
                        &beta,
                        *epsilon,
                    );
                }
                Op::Activation(kind) => kind.to_kernel().apply(&mut current),
                Op::Pool(attrs) => {
                    let params = attrs.to_pool_params();
                    let channels = current.len() / (h * w);
                    current = mnn_kernels::pool::pool2d(&params, 1, channels, h, w, &current);
                    let (oh, ow) = params.output_size(h, w);
                    h = oh;
                    w = ow;
                }
                other => panic!("unexpected op in test graph: {other}"),
            }
        }
        current
    }

    #[test]
    fn conv_bn_relu_is_fused_into_a_single_node_plus_pool() {
        let mut g = conv_bn_relu_graph();
        let report = optimize(&mut g, OptimizerOptions::default());
        assert_eq!(report.fused_batch_norms, 1);
        assert_eq!(report.fused_activations, 1);
        assert_eq!(report.nodes_before, 4);
        assert_eq!(report.nodes_after, 2);
        assert!(g.validate().is_ok());
        let hist = g.op_histogram();
        assert_eq!(hist.get("Conv2dFused"), Some(&1));
        assert_eq!(hist.get("Pool"), Some(&1));
        assert_eq!(hist.get("BatchNorm"), None);
    }

    #[test]
    fn fusion_preserves_numerical_results() {
        let original = conv_bn_relu_graph();
        let mut optimized = original.clone();
        optimize(&mut optimized, OptimizerOptions::default());

        let input: Vec<f32> = (0..3 * 8 * 8)
            .map(|v| ((v % 13) as f32 - 6.0) * 0.1)
            .collect();
        let expected = run_reference(&original, &input);
        let got = run_reference(&optimized, &input);
        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(&got) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_feeding_multiple_consumers_is_not_fused() {
        let mut b = GraphBuilder::new("branchy");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let conv = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), false);
        let relu = b.activation("relu", conv, ActivationKind::Relu);
        let sig = b.activation("sig", conv, ActivationKind::Sigmoid);
        let sum = b.binary("sum", relu, sig, mnn_graph::BinaryKind::Add);
        let mut g = b.build(vec![sum]);
        let report = optimize(&mut g, OptimizerOptions::default());
        assert_eq!(report.fused_activations, 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn conv_that_is_a_graph_output_is_not_fused_away() {
        let mut b = GraphBuilder::new("out");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let conv = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), false);
        let relu = b.activation("relu", conv, ActivationKind::Relu);
        let mut g = b.build(vec![conv, relu]);
        let report = optimize(&mut g, OptimizerOptions::default());
        assert_eq!(report.fused_activations, 0);
        assert!(g.outputs().contains(&conv));
    }

    #[test]
    fn dead_nodes_are_removed() {
        let mut b = GraphBuilder::new("dead");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let used = b.activation("used", x, ActivationKind::Relu);
        let _unused = b.activation("unused", x, ActivationKind::Sigmoid);
        let mut g = b.build(vec![used]);
        let report = optimize(&mut g, OptimizerOptions::default());
        assert_eq!(report.removed_dead_nodes, 1);
        assert_eq!(g.nodes().len(), 1);
    }

    #[test]
    fn constant_activations_are_folded() {
        let mut b = GraphBuilder::new("constfold");
        let x = b.input("x", Shape::nchw(1, 2, 4, 4));
        let c = b.constant(
            "c",
            Tensor::from_vec(Shape::nchw(1, 2, 4, 4), vec![-1.0; 32]),
        );
        let folded = b.activation("relu_const", c, ActivationKind::Relu);
        let y = b.binary("add", x, folded, mnn_graph::BinaryKind::Add);
        let mut g = b.build(vec![y]);
        let report = optimize(&mut g, OptimizerOptions::default());
        assert_eq!(report.folded_constants, 1);
        // The folded slot now holds relu(-1) == 0 everywhere.
        let add_node = g.nodes().iter().find(|n| n.name == "add").unwrap();
        let folded_const = g.constant(add_node.inputs[1]).unwrap();
        assert!(folded_const.data_f32().iter().all(|&v| v == 0.0));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let mut g = conv_bn_relu_graph();
        let report = optimize(
            &mut g,
            OptimizerOptions {
                fuse_batch_norm: false,
                fuse_activations: false,
                fold_constants: false,
                eliminate_dead_nodes: false,
            },
        );
        assert_eq!(report.nodes_before, report.nodes_after);
        assert_eq!(g.nodes().len(), 4);
    }
}
