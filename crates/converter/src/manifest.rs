//! Multi-model manifests: named collections of model files for serving.
//!
//! A manifest is a small JSON file mapping **model names** to **model-file
//! paths** — the unit a serving registry loads at startup. Relative paths are
//! resolved against the manifest's own directory, so a manifest and its models
//! can be shipped as one directory tree:
//!
//! ```json
//! {"version":1,"models":[{"name":"squeezenet","path":"zoo/squeezenet.mnnr"}]}
//! ```

use crate::{ConverterError, ModelFile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Version of the manifest format.
pub const MANIFEST_VERSION: u32 = 1;

/// One named model inside a [`ModelManifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Registry name the model is served under (e.g. the `{name}` of
    /// `POST /v1/models/{name}/infer`).
    pub name: String,
    /// Path of the model file; relative paths resolve against the manifest's
    /// directory.
    pub path: String,
}

/// A named collection of model files (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelManifest {
    /// Manifest format version.
    pub version: u32,
    /// The models, in registration order.
    pub models: Vec<ManifestEntry>,
}

impl Default for ModelManifest {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelManifest {
    /// An empty manifest at the current format version.
    pub fn new() -> Self {
        ModelManifest {
            version: MANIFEST_VERSION,
            models: Vec::new(),
        }
    }

    /// Append one named model.
    pub fn push(&mut self, name: impl Into<String>, path: impl Into<String>) {
        self.models.push(ManifestEntry {
            name: name.into(),
            path: path.into(),
        });
    }

    /// Validate structural invariants: supported version, non-empty unique
    /// names, non-empty paths.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::VersionMismatch`] or [`ConverterError::Parse`].
    pub fn validate(&self) -> Result<(), ConverterError> {
        if self.version != MANIFEST_VERSION {
            return Err(ConverterError::VersionMismatch {
                found: self.version,
                supported: MANIFEST_VERSION,
            });
        }
        let mut seen = BTreeSet::new();
        for entry in &self.models {
            if entry.name.is_empty() {
                return Err(ConverterError::Parse(
                    "manifest entry with empty name".into(),
                ));
            }
            if entry.path.is_empty() {
                return Err(ConverterError::Parse(format!(
                    "manifest entry '{}' has an empty path",
                    entry.name
                )));
            }
            if !seen.insert(entry.name.as_str()) {
                return Err(ConverterError::Parse(format!(
                    "duplicate model name '{}' in manifest",
                    entry.name
                )));
            }
        }
        Ok(())
    }

    /// Read and validate a manifest file.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, version and validation errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConverterError> {
        let text = fs::read_to_string(path)?;
        let manifest: ModelManifest =
            serde_json::from_str(&text).map_err(|e| ConverterError::Parse(e.to_string()))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Validate and write the manifest as JSON.
    ///
    /// # Errors
    ///
    /// Returns validation and I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConverterError> {
        self.validate()?;
        let text = serde_json::to_string(self).map_err(|e| ConverterError::Parse(e.to_string()))?;
        fs::write(path, text)?;
        Ok(())
    }

    /// Each entry's name with its path resolved against `base` (normally the
    /// directory containing the manifest file). Absolute paths pass through.
    pub fn resolved_paths(&self, base: &Path) -> Vec<(String, PathBuf)> {
        self.models
            .iter()
            .map(|entry| {
                let path = Path::new(&entry.path);
                let resolved = if path.is_absolute() {
                    path.to_path_buf()
                } else {
                    base.join(path)
                };
                (entry.name.clone(), resolved)
            })
            .collect()
    }

    /// Load every model the manifest names, resolving relative paths against
    /// `base`.
    ///
    /// # Errors
    ///
    /// Fails on the first unreadable or malformed model file, naming it.
    pub fn load_models(&self, base: &Path) -> Result<Vec<(String, ModelFile)>, ConverterError> {
        self.resolved_paths(base)
            .into_iter()
            .map(|(name, path)| {
                let model = ModelFile::load(&path).map_err(|e| {
                    ConverterError::Parse(format!("model '{name}' ({}): {e}", path.display()))
                })?;
                Ok((name, model))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn demo_model() -> ModelFile {
        let mut b = GraphBuilder::new("demo");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
        ModelFile::new(b.build(vec![y]))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mnn-manifest-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_and_loads_models() {
        let dir = temp_dir("roundtrip");
        demo_model().save(dir.join("demo.mnnr")).unwrap();

        let mut manifest = ModelManifest::new();
        manifest.push("demo", "demo.mnnr");
        let manifest_path = dir.join("manifest.json");
        manifest.save(&manifest_path).unwrap();

        let back = ModelManifest::load(&manifest_path).unwrap();
        assert_eq!(back, manifest);
        let models = back.load_models(&dir).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].0, "demo");
        assert_eq!(models[0].1.graph.name(), "demo");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_and_empty_names_are_rejected() {
        let mut manifest = ModelManifest::new();
        manifest.push("a", "a.mnnr");
        manifest.push("a", "b.mnnr");
        assert!(matches!(manifest.validate(), Err(ConverterError::Parse(_))));

        let mut empty = ModelManifest::new();
        empty.push("", "a.mnnr");
        assert!(matches!(empty.validate(), Err(ConverterError::Parse(_))));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut manifest = ModelManifest::new();
        manifest.version = 999;
        assert!(matches!(
            manifest.validate(),
            Err(ConverterError::VersionMismatch { found: 999, .. })
        ));
    }

    #[test]
    fn absolute_paths_bypass_the_base_directory() {
        let mut manifest = ModelManifest::new();
        manifest.push("abs", "/somewhere/model.mnnr");
        manifest.push("rel", "model.mnnr");
        let resolved = manifest.resolved_paths(Path::new("/base"));
        assert_eq!(resolved[0].1, Path::new("/somewhere/model.mnnr"));
        assert_eq!(resolved[1].1, Path::new("/base/model.mnnr"));
    }

    #[test]
    fn missing_model_file_is_a_named_error() {
        let mut manifest = ModelManifest::new();
        manifest.push("ghost", "nope.mnnr");
        let err = manifest
            .load_models(Path::new("/nonexistent-base"))
            .unwrap_err();
        assert!(err.to_string().contains("ghost"), "got: {err}");
    }
}
