//! The serializable model format (the `.mnn` stand-in).

use mnn_graph::Graph;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Version of the on-disk model format.
///
/// Version 2 added the quantized operator variants (`Conv2dQuantized`,
/// `FullyConnectedQuantized` with per-channel scales) and the `dtype` field on
/// tensor slots, so models quantized to real `i8` constants serialize losslessly.
pub const MODEL_FORMAT_VERSION: u32 = 2;

/// Errors produced when reading or writing model files.
#[derive(Debug)]
pub enum ConverterError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The payload could not be parsed.
    Parse(String),
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version supported by this build.
        supported: u32,
    },
}

impl fmt::Display for ConverterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConverterError::Io(e) => write!(f, "i/o error: {e}"),
            ConverterError::Parse(msg) => write!(f, "parse error: {msg}"),
            ConverterError::VersionMismatch { found, supported } => write!(
                f,
                "model format version {found} is not supported (this build reads version {supported})"
            ),
        }
    }
}

impl Error for ConverterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConverterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ConverterError {
    fn from(value: std::io::Error) -> Self {
        ConverterError::Io(value)
    }
}

/// A model file: format metadata plus the full graph (structure and weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFile {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Name of the producer (kept for provenance/debugging).
    pub producer: String,
    /// The computational graph, including constant tensors.
    pub graph: Graph,
}

impl ModelFile {
    /// Wrap a graph into a model file with the current format version.
    pub fn new(graph: Graph) -> Self {
        ModelFile {
            version: MODEL_FORMAT_VERSION,
            producer: format!("mnn-rs-converter/{}", env!("CARGO_PKG_VERSION")),
            graph,
        }
    }

    /// Serialize to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::Parse`] if serialization fails (should not happen
    /// for well-formed graphs).
    pub fn to_bytes(&self) -> Result<Vec<u8>, ConverterError> {
        serde_json::to_vec(self).map_err(|e| ConverterError::Parse(e.to_string()))
    }

    /// Deserialize from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::Parse`] on malformed input and
    /// [`ConverterError::VersionMismatch`] for incompatible versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ConverterError> {
        let model: ModelFile =
            serde_json::from_slice(bytes).map_err(|e| ConverterError::Parse(e.to_string()))?;
        if model.version != MODEL_FORMAT_VERSION {
            return Err(ConverterError::VersionMismatch {
                found: model.version,
                supported: MODEL_FORMAT_VERSION,
            });
        }
        Ok(model)
    }

    /// Write the model to a file.
    ///
    /// # Errors
    ///
    /// Returns I/O and serialization errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConverterError> {
        fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Read a model from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse and version errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConverterError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// Size of the serialized model in bytes.
    ///
    /// # Errors
    ///
    /// Returns serialization errors.
    pub fn serialized_size(&self) -> Result<usize, ConverterError> {
        Ok(self.to_bytes()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn demo_graph() -> Graph {
        let mut b = GraphBuilder::new("demo");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
        b.build(vec![y])
    }

    #[test]
    fn roundtrip_through_bytes_preserves_graph() {
        let model = ModelFile::new(demo_graph());
        let bytes = model.to_bytes().unwrap();
        let back = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(model, back);
        assert_eq!(back.graph.parameter_count(), model.graph.parameter_count());
    }

    #[test]
    fn save_and_load_from_disk() {
        let model = ModelFile::new(demo_graph());
        let dir = std::env::temp_dir().join("mnn-rs-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.mnnr");
        model.save(&path).unwrap();
        let back = ModelFile::load(&path).unwrap();
        assert_eq!(model.graph.name(), back.graph.name());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quantized_graph_roundtrips_with_i8_weights() {
        let mut graph = demo_graph();
        let report = crate::quantize_weights(&mut graph);
        assert!(report.quantized_tensors > 0);
        let model = ModelFile::new(graph);
        let bytes = model.to_bytes().unwrap();
        let back = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(model, back);
        // The restored weight constant is still i8 with its scales attached.
        let conv = back
            .graph
            .nodes()
            .iter()
            .find(|n| n.op.is_quantized())
            .unwrap();
        let weight = back.graph.constant(conv.inputs[1]).unwrap();
        assert_eq!(weight.data_type(), mnn_tensor::DataType::I8);
        assert!(conv.op.quant_attrs().is_some());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut model = ModelFile::new(demo_graph());
        model.version = 999;
        let bytes = serde_json::to_vec(&model).unwrap();
        assert!(matches!(
            ModelFile::from_bytes(&bytes),
            Err(ConverterError::VersionMismatch { found: 999, .. })
        ));
    }

    #[test]
    fn malformed_payload_is_a_parse_error() {
        assert!(matches!(
            ModelFile::from_bytes(b"not a model"),
            Err(ConverterError::Parse(_))
        ));
    }

    #[test]
    fn serialized_size_is_positive_and_reflects_weights() {
        let small = ModelFile::new(demo_graph());
        let mut b = GraphBuilder::new("big");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 64), true);
        let big = ModelFile::new(b.build(vec![y]));
        assert!(big.serialized_size().unwrap() > small.serialized_size().unwrap());
    }
}
