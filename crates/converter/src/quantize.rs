//! Post-training weight quantization (the "model compressor" of paper Fig. 2).
//!
//! Weights of convolution and fully-connected layers are quantized to symmetric
//! int8. The runtime compute path of this reproduction stays in `f32`, so the
//! quantizer performs *simulated quantization*: weights are replaced by their
//! quantize→dequantize images (so accuracy impact is observable end to end) and the
//! report states the storage size the int8 encoding would need.

use mnn_graph::{Graph, Op};
use mnn_kernels::quant::{dequantize, quantize, QuantParams};

/// Result of quantizing a model's weights.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantizationReport {
    /// Number of weight tensors that were quantized.
    pub quantized_tensors: usize,
    /// Total number of quantized weight elements.
    pub quantized_elements: usize,
    /// Weight bytes before quantization (f32 storage).
    pub float_bytes: usize,
    /// Weight bytes after quantization (int8 storage + one f32 scale per tensor).
    pub quantized_bytes: usize,
    /// Largest absolute difference introduced by quantization over all weights.
    pub max_abs_error: f32,
}

impl QuantizationReport {
    /// Compression ratio (float bytes / quantized bytes); ≈4 for int8.
    pub fn compression_ratio(&self) -> f64 {
        if self.quantized_bytes == 0 {
            return 1.0;
        }
        self.float_bytes as f64 / self.quantized_bytes as f64
    }
}

/// Quantize the weights of every convolution and fully-connected layer in place.
///
/// Only the weight tensors (input index 1) are quantized; biases stay in `f32`, as
/// is standard for int8 inference.
pub fn quantize_weights(graph: &mut Graph) -> QuantizationReport {
    let mut report = QuantizationReport::default();
    let weight_slots: Vec<_> = graph
        .nodes()
        .iter()
        .filter(|node| {
            matches!(
                node.op,
                Op::Conv2d(_) | Op::Conv2dFused { .. } | Op::FullyConnected { .. }
            )
        })
        .filter_map(|node| node.inputs.get(1).copied())
        .collect();

    for slot in weight_slots {
        let Some(weight) = graph.constant(slot) else {
            continue;
        };
        let Ok(data) = weight.try_data_f32() else {
            continue;
        };
        let params = QuantParams::from_data(data);
        let q = quantize(data, params);
        let back = dequantize(&q, params);
        let err = data
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        report.max_abs_error = report.max_abs_error.max(err);
        report.quantized_tensors += 1;
        report.quantized_elements += data.len();
        report.float_bytes += data.len() * 4;
        report.quantized_bytes += data.len() + 4; // int8 payload + f32 scale
        let shape = weight.shape().clone();
        graph.replace_constant(slot, mnn_tensor::Tensor::from_vec(shape, back));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn model() -> Graph {
        let mut b = GraphBuilder::new("q");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
        let y = b.conv2d_auto("conv2", y, Conv2dAttrs::pointwise(8, 16), false);
        let y = b.flatten("flat", y, mnn_graph::FlattenAttrs { start_axis: 1 });
        let y = b.fully_connected_auto("fc", y, 16 * 8 * 8, 10);
        b.build(vec![y])
    }

    #[test]
    fn quantizes_conv_and_fc_weights() {
        let mut g = model();
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 3);
        assert!(report.quantized_elements > 0);
        assert!(report.compression_ratio() > 3.5);
        assert!(report.max_abs_error > 0.0);
    }

    #[test]
    fn quantization_error_is_small_relative_to_weight_magnitude() {
        let mut g = model();
        // The largest weight magnitude in the generated model.
        let max_weight = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .flat_map(|t| t.data_f32().iter().copied())
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let report = quantize_weights(&mut g);
        // Symmetric int8: worst-case error is half a step = max/254.
        assert!(report.max_abs_error <= max_weight / 127.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut g = model();
        quantize_weights(&mut g);
        let snapshot: Vec<Vec<f32>> = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .map(|t| t.data_f32().to_vec())
            .collect();
        quantize_weights(&mut g);
        let again: Vec<Vec<f32>> = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .map(|t| t.data_f32().to_vec())
            .collect();
        for (a, b) in snapshot.iter().zip(&again) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn graphs_without_weights_report_nothing() {
        let mut b = GraphBuilder::new("empty");
        let x = b.input("x", Shape::nchw(1, 1, 4, 4));
        let y = b.activation("relu", x, mnn_graph::ActivationKind::Relu);
        let mut g = b.build(vec![y]);
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 0);
        assert_eq!(report.compression_ratio(), 1.0);
    }
}
