//! Post-training weight quantization (the "model compressor" of paper Fig. 2).
//!
//! Weights of convolution and fully-connected layers are quantized to symmetric
//! int8 with **per-output-channel** scales and stored as real `DataType::I8`
//! constants: each quantized node is rewritten to its quantized operator variant
//! ([`Op::Conv2dQuantized`] / [`Op::FullyConnectedQuantized`]) carrying the
//! scales, and the runtime dispatches integer kernels for it (scheme
//! `quantized-gemm` in the pre-inference report). Biases stay in `f32`, as is
//! standard for int8 inference.
//!
//! Run the [`optimizer`](crate::optimizer) *before* quantizing: Conv+BN folding
//! and Conv+Activation fusion operate on float convolutions, and the fused
//! activation is carried into the quantized variant.

use mnn_backend::ConvScheme;
use mnn_graph::{Graph, Op, QuantAttrs, TensorId};
use mnn_kernels::conv::ConvParams;
use mnn_kernels::quant::{dequantize_per_channel, per_channel_scales, quantize_per_channel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The runtime scheme candidates for a convolution whose weights this quantizer
/// stored as int8 — the pool the auto-tuner measures for an
/// [`Op::Conv2dQuantized`] node.
///
/// Non-depthwise layers can run either the integer kernel
/// ([`ConvScheme::QuantizedGemm`], activations quantized on the fly — plus its
/// SIMD twin on vectorized hosts) or any float scheme over weights dequantized
/// once at preparation time, so the pool is the integer kernel(s) plus the
/// full float pool. Depthwise layers have no integer-GEMM reuse to exploit and
/// stay on the f32 depthwise kernel — on SIMD hosts the float pool still
/// offers scalar-vs-SIMD depthwise, so the tuner measures that pair.
pub fn quantized_conv_candidates(params: &ConvParams, max_tile: usize) -> Vec<ConvScheme> {
    if params.is_depthwise() {
        return ConvScheme::float_conv_pool(params, max_tile);
    }
    let mut pool = vec![ConvScheme::QuantizedGemm];
    if mnn_kernels::simd::simd_available() {
        pool.push(ConvScheme::QuantizedGemmSimd);
    }
    pool.extend(ConvScheme::float_conv_pool(params, max_tile));
    pool
}

/// Result of quantizing a model's weights.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantizationReport {
    /// Number of weight tensors that were quantized.
    pub quantized_tensors: usize,
    /// Total number of quantized weight elements.
    pub quantized_elements: usize,
    /// Weight bytes before quantization (f32 storage).
    pub float_bytes: usize,
    /// Weight bytes after quantization (int8 storage + one f32 scale per output
    /// channel).
    pub quantized_bytes: usize,
    /// Largest absolute difference introduced by quantization over all weights.
    pub max_abs_error: f32,
}

impl QuantizationReport {
    /// Compression ratio (float bytes / quantized bytes); ≈4 for int8.
    pub fn compression_ratio(&self) -> f64 {
        if self.quantized_bytes == 0 {
            return 1.0;
        }
        self.float_bytes as f64 / self.quantized_bytes as f64
    }
}

impl fmt::Display for QuantizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantized {} weight tensors ({} elements): {} -> {} bytes ({:.2}x), max |err| {:.6}",
            self.quantized_tensors,
            self.quantized_elements,
            self.float_bytes,
            self.quantized_bytes,
            self.compression_ratio(),
            self.max_abs_error
        )
    }
}

/// The quantized rewrite of a float conv/FC op, carrying fused activations over.
fn quantized_op(op: &Op, quant: QuantAttrs) -> Op {
    match op {
        Op::Conv2d(attrs) => Op::Conv2dQuantized {
            attrs: attrs.clone(),
            activation: mnn_graph::ActivationKind::None,
            quant,
        },
        Op::Conv2dFused { attrs, activation } => Op::Conv2dQuantized {
            attrs: attrs.clone(),
            activation: *activation,
            quant,
        },
        Op::FullyConnected {
            in_features,
            out_features,
            has_bias,
        } => Op::FullyConnectedQuantized {
            in_features: *in_features,
            out_features: *out_features,
            has_bias: *has_bias,
            quant,
        },
        other => unreachable!("not a quantizable op: {other}"),
    }
}

/// Output channel count of a quantizable op (`None` for everything else).
fn quantizable_channels(op: &Op) -> Option<usize> {
    match op {
        Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => Some(attrs.out_channels),
        Op::FullyConnected { out_features, .. } => Some(*out_features),
        _ => None,
    }
}

/// Quantize the weights of every convolution and fully-connected layer in place,
/// storing them as `i8` constants and rewriting the nodes to their quantized
/// operator variants.
///
/// Only the weight tensors (input index 1) are quantized; biases stay in `f32`.
/// Nodes that are already quantized, or whose weight slot holds no `f32`
/// constant, are skipped — running the pass twice is a no-op. A weight constant
/// shared by several nodes is quantized once and **all** its consumers are
/// rewritten together; if any consumer could not run on the quantized constant
/// (a non-conv/FC op, or a mismatched channel count), the slot is left in `f32`
/// so no float node is ever left reading an `i8` constant.
pub fn quantize_weights(graph: &mut Graph) -> QuantizationReport {
    let mut report = QuantizationReport::default();
    let mut nodes = graph.nodes().to_vec();

    // Group quantization candidates by weight slot: slot -> (channels, node
    // indices). A slot stays f32 unless every node touching it anywhere in the
    // graph is a conv/FC reading it as the weight input with one agreed channel
    // count.
    let mut slots: BTreeMap<usize, (usize, Vec<usize>)> = BTreeMap::new();
    let mut poisoned: BTreeSet<usize> = BTreeSet::new();
    for (idx, node) in nodes.iter().enumerate() {
        let weight_slot = quantizable_channels(&node.op)
            .and_then(|channels| node.inputs.get(1).map(|slot| (slot.0, channels)));
        for (position, input) in node.inputs.iter().enumerate() {
            match weight_slot {
                Some((slot, channels)) if position == 1 && input.0 == slot => {
                    let entry = slots.entry(slot).or_insert((channels, Vec::new()));
                    if entry.0 == channels {
                        entry.1.push(idx);
                    } else {
                        poisoned.insert(slot);
                    }
                }
                // Any other use of a constant (bias position, another op's data
                // input, a conv reading it as activations) forbids quantizing it.
                _ => {
                    poisoned.insert(input.0);
                }
            }
        }
    }

    for (slot, (channels, consumers)) in slots {
        if poisoned.contains(&slot) {
            continue;
        }
        let Some(weight) = graph.constant(TensorId(slot)) else {
            continue;
        };
        let Ok(data) = weight.try_data_f32() else {
            continue;
        };
        if !data.len().is_multiple_of(channels) {
            continue;
        }

        let scales = per_channel_scales(data, channels);
        let q = quantize_per_channel(data, &scales);
        let back = dequantize_per_channel(&q, &scales);
        let err = data
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        report.max_abs_error = report.max_abs_error.max(err);
        report.quantized_tensors += 1;
        report.quantized_elements += data.len();
        report.float_bytes += data.len() * 4;
        report.quantized_bytes += data.len() + 4 * channels; // i8 payload + f32 scale per channel

        let shape = weight.shape().clone();
        let quantized = mnn_tensor::Tensor::try_from_i8(shape, q)
            .expect("quantized buffer length matches the weight shape");
        graph.replace_constant(TensorId(slot), quantized);
        for idx in consumers {
            nodes[idx].op = quantized_op(
                &nodes[idx].op,
                QuantAttrs {
                    weight_scales: scales.clone(),
                },
            );
        }
    }
    graph.set_nodes(nodes);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::{DataType, Shape};

    fn model() -> Graph {
        let mut b = GraphBuilder::new("q");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
        let y = b.conv2d_auto("conv2", y, Conv2dAttrs::pointwise(8, 16), false);
        let y = b.flatten("flat", y, mnn_graph::FlattenAttrs { start_axis: 1 });
        let y = b.fully_connected_auto("fc", y, 16 * 8 * 8, 10);
        b.build(vec![y])
    }

    #[test]
    fn quantizes_conv_and_fc_weights_to_i8_constants() {
        let mut g = model();
        let float_bytes = g.constant_bytes();
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 3);
        assert!(report.quantized_elements > 0);
        assert!(report.compression_ratio() > 3.5);
        assert!(report.max_abs_error > 0.0);
        // Weight constants are really i8 now, and the graph's stored bytes shrank.
        for node in g.nodes() {
            if node.op.is_quantized() {
                let weight = g.constant(node.inputs[1]).unwrap();
                assert_eq!(weight.data_type(), DataType::I8);
            }
        }
        assert!(g.constant_bytes() < float_bytes / 3);
        // The graph still validates (scale counts, i8 dtype checks).
        g.validate().unwrap();
    }

    #[test]
    fn nodes_are_rewritten_to_quantized_variants() {
        let mut g = model();
        quantize_weights(&mut g);
        let hist = g.op_histogram();
        assert_eq!(hist.get("Conv2dQuantized"), Some(&2));
        assert_eq!(hist.get("FullyConnectedQuantized"), Some(&1));
        assert_eq!(hist.get("Conv2d"), None);
        assert_eq!(hist.get("FullyConnected"), None);
        // Per-output-channel scales: one per channel/feature.
        for node in g.nodes() {
            if let Some(quant) = node.op.quant_attrs() {
                let channels = match &node.op {
                    Op::Conv2dQuantized { attrs, .. } => attrs.out_channels,
                    Op::FullyConnectedQuantized { out_features, .. } => *out_features,
                    _ => unreachable!(),
                };
                assert_eq!(quant.weight_scales.len(), channels);
                assert!(quant.weight_scales.iter().all(|&s| s > 0.0));
            }
        }
    }

    #[test]
    fn quantization_error_is_small_relative_to_weight_magnitude() {
        let mut g = model();
        // The largest weight magnitude in the generated model.
        let max_weight = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .flat_map(|t| t.data_f32().iter().copied())
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let report = quantize_weights(&mut g);
        // Symmetric int8: worst-case error is half a step = max/254.
        assert!(report.max_abs_error <= max_weight / 127.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut g = model();
        let first = quantize_weights(&mut g);
        assert_eq!(first.quantized_tensors, 3);
        let snapshot: Vec<Vec<i8>> = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .filter_map(|t| t.try_data_i8().ok().map(|d| d.to_vec()))
            .collect();
        // Second pass: every eligible node is already quantized; nothing changes.
        let second = quantize_weights(&mut g);
        assert_eq!(second.quantized_tensors, 0);
        let again: Vec<Vec<i8>> = g
            .nodes()
            .iter()
            .filter_map(|n| n.inputs.get(1))
            .filter_map(|id| g.constant(*id))
            .filter_map(|t| t.try_data_i8().ok().map(|d| d.to_vec()))
            .collect();
        assert_eq!(snapshot, again);
    }

    #[test]
    fn fused_activation_is_carried_into_the_quantized_variant() {
        let mut b = GraphBuilder::new("fused");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), false);
        let y = b.activation("relu", y, mnn_graph::ActivationKind::Relu);
        let mut g = b.build(vec![y]);
        crate::optimize(&mut g, crate::OptimizerOptions::default());
        quantize_weights(&mut g);
        let conv = g.nodes().iter().find(|n| n.op.is_conv()).unwrap();
        match &conv.op {
            Op::Conv2dQuantized { activation, .. } => {
                assert_eq!(*activation, mnn_graph::ActivationKind::Relu);
            }
            other => panic!("expected Conv2dQuantized, got {other}"),
        }
    }

    #[test]
    fn shared_weight_constant_rewrites_every_consumer() {
        // Two convolutions sharing one weight constant: the slot must be
        // quantized once and BOTH nodes rewritten — leaving either as a float
        // conv over an i8 constant would panic at execution-creation time.
        let mut b = GraphBuilder::new("shared");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let w = b.constant_random("w", Shape::new(vec![3, 3, 3, 3]), 0.1);
        let a = b.conv2d("conv_a", x, w, None, Conv2dAttrs::same_3x3(3, 3));
        let y = b.conv2d("conv_b", a, w, None, Conv2dAttrs::same_3x3(3, 3));
        let mut g = b.build(vec![y]);
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 1, "shared slot quantized once");
        assert!(g.nodes().iter().all(|n| n.op.is_quantized()));
        g.validate().unwrap();
    }

    #[test]
    fn weight_shared_with_a_non_conv_consumer_stays_f32() {
        // The same constant feeds a conv as weights AND a binary op as data:
        // quantizing it would break the binary consumer, so it must stay f32
        // and the conv must stay a float op.
        let mut b = GraphBuilder::new("mixed");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let w = b.constant_random("w", Shape::nchw(1, 3, 8, 8), 0.1);
        let summed = b.binary("sum", x, w, mnn_graph::BinaryKind::Add);
        // 1x1 conv abusing the same constant as its weight ([oc=8, ic=3, 1, 1]
        // would be the proper layout; here the shapes happen to line up only
        // because weight_len is what matters to the builder-level graph).
        let mut g = b.build(vec![summed]);
        // Attach a conv node manually reading `w` as its weight input.
        let conv_attrs = Conv2dAttrs {
            kernel: (8, 8),
            pad: (0, 0),
            ..Conv2dAttrs::same_3x3(3, 1)
        };
        let data_input = g.inputs()[0];
        let (_, out) = g.add_node("conv", Op::Conv2d(conv_attrs), vec![data_input, w]);
        g.mark_output(out);
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 0);
        assert!(g.nodes().iter().all(|n| !n.op.is_quantized()));
        assert!(g.constant(w).unwrap().try_data_f32().is_ok());
    }

    #[test]
    fn graphs_without_weights_report_nothing() {
        let mut b = GraphBuilder::new("empty");
        let x = b.input("x", Shape::nchw(1, 1, 4, 4));
        let y = b.activation("relu", x, mnn_graph::ActivationKind::Relu);
        let mut g = b.build(vec![y]);
        let report = quantize_weights(&mut g);
        assert_eq!(report.quantized_tensors, 0);
        assert_eq!(report.compression_ratio(), 1.0);
    }

    #[test]
    fn report_display_summarizes_the_compression() {
        let mut g = model();
        let report = quantize_weights(&mut g);
        let text = report.to_string();
        assert!(text.contains("3 weight tensors"));
        assert!(text.contains('x'), "{text}");
    }
}
