//! Acceptance tests for the resource-observability surface: `/v1/status`
//! memory attribution against independently computed expectations, and the
//! `/readyz` 200 → 503 → 200 flip under an induced worker stall.
//!
//! Routing is exercised in-process via `handler::route` — the wire framing
//! has its own tests; here we care about what the JSON says.

use mnn_converter::ModelFile;
use mnn_core::{Interpreter, SessionConfig};
use mnn_http::handler::{route, Routed};
use mnn_http::{
    HttpRequest, HttpResponse, InferRequest, ModelRegistry, ReadyResponse, ServeOptions,
    StatusResponse, TensorJson,
};
use mnn_models::{build, ModelKind};
use std::time::{Duration, Instant};

fn request(method: &str, path: &str, body: &[u8]) -> HttpRequest {
    HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: Vec::new(),
        body: body.to_vec(),
        keep_alive: true,
    }
}

fn response_of(routed: Routed) -> HttpResponse {
    match routed {
        Routed::Response(r) => r,
        Routed::Shutdown(r) => r,
    }
}

fn get(registry: &ModelRegistry, path: &str, draining: bool) -> HttpResponse {
    response_of(route(&request("GET", path, b""), registry, draining))
}

/// What a model should be holding before its first inference: graph
/// constants plus one planned arena per pooled worker session, measured on
/// an unaccounted probe session built from an identical graph.
fn expected_resident_bytes(kind: ModelKind, input_size: usize, workers: usize) -> u64 {
    let graph = build(kind, 1, input_size);
    let constants = graph.constant_bytes() as u64;
    let mut config = SessionConfig::cpu(1);
    config.account_resources = false;
    let session = Interpreter::from_graph(graph)
        .expect("probe graph is valid")
        .create_session(config)
        .expect("probe session builds");
    constants + (workers as u64) * (session.memory_plan().planned_bytes() as u64)
}

#[test]
fn status_reports_memory_within_ten_percent_of_instrumented_allocations() {
    const WORKERS: usize = 2;
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: WORKERS,
        max_batch: 2,
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &options)
        .unwrap();
    registry
        .register_zoo(ModelKind::SqueezeNetV1_1, 32, &options)
        .unwrap();

    // Before any inference the ledger holds exactly what registration
    // created: constants plus the pre-warmed sessions' arenas.
    let response = get(&registry, "/v1/status", false);
    assert_eq!(response.status, 200);
    let status: StatusResponse = serde_json::from_slice(&response.body).unwrap();

    assert!(status.ready, "reasons: {:?}", status.reasons);
    assert_eq!(status.status, "ok");
    assert_eq!(status.models.len(), 2);
    assert!(!status.build.kernel_backend.is_empty());
    assert!(!status.build.version.is_empty());
    assert!(status.uptime_seconds > 0.0);
    assert!(
        status.os.rss_bytes > 0,
        "procfs should be readable on linux"
    );

    for (kind, input_size, name) in [
        (ModelKind::TinyCnn, 16, "tiny-cnn"),
        (ModelKind::SqueezeNetV1_1, 32, "squeezenet-v1.1"),
    ] {
        let expected = expected_resident_bytes(kind, input_size, WORKERS);
        let model = status
            .models
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("model '{name}' missing from status"));
        let reported = model.memory.resident_bytes;
        let error = reported.abs_diff(expected) as f64 / expected as f64;
        assert!(
            error <= 0.10,
            "model '{name}': reported {reported} bytes vs expected {expected} \
             ({:.1}% off); components: {:?}",
            error * 100.0,
            model.memory.components,
        );
        assert_eq!(model.workers, WORKERS);
        assert_eq!(model.stalled_workers, 0);
        assert_eq!(model.queue_depth, 0);
    }

    // The process-wide roll-up covers at least these two models (other tests
    // in this process may add scopes, never remove bytes from these).
    let sum: u64 = status.models.iter().map(|m| m.memory.resident_bytes).sum();
    assert!(status.accounted_bytes >= sum);

    // A draining server stops being ready even though every model is fine.
    let draining = get(&registry, "/readyz", true);
    assert_eq!(draining.status, 503);
    let ready: ReadyResponse = serde_json::from_slice(&draining.body).unwrap();
    assert!(!ready.ready);
    assert!(
        ready.reasons.iter().any(|r| r == "server is draining"),
        "{:?}",
        ready.reasons
    );

    registry.drain_with_deadline(Duration::from_secs(10));
}

/// Big enough that one debug-build inference takes far longer than the
/// watchdog deadline below, so the in-flight batch reads as a stall.
const STALL_PIXELS: usize = 192;

#[test]
fn readyz_flips_under_an_induced_stall_and_recovers() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 1,
        session: SessionConfig::cpu(1),
        watchdog_deadline: Some(Duration::from_millis(5)),
        ..ServeOptions::default()
    };
    // A distinct name keeps this test's ledger scope and readiness isolated
    // from the other test in this binary.
    registry
        .register_model(
            "stall-watch",
            ModelFile::new(build(ModelKind::TinyCnn, 1, STALL_PIXELS)),
            &options,
        )
        .unwrap();

    // Healthy at rest.
    assert_eq!(get(&registry, "/readyz", false).status, 200);

    let body = serde_json::to_vec(&InferRequest {
        inputs: [(
            "data".to_string(),
            TensorJson {
                shape: vec![1, 3, STALL_PIXELS, STALL_PIXELS],
                data: vec![0.0f32; 3 * STALL_PIXELS * STALL_PIXELS],
            },
        )]
        .into_iter()
        .collect(),
    })
    .unwrap();

    std::thread::scope(|scope| {
        let registry = &registry;
        let infer = scope.spawn(move || {
            response_of(route(
                &request("POST", "/v1/models/stall-watch/infer", &body),
                registry,
                false,
            ))
        });

        // The slow batch must flip readiness while it is still running.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut saw_unready = None;
        while Instant::now() < deadline {
            let response = get(registry, "/readyz", false);
            if response.status == 503 {
                saw_unready = Some(response);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let response = saw_unready.expect("readyz flipped to 503 during the stall");
        let ready: ReadyResponse = serde_json::from_slice(&response.body).unwrap();
        assert!(!ready.ready);
        assert!(
            ready
                .reasons
                .iter()
                .any(|r| r.contains("stall-watch") && r.contains("stalled")),
            "{:?}",
            ready.reasons
        );

        let infer_response = infer.join().expect("infer thread");
        assert_eq!(
            infer_response.status,
            200,
            "{}",
            String::from_utf8_lossy(&infer_response.body)
        );
    });

    // The worker heartbeats at the next batch boundary; readiness returns.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline {
        if get(&registry, "/readyz", false).status == 200 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(recovered, "readyz returned to 200 after the stall cleared");

    registry.drain_with_deadline(Duration::from_secs(10));
}
