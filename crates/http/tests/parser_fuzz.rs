//! Property tests for the HTTP request parser: malformed input must yield a
//! clean `400`-family error — never a panic — and valid requests must parse
//! identically no matter how the byte stream is split across reads.

use mnn_http::{ParseOutcome, RequestParser};
use proptest::prelude::*;

/// Drain every outcome the parser will currently give, with a hard bound so a
/// parser bug can never hang the test.
fn drain(parser: &mut RequestParser) -> (Vec<mnn_http::HttpRequest>, Option<u16>, bool) {
    let mut requests = Vec::new();
    for _ in 0..10_000 {
        match parser.next_request() {
            ParseOutcome::Request(r) => requests.push(r),
            ParseOutcome::NeedMore => return (requests, None, true),
            ParseOutcome::Error(e) => return (requests, Some(e.status), true),
        }
    }
    (requests, None, false)
}

/// Feed `stream` chunked by `chunk_sizes` (cycled), draining after each feed.
fn feed_chunked(
    parser: &mut RequestParser,
    stream: &[u8],
    chunk_sizes: &[usize],
) -> (Vec<mnn_http::HttpRequest>, Option<u16>) {
    let mut requests = Vec::new();
    let mut offset = 0;
    let mut chunk_index = 0;
    while offset < stream.len() {
        let size = if chunk_sizes.is_empty() {
            stream.len()
        } else {
            chunk_sizes[chunk_index % chunk_sizes.len()].max(1)
        };
        chunk_index += 1;
        let end = (offset + size).min(stream.len());
        parser.feed(&stream[offset..end]);
        offset = end;
        let (batch, error, terminated) = drain(parser);
        assert!(terminated, "parser looped without progress");
        requests.extend(batch);
        if let Some(status) = error {
            return (requests, Some(status));
        }
    }
    (requests, None)
}

/// A syntactically valid request with `body.len()` as its Content-Length.
fn render_request(path_seed: usize, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "POST /v1/models/m{path_seed}/infer HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: {connection}\r\nX-Seed: {path_seed}\r\n\r\n",
        body.len()
    );
    let mut stream = head.into_bytes();
    stream.extend_from_slice(body);
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, fed in arbitrary chunks, never panic the parser and
    /// never make it loop without progress.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(0u8..255, 0..512),
        chunk_sizes in prop::collection::vec(1usize..32, 0..16),
    ) {
        let mut parser = RequestParser::with_limits(256, 256);
        let _ = feed_chunked(&mut parser, &bytes, &chunk_sizes);
    }

    /// A valid request parses to the same thing regardless of how the stream
    /// is split across reads.
    #[test]
    fn split_reads_are_equivalent_to_one_read(
        path_seed in 0usize..100,
        body in prop::collection::vec(0u8..255, 0..128),
        keep_alive in prop_oneof![Just(true), Just(false)],
        chunk_sizes in prop::collection::vec(1usize..16, 1..12),
    ) {
        let stream = render_request(path_seed, &body, keep_alive);

        let mut whole = RequestParser::new();
        let (reference, err) = feed_chunked(&mut whole, &stream, &[]);
        prop_assert_eq!(err, None);
        prop_assert_eq!(reference.len(), 1);

        let mut split = RequestParser::new();
        let (chunked, err) = feed_chunked(&mut split, &stream, &chunk_sizes);
        prop_assert_eq!(err, None);
        prop_assert_eq!(&chunked, &reference);
        prop_assert_eq!(&chunked[0].body, &body);
        prop_assert_eq!(chunked[0].keep_alive, keep_alive);
    }

    /// Pipelined keep-alive requests come out one per request, in order,
    /// under any read chunking.
    #[test]
    fn pipelined_requests_parse_in_order(
        bodies in prop::collection::vec(prop::collection::vec(0u8..255, 0..64), 1..6),
        chunk_sizes in prop::collection::vec(1usize..24, 1..10),
    ) {
        let mut stream = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(&render_request(i, body, true));
        }
        let mut parser = RequestParser::new();
        let (requests, err) = feed_chunked(&mut parser, &stream, &chunk_sizes);
        prop_assert_eq!(err, None);
        prop_assert_eq!(requests.len(), bodies.len());
        for (i, (request, body)) in requests.iter().zip(&bodies).enumerate() {
            prop_assert_eq!(request.path.as_str(), format!("/v1/models/m{i}/infer").as_str());
            prop_assert_eq!(&request.body, body);
        }
    }

    /// Header sections that exceed the limit fail with 431 — even when the
    /// terminator never arrives — instead of buffering forever.
    #[test]
    fn oversized_headers_are_431(
        filler in prop::collection::vec(97u8..123, 200..400),
        chunk_sizes in prop::collection::vec(1usize..32, 1..8),
    ) {
        let mut stream = b"GET /x HTTP/1.1\r\nX-Big: ".to_vec();
        stream.extend_from_slice(&filler);
        let mut parser = RequestParser::with_limits(128, 1024);
        let (requests, err) = feed_chunked(&mut parser, &stream, &chunk_sizes);
        prop_assert_eq!(requests.len(), 0);
        prop_assert_eq!(err, Some(431));
    }

    /// Any non-numeric Content-Length is a 400, never a panic or a hang.
    #[test]
    fn bad_content_length_is_400(
        junk in prop::collection::vec(prop_oneof![Just(b'x'), Just(b'-'), Just(b' '), Just(b'9')], 1..8),
        chunk_sizes in prop::collection::vec(1usize..8, 1..6),
    ) {
        // Skip samples that trim down to plain digits: header values are
        // trimmed, so those are valid Content-Lengths by construction.
        let trimmed = String::from_utf8(junk.clone()).unwrap();
        let trimmed = trimmed.trim();
        if !trimmed.is_empty() && trimmed.bytes().all(|b| b.is_ascii_digit()) {
            return;
        }
        let mut stream = b"POST /x HTTP/1.1\r\nContent-Length: ".to_vec();
        stream.extend_from_slice(&junk);
        stream.extend_from_slice(b"\r\n\r\n");
        let mut parser = RequestParser::new();
        let (_, err) = feed_chunked(&mut parser, &stream, &chunk_sizes);
        prop_assert_eq!(err, Some(400));
    }

    /// A Content-Length larger than the body cap is rejected with 413 before
    /// any body bytes are buffered.
    #[test]
    fn oversized_declared_bodies_are_413(excess in 1usize..1_000_000) {
        let cap = 4096usize;
        let stream = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            cap + excess
        );
        let mut parser = RequestParser::with_limits(1024, cap);
        let (_, err) = feed_chunked(&mut parser, stream.as_bytes(), &[]);
        prop_assert_eq!(err, Some(413));
    }
}
