//! End-to-end tests over real TCP sockets: bit-identical responses under
//! concurrency, admission control under overload, and graceful drain under
//! load.

use mnn_core::SessionConfig;
use mnn_http::{
    HttpConfig, HttpServer, InferRequest, InferResponse, ModelRegistry, ServeOptions, TensorJson,
};
use mnn_models::ModelKind;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A minimal blocking HTTP/1.1 client response.
#[derive(Debug)]
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read exactly one HTTP response off `stream` (Content-Length framing).
fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("connection closed mid-response ({} bytes)", buf.len()),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line '{status_line}'"),
            )
        })?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Send one request on a fresh connection and read the response.
fn send(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write_request(&mut stream, method, path, body, false)?;
    read_response(&mut stream)
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Deterministic, value-varied input for a tiny-cnn at `size` px.
fn test_input(size: usize, seed: usize) -> TensorJson {
    let elements = 3 * size * size;
    TensorJson {
        shape: vec![1, 3, size, size],
        data: (0..elements)
            .map(|i| ((i + seed * 7) % 251) as f32 * 0.013 - 1.6)
            .collect(),
    }
}

fn infer_body(input: TensorJson) -> Vec<u8> {
    let request = InferRequest {
        inputs: BTreeMap::from([("data".to_string(), input)]),
    };
    serde_json::to_vec(&request).unwrap()
}

fn tiny_options(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        max_batch: 4,
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    }
}

/// Two models, concurrent clients over real sockets: every response must be
/// bit-identical to what the same `Server::infer` returns in-process.
#[test]
fn concurrent_clients_get_bit_identical_responses() {
    let mut registry = ModelRegistry::new();
    let options = tiny_options(2);
    let graph16 = mnn_models::build(ModelKind::TinyCnn, 1, 16);
    let graph24 = mnn_models::build(ModelKind::TinyCnn, 1, 24);
    registry
        .register_model("tiny16", mnn_converter::ModelFile::new(graph16), &options)
        .unwrap();
    registry
        .register_model("tiny24", mnn_converter::ModelFile::new(graph24), &options)
        .unwrap();

    // Compute the in-process reference outputs before the registry moves
    // into the HTTP server.
    let seeds: Vec<usize> = (0..6).collect();
    let mut expected: BTreeMap<(String, usize), Vec<f32>> = BTreeMap::new();
    for (name, size) in [("tiny16", 16), ("tiny24", 24)] {
        let entry = registry.get(name).unwrap();
        for &seed in &seeds {
            let wire = test_input(size, seed);
            let tensor = wire.to_tensor().unwrap();
            let outputs = entry.server.infer(&[("data", &tensor)]).unwrap();
            expected.insert((name.to_string(), seed), outputs[0].data_f32().to_vec());
        }
    }

    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for &seed in &seeds {
        for (name, size) in [("tiny16", 16usize), ("tiny24", 24usize)] {
            handles.push(std::thread::spawn(move || {
                let body = infer_body(test_input(size, seed));
                let response =
                    send(addr, "POST", &format!("/v1/models/{name}/infer"), &body).unwrap();
                assert_eq!(
                    response.status,
                    200,
                    "{}",
                    String::from_utf8_lossy(&response.body)
                );
                let parsed: InferResponse = serde_json::from_slice(&response.body).unwrap();
                assert_eq!(parsed.outputs.len(), 1);
                (name.to_string(), seed, parsed.outputs[0].data.clone())
            }));
        }
    }
    for handle in handles {
        let (name, seed, data) = handle.join().unwrap();
        let reference = &expected[&(name.clone(), seed)];
        assert_eq!(data.len(), reference.len());
        for (got, want) in data.iter().zip(reference) {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name} seed {seed}: {got} != {want}"
            );
        }
    }

    let summary = server.shutdown();
    assert!(summary.drained, "{summary:?}");
    assert_eq!(summary.aborted_requests, 0);
}

/// Keep-alive: one connection serves several requests, including pipelined
/// ones, and `Connection: close` is honored.
#[test]
fn keep_alive_serves_sequential_and_pipelined_requests() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    // Two sequential keep-alive requests on one connection.
    for _ in 0..2 {
        write_request(&mut stream, "GET", "/healthz", b"", true).unwrap();
        let response = read_response(&mut stream).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    // Two pipelined requests written back-to-back before reading.
    write_request(&mut stream, "GET", "/v1/models", b"", true).unwrap();
    write_request(&mut stream, "GET", "/v1/models/tiny-cnn/stats", b"", true).unwrap();
    let first = read_response(&mut stream).unwrap();
    let second = read_response(&mut stream).unwrap();
    assert_eq!(first.status, 200);
    assert!(String::from_utf8_lossy(&first.body).contains("tiny-cnn"));
    assert_eq!(second.status, 200);
    assert!(String::from_utf8_lossy(&second.body).contains("\"submitted\""));
    // A close request ends the connection.
    write_request(&mut stream, "GET", "/healthz", b"", false).unwrap();
    let last = read_response(&mut stream).unwrap();
    assert_eq!(last.header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    server.shutdown();
}

/// Malformed bytes get a 400-family response, not a hang or a dropped
/// connection without an answer.
#[test]
fn malformed_requests_get_error_responses() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header("connection"), Some("close"));

    let bad_json = send(addr, "POST", "/v1/models/tiny-cnn/infer", b"{oops").unwrap();
    assert_eq!(bad_json.status, 400);

    let unknown = send(addr, "GET", "/v1/models/ghost/stats", b"").unwrap();
    assert_eq!(unknown.status, 404);

    server.shutdown();
}

/// Overload: with a 1-deep queue and a single worker, hammering the server
/// must produce 429s carrying Retry-After — and never hang or drop requests.
#[test]
fn overload_returns_429_with_retry_after() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 1,
        queue_capacity: Some(1),
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 24, &options)
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let clients = 8;
    let per_client = 6;
    let mut handles = Vec::new();
    for seed in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut saw = (0usize, 0usize); // (ok, rejected)
            for i in 0..per_client {
                let body = infer_body(test_input(24, seed * per_client + i));
                let response = send(addr, "POST", "/v1/models/tiny-cnn/infer", &body).unwrap();
                match response.status {
                    200 => saw.0 += 1,
                    429 => {
                        assert!(
                            response.header("retry-after").is_some(),
                            "429 without Retry-After"
                        );
                        saw.1 += 1;
                    }
                    other => panic!(
                        "unexpected status {other}: {}",
                        String::from_utf8_lossy(&response.body)
                    ),
                }
            }
            saw
        }));
    }
    let mut total_ok = 0;
    let mut total_rejected = 0;
    for handle in handles {
        let (ok, rejected) = handle.join().unwrap();
        total_ok += ok;
        total_rejected += rejected;
    }
    assert_eq!(total_ok + total_rejected, clients * per_client);
    assert!(total_ok > 0, "no request succeeded");
    assert!(
        total_rejected > 0,
        "a 1-deep queue under 8 concurrent clients must shed load"
    );

    server.shutdown();
}

/// The connection cap answers excess connections with 503 + Retry-After.
#[test]
fn connection_cap_returns_503() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let config = HttpConfig {
        max_connections: 2,
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Occupy the cap with idle keep-alive connections.
    let mut held = Vec::new();
    for _ in 0..2 {
        let stream = TcpStream::connect(addr).unwrap();
        // Wait until the server has actually accepted (and counted) it.
        while server.active_connections() < held.len() + 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        held.push(stream);
    }

    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = read_response(&mut extra).unwrap();
    assert_eq!(response.status, 503);
    assert!(response.header("retry-after").is_some());

    drop(held);
    server.shutdown();
}

/// Observability surface over a real socket: `/metrics` serves Prometheus
/// text with every well-known series, and a profiling-enabled model reports
/// a per-op breakdown accounting for ≥95% of measured wall time.
#[test]
fn metrics_and_profile_endpoints_serve_over_the_wire() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 2,
        session: SessionConfig::cpu(1),
        profiling: true,
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 32, &options)
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let runs = 4;
    for seed in 0..runs {
        let body = infer_body(test_input(32, seed));
        let response = send(addr, "POST", "/v1/models/tiny-cnn/infer", &body).unwrap();
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
    }

    let metrics = send(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = String::from_utf8(metrics.body).unwrap();
    for series in [
        "mnn_infer_requests_total",
        "mnn_infer_completed_total",
        "mnn_infer_latency_ms_bucket",
        "mnn_batch_size_bucket",
        "mnn_queue_depth",
        "mnn_plan_cache_hits_total",
        "mnn_plan_cache_misses_total",
        "mnn_tune_cache_hits_total",
        "mnn_tune_cache_misses_total",
        "mnn_session_prepare_total",
        "mnn_http_responses_total{code=\"200\"}",
        "mnn_uptime_seconds",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // The global counters are shared across this test binary, so only a lower
    // bound is meaningful here.
    let requests: u64 = text
        .lines()
        .find(|l| l.starts_with("mnn_infer_requests_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(requests >= runs as u64, "{requests} < {runs}\n{text}");

    let profile = send(addr, "GET", "/v1/models/tiny-cnn/profile", b"").unwrap();
    assert_eq!(profile.status, 200);
    let parsed: mnn_http::ProfileResponse = serde_json::from_slice(&profile.body).unwrap();
    assert_eq!(parsed.name, "tiny-cnn");
    assert_eq!(parsed.profile.runs, runs as u64);
    assert!(
        parsed.profile.coverage >= 0.95,
        "per-op spans must account for >=95% of wall time: {:?}",
        parsed.profile
    );
    assert!(!parsed.profile.ops.is_empty());
    assert!(parsed
        .profile
        .ops
        .iter()
        .any(|op| op.op.starts_with("Conv2d")));

    let trace = send(addr, "GET", "/v1/models/tiny-cnn/profile?format=trace", b"").unwrap();
    assert_eq!(trace.status, 200);
    let trace_text = String::from_utf8(trace.body).unwrap();
    assert!(trace_text.contains("\"traceEvents\""), "{trace_text}");
    assert!(trace_text.contains("\"ph\":\"X\""), "{trace_text}");

    server.shutdown();
}

/// Shutdown under load: every request accepted before the drain started gets
/// a real response (200, or 503 if the deadline expires) — none are dropped.
#[test]
fn shutdown_mid_load_answers_every_accepted_request() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 2,
        queue_capacity: Some(64),
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 24, &options)
        .unwrap();
    let config = HttpConfig {
        drain_deadline: Duration::from_secs(60),
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Clients connect and write their requests *before* shutdown is
    // triggered, then read the answer afterwards.
    let clients = 6;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for seed in 0..clients {
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let body = infer_body(test_input(24, seed));
            write_request(
                &mut stream,
                "POST",
                "/v1/models/tiny-cnn/infer",
                &body,
                true,
            )
            .unwrap();
            barrier.wait(); // request is on the wire; let shutdown begin
            let response = read_response(&mut stream).unwrap();
            assert!(
                response.status == 200 || response.status == 503,
                "got {}: {}",
                response.status,
                String::from_utf8_lossy(&response.body)
            );
            response.status
        }));
    }
    barrier.wait();

    // Trigger shutdown the way an operator would: over the wire.
    let response = send(addr, "POST", "/admin/shutdown", b"").unwrap();
    assert_eq!(response.status, 200);
    server.wait_shutdown_requested();
    let summary = server.shutdown();

    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(statuses.len(), clients);
    // With a generous deadline everything completes as 200.
    assert!(statuses.iter().all(|&s| s == 200), "statuses: {statuses:?}");
    assert!(summary.drained, "{summary:?}");

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err()
            || send(addr, "GET", "/healthz", b"").is_err(),
        "server still accepting after shutdown"
    );
}
