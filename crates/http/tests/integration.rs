//! End-to-end tests over real TCP sockets: bit-identical responses under
//! concurrency, admission control under overload, and graceful drain under
//! load.

use mnn_core::SessionConfig;
use mnn_http::{
    HttpConfig, HttpServer, InferRequest, InferResponse, ModelRegistry, ServeOptions, TensorJson,
    TracesResponse,
};
use mnn_models::ModelKind;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A minimal blocking HTTP/1.1 client response.
#[derive(Debug)]
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read exactly one HTTP response off `stream` (Content-Length framing).
fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("connection closed mid-response ({} bytes)", buf.len()),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line '{status_line}'"),
            )
        })?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Send one request on a fresh connection and read the response.
fn send(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write_request(&mut stream, method, path, body, false)?;
    read_response(&mut stream)
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_request_with_headers(stream, method, path, body, keep_alive, &[])
}

fn write_request_with_headers(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Deterministic, value-varied input for a tiny-cnn at `size` px.
fn test_input(size: usize, seed: usize) -> TensorJson {
    let elements = 3 * size * size;
    TensorJson {
        shape: vec![1, 3, size, size],
        data: (0..elements)
            .map(|i| ((i + seed * 7) % 251) as f32 * 0.013 - 1.6)
            .collect(),
    }
}

fn infer_body(input: TensorJson) -> Vec<u8> {
    let request = InferRequest {
        inputs: BTreeMap::from([("data".to_string(), input)]),
    };
    serde_json::to_vec(&request).unwrap()
}

fn tiny_options(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        max_batch: 4,
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    }
}

/// Two models, concurrent clients over real sockets: every response must be
/// bit-identical to what the same `Server::infer` returns in-process.
#[test]
fn concurrent_clients_get_bit_identical_responses() {
    let mut registry = ModelRegistry::new();
    let options = tiny_options(2);
    let graph16 = mnn_models::build(ModelKind::TinyCnn, 1, 16);
    let graph24 = mnn_models::build(ModelKind::TinyCnn, 1, 24);
    registry
        .register_model("tiny16", mnn_converter::ModelFile::new(graph16), &options)
        .unwrap();
    registry
        .register_model("tiny24", mnn_converter::ModelFile::new(graph24), &options)
        .unwrap();

    // Compute the in-process reference outputs before the registry moves
    // into the HTTP server.
    let seeds: Vec<usize> = (0..6).collect();
    let mut expected: BTreeMap<(String, usize), Vec<f32>> = BTreeMap::new();
    for (name, size) in [("tiny16", 16), ("tiny24", 24)] {
        let entry = registry.get(name).unwrap();
        for &seed in &seeds {
            let wire = test_input(size, seed);
            let tensor = wire.to_tensor().unwrap();
            let outputs = entry.server.infer(&[("data", &tensor)]).unwrap();
            expected.insert((name.to_string(), seed), outputs[0].data_f32().to_vec());
        }
    }

    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for &seed in &seeds {
        for (name, size) in [("tiny16", 16usize), ("tiny24", 24usize)] {
            handles.push(std::thread::spawn(move || {
                let body = infer_body(test_input(size, seed));
                let response =
                    send(addr, "POST", &format!("/v1/models/{name}/infer"), &body).unwrap();
                assert_eq!(
                    response.status,
                    200,
                    "{}",
                    String::from_utf8_lossy(&response.body)
                );
                let parsed: InferResponse = serde_json::from_slice(&response.body).unwrap();
                assert_eq!(parsed.outputs.len(), 1);
                (name.to_string(), seed, parsed.outputs[0].data.clone())
            }));
        }
    }
    for handle in handles {
        let (name, seed, data) = handle.join().unwrap();
        let reference = &expected[&(name.clone(), seed)];
        assert_eq!(data.len(), reference.len());
        for (got, want) in data.iter().zip(reference) {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name} seed {seed}: {got} != {want}"
            );
        }
    }

    let summary = server.shutdown();
    assert!(summary.drained, "{summary:?}");
    assert_eq!(summary.aborted_requests, 0);
}

/// Keep-alive: one connection serves several requests, including pipelined
/// ones, and `Connection: close` is honored.
#[test]
fn keep_alive_serves_sequential_and_pipelined_requests() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    // Two sequential keep-alive requests on one connection.
    for _ in 0..2 {
        write_request(&mut stream, "GET", "/healthz", b"", true).unwrap();
        let response = read_response(&mut stream).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    // Two pipelined requests written back-to-back before reading.
    write_request(&mut stream, "GET", "/v1/models", b"", true).unwrap();
    write_request(&mut stream, "GET", "/v1/models/tiny-cnn/stats", b"", true).unwrap();
    let first = read_response(&mut stream).unwrap();
    let second = read_response(&mut stream).unwrap();
    assert_eq!(first.status, 200);
    assert!(String::from_utf8_lossy(&first.body).contains("tiny-cnn"));
    assert_eq!(second.status, 200);
    assert!(String::from_utf8_lossy(&second.body).contains("\"submitted\""));
    // A close request ends the connection.
    write_request(&mut stream, "GET", "/healthz", b"", false).unwrap();
    let last = read_response(&mut stream).unwrap();
    assert_eq!(last.header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    server.shutdown();
}

/// Malformed bytes get a 400-family response, not a hang or a dropped
/// connection without an answer.
#[test]
fn malformed_requests_get_error_responses() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(response.header("x-request-id").is_some());

    let bad_json = send(addr, "POST", "/v1/models/tiny-cnn/infer", b"{oops").unwrap();
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.header("x-request-id").is_some());

    let unknown = send(addr, "GET", "/v1/models/ghost/stats", b"").unwrap();
    assert_eq!(unknown.status, 404);
    assert!(unknown.header("x-request-id").is_some());

    server.shutdown();
}

/// Overload: with a 1-deep queue and a single worker, hammering the server
/// must produce 429s carrying Retry-After — and never hang or drop requests.
#[test]
fn overload_returns_429_with_retry_after() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 1,
        queue_capacity: Some(1),
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 24, &options)
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let clients = 8;
    let per_client = 6;
    let mut handles = Vec::new();
    for seed in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut saw = (0usize, 0usize); // (ok, rejected)
            for i in 0..per_client {
                let body = infer_body(test_input(24, seed * per_client + i));
                let response = send(addr, "POST", "/v1/models/tiny-cnn/infer", &body).unwrap();
                assert!(
                    response.header("x-request-id").is_some(),
                    "{} without X-Request-Id",
                    response.status
                );
                match response.status {
                    200 => saw.0 += 1,
                    429 => {
                        assert!(
                            response.header("retry-after").is_some(),
                            "429 without Retry-After"
                        );
                        saw.1 += 1;
                    }
                    other => panic!(
                        "unexpected status {other}: {}",
                        String::from_utf8_lossy(&response.body)
                    ),
                }
            }
            saw
        }));
    }
    let mut total_ok = 0;
    let mut total_rejected = 0;
    for handle in handles {
        let (ok, rejected) = handle.join().unwrap();
        total_ok += ok;
        total_rejected += rejected;
    }
    assert_eq!(total_ok + total_rejected, clients * per_client);
    assert!(total_ok > 0, "no request succeeded");
    assert!(
        total_rejected > 0,
        "a 1-deep queue under 8 concurrent clients must shed load"
    );

    server.shutdown();
}

/// The connection cap answers excess connections with 503 + Retry-After.
#[test]
fn connection_cap_returns_503() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let config = HttpConfig {
        max_connections: 2,
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Occupy the cap with idle keep-alive connections.
    let mut held = Vec::new();
    for _ in 0..2 {
        let stream = TcpStream::connect(addr).unwrap();
        // Wait until the server has actually accepted (and counted) it.
        while server.active_connections() < held.len() + 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        held.push(stream);
    }

    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = read_response(&mut extra).unwrap();
    assert_eq!(response.status, 503);
    assert!(response.header("retry-after").is_some());
    // Even a pre-parse rejection carries an id the client can report.
    assert!(response.header("x-request-id").is_some());

    drop(held);
    server.shutdown();
}

/// Observability surface over a real socket: `/metrics` serves Prometheus
/// text with every well-known series, and a profiling-enabled model reports
/// a per-op breakdown accounting for ≥95% of measured wall time.
#[test]
fn metrics_and_profile_endpoints_serve_over_the_wire() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 2,
        session: SessionConfig::cpu(1),
        profiling: true,
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 32, &options)
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
    let addr = server.local_addr();

    let runs = 4;
    for seed in 0..runs {
        let body = infer_body(test_input(32, seed));
        let response = send(addr, "POST", "/v1/models/tiny-cnn/infer", &body).unwrap();
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
    }

    let metrics = send(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = String::from_utf8(metrics.body).unwrap();
    for series in [
        "mnn_infer_requests_total",
        "mnn_infer_completed_total",
        "mnn_infer_latency_ms_bucket",
        "mnn_batch_size_bucket",
        "mnn_queue_depth",
        "mnn_plan_cache_hits_total",
        "mnn_plan_cache_misses_total",
        "mnn_tune_cache_hits_total",
        "mnn_tune_cache_misses_total",
        "mnn_session_prepare_total",
        "mnn_http_responses_total{code=\"200\"}",
        "mnn_uptime_seconds",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // The global counters are shared across this test binary, so only a lower
    // bound is meaningful here.
    let requests: u64 = text
        .lines()
        .find(|l| l.starts_with("mnn_infer_requests_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(requests >= runs as u64, "{requests} < {runs}\n{text}");

    let profile = send(addr, "GET", "/v1/models/tiny-cnn/profile", b"").unwrap();
    assert_eq!(profile.status, 200);
    let parsed: mnn_http::ProfileResponse = serde_json::from_slice(&profile.body).unwrap();
    assert_eq!(parsed.name, "tiny-cnn");
    assert_eq!(parsed.profile.runs, runs as u64);
    assert!(
        parsed.profile.coverage >= 0.95,
        "per-op spans must account for >=95% of wall time: {:?}",
        parsed.profile
    );
    assert!(!parsed.profile.ops.is_empty());
    assert!(parsed
        .profile
        .ops
        .iter()
        .any(|op| op.op.starts_with("Conv2d")));

    let trace = send(addr, "GET", "/v1/models/tiny-cnn/profile?format=trace", b"").unwrap();
    assert_eq!(trace.status, 200);
    let trace_text = String::from_utf8(trace.body).unwrap();
    assert!(trace_text.contains("\"traceEvents\""), "{trace_text}");
    assert!(trace_text.contains("\"ph\":\"X\""), "{trace_text}");

    server.shutdown();
}

/// Shutdown under load: every request accepted before the drain started gets
/// a real response (200, or 503 if the deadline expires) — none are dropped.
#[test]
fn shutdown_mid_load_answers_every_accepted_request() {
    let mut registry = ModelRegistry::new();
    let options = ServeOptions {
        workers: 1,
        max_batch: 2,
        queue_capacity: Some(64),
        session: SessionConfig::cpu(1),
        ..ServeOptions::default()
    };
    registry
        .register_zoo(ModelKind::TinyCnn, 24, &options)
        .unwrap();
    let config = HttpConfig {
        drain_deadline: Duration::from_secs(60),
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Clients connect and write their requests *before* shutdown is
    // triggered, then read the answer afterwards.
    let clients = 6;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for seed in 0..clients {
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let body = infer_body(test_input(24, seed));
            write_request(
                &mut stream,
                "POST",
                "/v1/models/tiny-cnn/infer",
                &body,
                true,
            )
            .unwrap();
            barrier.wait(); // request is on the wire; let shutdown begin
            let response = read_response(&mut stream).unwrap();
            assert!(
                response.status == 200 || response.status == 503,
                "got {}: {}",
                response.status,
                String::from_utf8_lossy(&response.body)
            );
            // The drain path answers with identity headers too.
            assert!(response.header("x-request-id").is_some());
            response.status
        }));
    }
    barrier.wait();

    // Trigger shutdown the way an operator would: over the wire.
    let response = send(addr, "POST", "/admin/shutdown", b"").unwrap();
    assert_eq!(response.status, 200);
    server.wait_shutdown_requested();
    let summary = server.shutdown();

    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(statuses.len(), clients);
    // With a generous deadline everything completes as 200.
    assert!(statuses.iter().all(|&s| s == 200), "statuses: {statuses:?}");
    assert!(summary.drained, "{summary:?}");

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err()
            || send(addr, "GET", "/healthz", b"").is_err(),
        "server still accepting after shutdown"
    );
}

/// Satellite of the tracing work: a client-supplied `traceparent` round-trips
/// byte-exact over a real socket, and the completed request shows up in
/// `GET /v1/traces` with its full stage waterfall, per-op spans, batch link,
/// chrome export, and a `/metrics` exemplar pointing back at the trace.
#[test]
fn traceparent_round_trips_and_traces_capture_the_waterfall() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 32, &tiny_options(1))
        .unwrap();
    // Explicit opt-in so the test also passes under a forced MNN_TRACE=off
    // environment: explicit configuration wins over the env default.
    let config = HttpConfig {
        tracing: Some(true),
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    const TRACEPARENT: &str = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
    const TRACE_ID: &str = "0af7651916cd43dd8448eb211c80319c";

    let body = infer_body(test_input(32, 3));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write_request_with_headers(
        &mut stream,
        "POST",
        "/v1/models/tiny-cnn/infer",
        &body,
        false,
        &[("traceparent", TRACEPARENT)],
    )
    .unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    // Byte-exact echo of the client's context, and its trace id as the
    // request id.
    assert_eq!(response.header("traceparent"), Some(TRACEPARENT));
    assert_eq!(response.header("x-request-id"), Some(TRACE_ID));

    // The trace is sealed just after the response bytes leave, so poll
    // briefly instead of racing the connection thread.
    let deadline = Instant::now() + Duration::from_secs(5);
    let trace = loop {
        let listing = send(addr, "GET", &format!("/v1/traces?id={TRACE_ID}"), b"").unwrap();
        if listing.status == 200 {
            let parsed: TracesResponse = serde_json::from_slice(&listing.body).unwrap();
            assert_eq!(parsed.traces.len(), 1);
            break parsed.traces.into_iter().next().unwrap();
        }
        assert!(
            Instant::now() < deadline,
            "trace {TRACE_ID} never appeared in /v1/traces"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(trace.trace_id, TRACE_ID);
    assert!(
        trace.adopted,
        "client context must be adopted, not replaced"
    );
    assert_eq!(trace.parent_span_id, "b7ad6b7169203331");
    assert_eq!(trace.status, 200);
    assert_eq!(trace.model, "tiny-cnn");
    for (stage, depth) in [
        ("parse", 0),
        ("decode", 0),
        ("serve", 0),
        ("encode", 0),
        ("write", 0),
        ("queue_wait", 1),
        ("batch_assembly", 1),
        ("inference", 1),
        ("scatter", 1),
    ] {
        assert!(
            trace
                .stages
                .iter()
                .any(|s| s.name == stage && s.depth == depth),
            "missing stage {stage}@{depth} in {:?}",
            trace.stages
        );
    }
    assert!(
        trace.coverage >= 0.95,
        "depth-0 stages must tile the request: coverage = {}",
        trace.coverage
    );
    assert!(!trace.ops.is_empty(), "per-op kernel spans must be nested");
    assert!(trace.ops.iter().all(|op| op.trace_id == TRACE_ID));
    assert!(trace.batch.is_some(), "executed batches are linked");

    // The chrome://tracing export serves over the wire.
    let chrome = send(addr, "GET", "/v1/traces?format=trace", b"").unwrap();
    assert_eq!(chrome.status, 200);
    let chrome_text = String::from_utf8(chrome.body).unwrap();
    assert!(chrome_text.contains("\"traceEvents\""), "{chrome_text}");
    assert!(chrome_text.contains("\"ph\":\"X\""), "{chrome_text}");

    // The latency histogram carries an exemplar linking back to a trace —
    // ours, unless a concurrently running test overwrote the bucket.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = send(addr, "GET", "/metrics", b"").unwrap();
        let text = String::from_utf8(metrics.body).unwrap();
        if text.contains(&format!("# {{trace_id=\"{TRACE_ID}\"}}")) {
            break;
        }
        if Instant::now() > deadline {
            assert!(
                text.contains("# {trace_id=\""),
                "no exemplar in /metrics:\n{text}"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown();
}

/// Every response path answers with an `X-Request-Id` — success, client
/// echo, unknown routes, wrong methods, oversized bodies and raw garbage.
#[test]
fn request_identity_echoes_on_every_response_path() {
    let mut registry = ModelRegistry::new();
    registry
        .register_zoo(ModelKind::TinyCnn, 16, &tiny_options(1))
        .unwrap();
    let config = HttpConfig {
        max_body_bytes: 1024,
        tracing: Some(true),
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // A client-supplied id is echoed verbatim; the server still attaches
    // its own traceparent for correlation.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_request_with_headers(
        &mut stream,
        "GET",
        "/healthz",
        b"",
        false,
        &[("x-request-id", "client-chosen-42")],
    )
    .unwrap();
    let echoed = read_response(&mut stream).unwrap();
    assert_eq!(echoed.status, 200);
    assert_eq!(echoed.header("x-request-id"), Some("client-chosen-42"));
    let traceparent = echoed
        .header("traceparent")
        .expect("traced responses carry traceparent");
    assert!(traceparent.starts_with("00-"), "{traceparent}");

    // Without a client id, the trace id is the request id.
    let plain = send(addr, "GET", "/healthz", b"").unwrap();
    let id = plain.header("x-request-id").expect("generated id");
    assert_eq!(id.len(), 32, "trace ids are 32 lowerhex chars: {id}");

    // Unknown route and wrong method still answer with identity.
    let missing = send(addr, "GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.header("x-request-id").is_some());
    let wrong_method = send(addr, "DELETE", "/healthz", b"").unwrap();
    assert_eq!(wrong_method.status, 405);
    assert!(wrong_method.header("x-request-id").is_some());

    // An oversized body is rejected at parse time, before a request object
    // exists — the 413 carries a generated id and closes the connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let oversized = vec![b'x'; 4096];
    write_request(
        &mut stream,
        "POST",
        "/v1/models/tiny-cnn/infer",
        &oversized,
        true,
    )
    .unwrap();
    let rejected = read_response(&mut stream).unwrap();
    assert_eq!(rejected.status, 413);
    assert!(rejected.header("x-request-id").is_some());
    assert_eq!(rejected.header("connection"), Some("close"));

    server.shutdown();
}
