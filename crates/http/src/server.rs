//! The HTTP server: listener, connection threads, admission control and
//! graceful drain.
//!
//! Built directly on `std::net` (no async runtime): a nonblocking accept
//! loop hands each connection to its own thread, which reads with a short
//! timeout so it can notice drain requests while idle. Admission control is
//! two-layered — a connection cap here (`503` + `Retry-After` at accept
//! time) and the per-model bounded queue underneath (`429` + `Retry-After`
//! from the router).

use crate::handler::{route_traced, Routed};
use crate::parser::{HttpRequest, ParseOutcome, RequestParser};
use crate::registry::ModelRegistry;
use crate::response::HttpResponse;
use crate::HttpError;
use mnn_obs::metrics::names;
use mnn_obs::{ActiveTrace, FlightRecorder, TraceContext};
use mnn_serve::DrainReport;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop and idle connections poll for drain requests.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Tunables for the HTTP frontend.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Maximum concurrently served connections; further accepts get `503`
    /// with `Retry-After` (default 64).
    pub max_connections: usize,
    /// Time allowed for graceful drain: in-flight and queued requests get
    /// this long to finish before being failed with `503` (default 10 s).
    pub drain_deadline: Duration,
    /// Bound on a request's header section, bytes (default 16 KiB).
    pub max_header_bytes: usize,
    /// Bound on a request body, bytes (default 64 MiB).
    pub max_body_bytes: usize,
    /// Whether to record request traces into the flight recorder served at
    /// `GET /v1/traces`. `None` (the default) follows the `MNN_TRACE`
    /// environment variable, which is on unless set to `off`/`0`/`false`.
    pub tracing: Option<bool>,
    /// Requests slower than this are retained in the flight recorder's
    /// always-kept slow reservoir (default 250 ms).
    pub slow_trace_threshold: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_connections: 64,
            drain_deadline: Duration::from_secs(10),
            max_header_bytes: crate::parser::DEFAULT_MAX_HEADER_BYTES,
            max_body_bytes: crate::parser::DEFAULT_MAX_BODY_BYTES,
            tracing: None,
            slow_trace_threshold: Duration::from_millis(250),
        }
    }
}

/// Outcome of a graceful shutdown.
#[derive(Debug)]
pub struct DrainSummary {
    /// Whether every model drained fully within the deadline.
    pub drained: bool,
    /// Requests that were failed with `ShuttingDown` instead of served.
    pub aborted_requests: usize,
    /// Per-model drain reports, in name order.
    pub models: Vec<(String, DrainReport)>,
}

/// State shared between the accept loop, connection threads and the owner.
struct Shared {
    registry: RwLock<ModelRegistry>,
    config: HttpConfig,
    draining: AtomicBool,
    drain_deadline_at: Mutex<Option<Instant>>,
    active_connections: AtomicUsize,
    connections_gauge: mnn_obs::Gauge,
    recorder: Arc<FlightRecorder>,
    traces_counter: mnn_obs::Counter,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// Count one written response in `mnn_http_responses_total{code=...}`.
fn count_response(status: u16) {
    mnn_obs::global()
        .counter_with(
            names::HTTP_RESPONSES,
            "HTTP responses written, labeled by status code.",
            &[("code", &status.to_string())],
        )
        .inc();
}

impl Shared {
    /// Wake anyone blocked in [`HttpServer::wait_shutdown_requested`].
    fn request_shutdown(&self) {
        let mut requested = self
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *requested = true;
        self.shutdown_cv.notify_all();
    }

    /// Whether the drain deadline (if any) has passed.
    fn past_drain_deadline(&self) -> bool {
        self.drain_deadline_at
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some_and(|at| Instant::now() >= at)
    }
}

/// A running HTTP serving frontend (see the [module docs](self)).
pub struct HttpServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpServer {
    /// Bind `addr` (port `0` picks an ephemeral port) and start accepting
    /// connections against `registry`.
    ///
    /// # Errors
    ///
    /// Returns bind/configuration I/O errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        config: HttpConfig,
    ) -> Result<HttpServer, HttpError> {
        if config.max_connections == 0 {
            return Err(HttpError::Config(
                "max_connections must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        // Pre-register the full metric schema so the first `/metrics` scrape
        // already lists every well-known series.
        mnn_obs::metrics::register_defaults();
        let recorder = Arc::new(FlightRecorder::new());
        recorder.set_enabled(
            config
                .tracing
                .unwrap_or_else(mnn_obs::context::env_tracing_enabled),
        );
        recorder.set_slow_threshold(config.slow_trace_threshold);
        let shared = Arc::new(Shared {
            registry: RwLock::new(registry),
            config,
            draining: AtomicBool::new(false),
            drain_deadline_at: Mutex::new(None),
            active_connections: AtomicUsize::new(0),
            connections_gauge: mnn_obs::global().gauge(
                names::HTTP_CONNECTIONS,
                "HTTP connections currently being served.",
            ),
            recorder,
            traces_counter: mnn_obs::global().counter(
                names::TRACES_RECORDED,
                "Request traces completed by the flight recorder.",
            ),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = std::thread::Builder::new()
            .name("mnn-http-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_connections))
            .map_err(HttpError::Io)?;

        Ok(HttpServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::SeqCst)
    }

    /// The flight recorder behind `GET /v1/traces`: the retained ring of
    /// recent request traces plus the slow-request reservoir.
    pub fn trace_recorder(&self) -> &Arc<FlightRecorder> {
        &self.shared.recorder
    }

    /// Ask the owner blocked in [`HttpServer::wait_shutdown_requested`] to
    /// shut the server down. Also triggered by `POST /admin/shutdown`.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until someone calls [`HttpServer::request_shutdown`] or a client
    /// hits `POST /admin/shutdown`.
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Gracefully shut down: stop accepting, let connection threads finish
    /// the requests they hold, then drain every model's queue within the
    /// configured deadline. Every accepted request is answered — served if it
    /// finishes in time, failed with `503` otherwise; none are abandoned.
    pub fn shutdown(mut self) -> DrainSummary {
        let deadline = self.shared.config.drain_deadline;
        *self
            .shared
            .drain_deadline_at
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(Instant::now() + deadline);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();

        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Connection threads observe `draining` within one poll interval,
        // finish their buffered requests and exit.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut connections = self.connections.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *connections)
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }

        // No connection threads remain, so nothing holds the registry lock.
        let registry = {
            let mut guard = self
                .shared
                .registry
                .write()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        let remaining = self
            .shared
            .drain_deadline_at
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(deadline);
        let models = registry.drain_with_deadline(remaining);
        DrainSummary {
            drained: models.iter().all(|(_, report)| report.drained),
            aborted_requests: models.iter().map(|(_, report)| report.aborted).sum(),
            models,
        }
    }
}

/// Accept connections until drain completes; enforce the connection cap.
///
/// Draining does not stop accepting immediately: while in-flight connections
/// are still finishing (and the drain deadline has not passed), new
/// connections are accepted and served — each gets exactly one response with
/// `Connection: close`. This keeps `/readyz` and `/healthz` answering
/// (`503`/`draining`) during the drain window, so load balancers observe the
/// flip instead of connection refusals.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.draining.load(Ordering::SeqCst)
            && (shared.active_connections.load(Ordering::SeqCst) == 0
                || shared.past_drain_deadline())
        {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.active_connections.load(Ordering::SeqCst) >= shared.config.max_connections
                {
                    reject_over_capacity(stream);
                    continue;
                }
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                shared.connections_gauge.add(1.0);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("mnn-http-conn".into())
                    .spawn(move || {
                        serve_connection(stream, &conn_shared);
                        conn_shared
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                        conn_shared.connections_gauge.sub(1.0);
                    });
                match spawned {
                    Ok(handle) => {
                        let mut held = connections.lock().unwrap_or_else(|e| e.into_inner());
                        held.retain(|h| !h.is_finished());
                        held.push(handle);
                    }
                    Err(_) => {
                        shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                        shared.connections_gauge.sub(1.0);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Answer an over-capacity connection with `503` and close it. No request
/// bytes were read, so the response carries a freshly generated
/// `X-Request-Id` for the client to quote when reporting the rejection.
fn reject_over_capacity(mut stream: TcpStream) {
    let response = HttpResponse::error(503, "connection limit reached")
        .with_header("retry-after", "1")
        .with_header("x-request-id", TraceContext::generate().trace_id_hex());
    count_response(response.status);
    let _ = response.write_to(&mut stream, false);
}

/// Open a trace for one parsed request, adopting the client's `traceparent`
/// context when present and valid. `started` is the instant the request's
/// first byte arrived (the waterfall's time zero). Costs one relaxed atomic
/// load when the recorder is disabled.
fn begin_request_trace(
    shared: &Shared,
    request: &HttpRequest,
    started: Instant,
) -> Option<ActiveTrace> {
    if !shared.recorder.is_enabled() {
        return None;
    }
    let parent = request
        .header("traceparent")
        .and_then(TraceContext::parse_traceparent);
    let trace = shared.recorder.begin_trace_at(parent, started)?;
    trace.add_stage("parse", 0, started, Instant::now());
    Some(trace)
}

/// Stamp response identity headers: `x-request-id` (the client's own id when
/// supplied, else the trace id, else freshly generated) and `traceparent`
/// (the client's header echoed byte-exact when it was valid, else this
/// trace's own context). Every response path carries these — success,
/// rejection and drain alike.
fn stamp_trace_headers(
    response: HttpResponse,
    request: &HttpRequest,
    trace: Option<&ActiveTrace>,
) -> HttpResponse {
    let request_id = request
        .header("x-request-id")
        .map(str::to_string)
        .or_else(|| trace.map(ActiveTrace::trace_id_hex))
        .unwrap_or_else(|| TraceContext::generate().trace_id_hex());
    let mut response = response.with_header("x-request-id", request_id);
    let client_parent = request
        .header("traceparent")
        .filter(|value| TraceContext::parse_traceparent(value).is_some());
    if let Some(raw) = client_parent {
        response = response.with_header("traceparent", raw);
    } else if let Some(trace) = trace {
        response = response.with_header("traceparent", trace.traceparent());
    }
    response
}

/// Serve one connection until it closes, errors, or the server drains.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut parser =
        RequestParser::with_limits(shared.config.max_header_bytes, shared.config.max_body_bytes);
    let mut buf = [0u8; 8 * 1024];
    // The instant the in-progress request's first byte arrived; the traced
    // waterfall's time zero. Reset once that request has been answered.
    let mut request_started: Option<Instant> = None;
    // Whether this connection has been answered at least once; drain closes
    // idle *answered* connections immediately but lets a fresh connection
    // (e.g. a health probe racing the drain) deliver its first request.
    let mut responded = false;
    loop {
        // Serve everything already buffered (pipelining) before reading more.
        loop {
            match parser.next_request() {
                ParseOutcome::Request(request) => {
                    let started = request_started.take().unwrap_or_else(Instant::now);
                    let trace = begin_request_trace(shared, &request, started);
                    let draining = shared.draining.load(Ordering::SeqCst);
                    let routed = {
                        let registry = shared.registry.read().unwrap_or_else(|e| e.into_inner());
                        route_traced(
                            &request,
                            &registry,
                            draining,
                            Some(&shared.recorder),
                            trace.as_ref(),
                        )
                    };
                    let (response, is_shutdown) = match routed {
                        Routed::Response(response) => (response, false),
                        Routed::Shutdown(response) => (response, true),
                    };
                    let keep_alive = request.keep_alive && !draining && !is_shutdown;
                    let response = stamp_trace_headers(response, &request, trace.as_ref());
                    count_response(response.status);
                    let status = response.status;
                    let write_start = Instant::now();
                    let write_ok = response.write_to(&mut stream, keep_alive).is_ok();
                    if let Some(trace) = &trace {
                        trace.add_stage("write", 0, write_start, Instant::now());
                        trace.finish(u64::from(status));
                        shared.traces_counter.inc();
                    }
                    responded = true;
                    if !write_ok {
                        return;
                    }
                    if is_shutdown {
                        shared.request_shutdown();
                    }
                    if !keep_alive {
                        return;
                    }
                }
                ParseOutcome::Error(error) => {
                    // The request never parsed, so there is nothing to adopt;
                    // the rejection still carries a fresh id to report.
                    let response = HttpResponse::error(error.status, error.message)
                        .with_header("x-request-id", TraceContext::generate().trace_id_hex());
                    count_response(response.status);
                    let _ = response.write_to(&mut stream, false);
                    return;
                }
                ParseOutcome::NeedMore => break,
            }
        }

        if shared.draining.load(Ordering::SeqCst)
            && ((responded && !parser.has_partial()) || shared.past_drain_deadline())
        {
            // An answered, idle connection closes at drain; one whose request
            // bytes are still arriving — or that connected during the drain
            // and has not been answered yet — gets until the drain deadline.
            return;
        }

        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if request_started.is_none() {
                    request_started = Some(Instant::now());
                }
                parser.feed(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: loop to re-check the drain flag.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
