//! HTTP serving frontend for MNN-rs: a network face for the paper's
//! inference engine.
//!
//! The MNN paper (MLSys 2020) targets on-device inference; this crate puts
//! the same engine behind a wire protocol so one process can serve many
//! models to many clients — the deployment shape of an inference service.
//! Everything is built on `std::net` and threads (no async runtime, no
//! external HTTP dependency):
//!
//! * [`parser`] — an incremental HTTP/1.1 request parser that tolerates
//!   arbitrary read boundaries, enforces header/body limits, and never
//!   panics on malformed input (fuzzed in `tests/parser_fuzz.rs`).
//! * [`codec`] — the JSON wire types; f32 tensors round-trip bit-exactly.
//! * [`registry`] — a [`ModelRegistry`] mapping names to per-model
//!   [`mnn_serve::Server`] runtimes, loaded from a manifest, a directory of
//!   `.mnnr` files, or the built-in zoo.
//! * [`handler`] — routing: `GET /healthz`, `GET /v1/models`,
//!   `GET /v1/models/{name}/stats`, `POST /v1/models/{name}/infer`,
//!   `GET /v1/traces`, `POST /admin/shutdown`.
//! * [`server`] — the [`HttpServer`]: accept loop, connection threads,
//!   admission control (connection cap → `503`, queue backpressure → `429`,
//!   both with `Retry-After`), and deadline-bounded graceful drain in which
//!   every accepted request is answered.
//!
//! Every request is traced end to end (W3C `traceparent` adopted from the
//! client or a fresh root otherwise) through parse → decode → queue wait →
//! batch assembly → inference → scatter → encode → write, and every
//! response — success, rejection and drain alike — echoes `X-Request-Id`
//! and `traceparent`. Completed waterfalls are retained in a bounded
//! [`FlightRecorder`] served at `GET /v1/traces` (JSON, `?id=<trace id>`,
//! or `?format=trace` for chrome://tracing). Disable with
//! `MNN_TRACE=off` or [`HttpConfig::tracing`].
//!
//! ```
//! use mnn_http::{HttpConfig, HttpServer, ModelRegistry, ServeOptions};
//! use std::io::{Read, Write};
//!
//! let mut registry = ModelRegistry::new();
//! let options = ServeOptions {
//!     workers: 1,
//!     session: mnn_core::SessionConfig::cpu(1),
//!     ..ServeOptions::default()
//! };
//! registry
//!     .register_zoo(mnn_models::ModelKind::TinyCnn, 16, &options)
//!     .unwrap();
//!
//! let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).unwrap();
//! let mut client = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! client
//!     .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
//!     .unwrap();
//! let mut reply = String::new();
//! client.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains(r#"{"status":"ok","models":1}"#));
//!
//! let summary = server.shutdown();
//! assert!(summary.drained);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod handler;
pub mod parser;
pub mod registry;
pub mod response;
pub mod server;

pub use codec::{
    BuildJson, HealthResponse, InferRequest, InferResponse, ModelStatus, ModelSummary,
    ModelsResponse, NamedTensorJson, ProfileResponse, ReadyResponse, StatsResponse, StatusResponse,
    TensorJson, TracesResponse,
};
pub use error::HttpError;
pub use parser::{HttpRequest, ParseError, ParseOutcome, RequestParser};
pub use registry::{ModelEntry, ModelRegistry, ServeOptions};
pub use response::HttpResponse;
pub use server::{DrainSummary, HttpConfig, HttpServer};

pub use mnn_obs::{ActiveTrace, FlightRecorder, RequestTrace, TraceContext};
