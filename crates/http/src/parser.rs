//! Incremental HTTP/1.1 request parsing.
//!
//! [`RequestParser`] is fed raw bytes as they arrive from a socket —
//! split across *arbitrary* read boundaries — and yields complete
//! [`HttpRequest`]s. It understands request lines, header fields,
//! `Content-Length` bodies, keep-alive semantics (HTTP/1.1 and 1.0) and
//! pipelined requests. Malformed input yields a [`ParseError`] carrying the
//! HTTP status to answer with (`400` for malformed syntax, `431` for
//! oversized header sections, `413` for oversized bodies, `505` for unknown
//! protocol versions, `501` for `Transfer-Encoding`) — **never** a panic;
//! the fuzz suite in `tests/parser_fuzz.rs` locks that in.

use std::fmt;

/// Default bound on the request head (request line + headers), bytes.
pub const DEFAULT_MAX_HEADER_BYTES: usize = 16 * 1024;
/// Default bound on a request body, bytes. Large enough for a
/// 224×224×3 f32 image rendered as JSON text with full float precision.
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Maximum number of header fields accepted in one request.
pub const MAX_HEADER_COUNT: usize = 100;

/// A parse failure: the HTTP status to answer with and a diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// HTTP status code describing the failure (400, 413, 431, 501 or 505).
    pub status: u16,
    /// Human-readable diagnostic, returned in the error response body.
    pub message: String,
}

impl ParseError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        ParseError {
            status,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.status, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One fully received HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request path without the query string (e.g. `/v1/models`).
    pub path: String,
    /// The query string after `?`, if any (not decoded).
    pub query: Option<String>,
    /// Header fields in arrival order; names are lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after responding, per the
    /// request's HTTP version and `Connection` header.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of the named header (lowercase lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Result of one [`RequestParser::next_request`] call.
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffered bytes do not yet hold a complete request; feed more.
    NeedMore,
    /// One complete request was extracted from the buffer.
    Request(HttpRequest),
    /// The byte stream is malformed; answer with the error's status and close
    /// the connection. The parser stays failed for this connection.
    Error(ParseError),
}

/// Incremental parser for one connection's request byte stream.
pub struct RequestParser {
    buffer: Vec<u8>,
    max_header_bytes: usize,
    max_body_bytes: usize,
    failed: Option<ParseError>,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser with the default header/body limits.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_HEADER_BYTES, DEFAULT_MAX_BODY_BYTES)
    }

    /// A parser with explicit bounds on the header section and the body.
    pub fn with_limits(max_header_bytes: usize, max_body_bytes: usize) -> Self {
        RequestParser {
            buffer: Vec::new(),
            max_header_bytes,
            max_body_bytes,
            failed: None,
        }
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Number of bytes buffered but not yet consumed by a parsed request.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer holds the beginning of an unfinished request —
    /// i.e. closing the connection now would drop a request in flight.
    pub fn has_partial(&self) -> bool {
        !self.buffer.is_empty() && self.failed.is_none()
    }

    /// Try to extract the next complete request from the buffered bytes.
    pub fn next_request(&mut self) -> ParseOutcome {
        if let Some(err) = &self.failed {
            return ParseOutcome::Error(err.clone());
        }
        match self.parse_one() {
            Ok(Some(request)) => ParseOutcome::Request(request),
            Ok(None) => ParseOutcome::NeedMore,
            Err(err) => {
                self.failed = Some(err.clone());
                ParseOutcome::Error(err)
            }
        }
    }

    /// Parse one request off the front of the buffer, if complete.
    fn parse_one(&mut self) -> Result<Option<HttpRequest>, ParseError> {
        let Some((head_end, body_start)) = find_head_end(&self.buffer) else {
            if self.buffer.len() > self.max_header_bytes {
                return Err(ParseError::new(
                    431,
                    format!(
                        "header section exceeds {} bytes without terminating",
                        self.max_header_bytes
                    ),
                ));
            }
            return Ok(None);
        };
        if head_end > self.max_header_bytes {
            return Err(ParseError::new(
                431,
                format!("header section exceeds {} bytes", self.max_header_bytes),
            ));
        }

        let head = Head::parse(&self.buffer[..head_end])?;
        let content_length = head.content_length(self.max_body_bytes)?;
        let total = body_start + content_length;
        if self.buffer.len() < total {
            return Ok(None);
        }

        let body = self.buffer[body_start..total].to_vec();
        // Keep any pipelined follow-up request buffered.
        self.buffer.drain(..total);
        Ok(Some(HttpRequest {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        }))
    }
}

/// Locate the end of the request head. Returns `(head_len, body_start)`.
/// Accepts both CRLF (`\r\n\r\n`) and bare-LF (`\n\n`) terminators, like
/// mainstream servers do.
fn find_head_end(buffer: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buffer.len() {
        match buffer[i] {
            b'\n' if buffer[i + 1..].first() == Some(&b'\n') => return Some((i + 1, i + 2)),
            b'\n' if buffer[i + 1..].starts_with(b"\r\n") => return Some((i + 1, i + 3)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// The parsed request head (everything before the body).
struct Head {
    method: String,
    path: String,
    query: Option<String>,
    headers: Vec<(String, String)>,
    keep_alive: bool,
}

impl Head {
    fn parse(head: &[u8]) -> Result<Head, ParseError> {
        let text = std::str::from_utf8(head)
            .map_err(|_| ParseError::new(400, "request head is not valid UTF-8"))?;
        let mut lines = text
            .split('\n')
            .map(|line| line.strip_suffix('\r').unwrap_or(line));

        let request_line = lines
            .next()
            .ok_or_else(|| ParseError::new(400, "empty request head"))?;
        let mut parts = request_line.split(' ').filter(|part| !part.is_empty());
        let method = parts
            .next()
            .ok_or_else(|| ParseError::new(400, "missing request method"))?;
        let target = parts
            .next()
            .ok_or_else(|| ParseError::new(400, "missing request target"))?;
        let version = parts
            .next()
            .ok_or_else(|| ParseError::new(400, "missing HTTP version"))?;
        if parts.next().is_some() {
            return Err(ParseError::new(400, "malformed request line"));
        }
        if method.is_empty() || !method.bytes().all(is_token_byte) {
            return Err(ParseError::new(400, "malformed request method"));
        }
        if !target.starts_with('/') && target != "*" {
            return Err(ParseError::new(400, "request target must be absolute"));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            v if v.starts_with("HTTP/") => {
                return Err(ParseError::new(505, format!("unsupported version {v}")))
            }
            _ => return Err(ParseError::new(400, "malformed HTTP version")),
        };

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue; // the terminating blank line
            }
            if headers.len() >= MAX_HEADER_COUNT {
                return Err(ParseError::new(
                    431,
                    format!("more than {MAX_HEADER_COUNT} header fields"),
                ));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseError::new(400, "header field without a colon"))?;
            // Whitespace between the field name and the colon enables request
            // smuggling; RFC 9112 requires rejection.
            if name.is_empty() || !name.bytes().all(is_token_byte) {
                return Err(ParseError::new(400, "malformed header field name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(ParseError::new(501, "transfer-encoding is not supported"));
        }

        let keep_alive = connection_keep_alive(&headers, http11);
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        Ok(Head {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            keep_alive,
        })
    }

    /// Validate and read the `Content-Length` header (0 when absent).
    fn content_length(&self, max_body_bytes: usize) -> Result<usize, ParseError> {
        let mut values = self
            .headers
            .iter()
            .filter(|(n, _)| n == "content-length")
            .map(|(_, v)| v.as_str());
        let Some(first) = values.next() else {
            return Ok(0);
        };
        // Repeated Content-Length headers are a smuggling vector unless all
        // agree (RFC 9110 §8.6).
        if values.any(|v| v != first) {
            return Err(ParseError::new(400, "conflicting Content-Length headers"));
        }
        if first.is_empty() || !first.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseError::new(
                400,
                format!("invalid Content-Length '{first}'"),
            ));
        }
        let length: usize = first
            .parse()
            .map_err(|_| ParseError::new(400, format!("Content-Length '{first}' overflows")))?;
        if length > max_body_bytes {
            return Err(ParseError::new(
                413,
                format!("body of {length} bytes exceeds the {max_body_bytes}-byte limit"),
            ));
        }
        Ok(length)
    }
}

/// RFC 9110 token characters, the legal alphabet for methods and header names.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Keep-alive decision: HTTP/1.1 defaults to persistent unless `close`;
/// HTTP/1.0 defaults to close unless `keep-alive`.
fn connection_keep_alive(headers: &[(String, String)], http11: bool) -> bool {
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let has_option = |option: &str| {
        connection
            .as_deref()
            .is_some_and(|v| v.split(',').any(|token| token.trim() == option))
    };
    if http11 {
        !has_option("close")
    } else {
        has_option("keep-alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> (Vec<HttpRequest>, Option<ParseError>) {
        let mut parser = RequestParser::new();
        parser.feed(bytes);
        let mut requests = Vec::new();
        loop {
            match parser.next_request() {
                ParseOutcome::Request(r) => requests.push(r),
                ParseOutcome::NeedMore => return (requests, None),
                ParseOutcome::Error(e) => return (requests, Some(e)),
            }
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let (requests, err) = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(err, None);
        assert_eq!(requests.len(), 1);
        let r = &requests[0];
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, None);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let (requests, err) =
            parse_all(b"POST /infer?debug=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET");
        assert_eq!(err, None);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].body, b"abcd");
        assert_eq!(requests[0].query.as_deref(), Some("debug=1"));
    }

    #[test]
    fn single_byte_feeding_reaches_the_same_result() {
        let stream = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\nX-Tag: v\r\n\r\nxyz";
        let mut parser = RequestParser::new();
        let mut parsed = None;
        for &b in stream.iter() {
            parser.feed(&[b]);
            if let ParseOutcome::Request(r) = parser.next_request() {
                parsed = Some(r);
            }
        }
        let r = parsed.expect("request completes on the final byte");
        assert_eq!(r.body, b"xyz");
        assert_eq!(r.header("x-tag"), Some("v"));
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let (requests, err) = parse_all(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n",
        );
        assert_eq!(err, None);
        let paths: Vec<&str> = requests.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["/a", "/b", "/c"]);
        assert_eq!(requests[1].body, b"hi");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let (requests, err) = parse_all(b"GET /x HTTP/1.1\nHost: y\n\n");
        assert_eq!(err, None);
        assert_eq!(requests[0].path, "/x");
    }

    #[test]
    fn http10_defaults_to_close_and_honors_keep_alive() {
        let (r, _) = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r[0].keep_alive);
        let (r, _) = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r[0].keep_alive);
        let (r, _) = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r[0].keep_alive);
    }

    #[test]
    fn malformed_inputs_yield_400_family_errors() {
        for (bytes, status) in [
            (b"GARBAGE\r\n\r\n".as_slice(), 400),
            (b"GET /x HTTP/2.0\r\n\r\n".as_slice(), 505),
            (b"GET /x FTP/1.1\r\n\r\n".as_slice(), 400),
            (b"GET x HTTP/1.1\r\n\r\n".as_slice(), 400),
            (b"GET /x HTTP/1.1\r\nbad header\r\n\r\n".as_slice(), 400),
            (b"GET /x HTTP/1.1\r\nname : v\r\n\r\n".as_slice(), 400),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n".as_slice(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
                501,
            ),
            (b"\xff\xfe /x HTTP/1.1\r\n\r\n".as_slice(), 400),
        ] {
            let (_, err) = parse_all(bytes);
            let err = err.unwrap_or_else(|| panic!("{bytes:?} must fail"));
            assert_eq!(err.status, status, "{bytes:?}: {err}");
        }
    }

    #[test]
    fn agreeing_duplicate_content_lengths_are_tolerated() {
        let (requests, err) =
            parse_all(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(err, None);
        assert_eq!(requests[0].body, b"ok");
    }

    #[test]
    fn oversized_header_section_is_431_even_unterminated() {
        let mut parser = RequestParser::with_limits(64, 1024);
        parser.feed(b"GET /x HTTP/1.1\r\n");
        parser.feed(&[b'a'; 128]);
        match parser.next_request() {
            ParseOutcome::Error(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_413_before_the_body_arrives() {
        let mut parser = RequestParser::with_limits(1024, 16);
        parser.feed(b"POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        match parser.next_request() {
            ParseOutcome::Error(e) => assert_eq!(e.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn parser_stays_failed_after_an_error() {
        let mut parser = RequestParser::new();
        parser.feed(b"NOT HTTP AT ALL\r\n\r\n");
        assert!(matches!(parser.next_request(), ParseOutcome::Error(_)));
        parser.feed(b"GET /fine HTTP/1.1\r\n\r\n");
        assert!(matches!(parser.next_request(), ParseOutcome::Error(_)));
    }

    #[test]
    fn incomplete_body_reports_need_more_and_partial() {
        let mut parser = RequestParser::new();
        parser.feed(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf");
        assert!(matches!(parser.next_request(), ParseOutcome::NeedMore));
        assert!(parser.has_partial());
        parser.feed(b"isdone");
        match parser.next_request() {
            ParseOutcome::Request(r) => assert_eq!(r.body, b"halfisdone"),
            other => panic!("expected request, got {other:?}"),
        }
        assert!(!parser.has_partial());
    }
}
