//! Multi-model registry: one [`mnn_serve::Server`] per registered model.
//!
//! The registry is the serving frontend's model table. Models come from a
//! [`ModelManifest`](mnn_converter::ModelManifest), a directory scan of
//! `.mnnr` files, or the built-in zoo; each gets its own serving runtime
//! (worker threads, micro-batcher, bounded queue) built from one shared
//! [`ServeOptions`].

use crate::codec::ModelSummary;
use crate::error::HttpError;
use mnn_converter::{ModelFile, ModelManifest};
use mnn_core::SessionConfig;
use mnn_models::ModelKind;
use mnn_obs::{Profiler, SloConfig};
use mnn_serve::{DrainReport, Server};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving-runtime settings applied to every registered model.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads per model (default 2).
    pub workers: usize,
    /// Micro-batch size cap per model (default 8).
    pub max_batch: usize,
    /// Batching window (default 1 ms).
    pub batch_window: Duration,
    /// Bounded queue capacity per model; `None` uses the serve default.
    pub queue_capacity: Option<usize>,
    /// Session configuration (threads, tuning mode, tune-cache path).
    pub session: SessionConfig,
    /// Attach a per-model runtime [`Profiler`] to every session, exposed at
    /// `GET /v1/models/{name}/profile` (default off).
    pub profiling: bool,
    /// Watchdog deadline for each model's workers; `None` uses the serve
    /// default (30 s). A non-idle worker silent past the deadline is flagged
    /// stalled, which fails `/readyz` and surfaces in `/v1/status`.
    pub watchdog_deadline: Option<Duration>,
    /// Latency/availability objective tracked per model and reported in
    /// `/v1/status` and `/v1/models/{name}/stats` (default none).
    pub slo: Option<SloConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(1),
            queue_capacity: None,
            session: SessionConfig::default(),
            profiling: false,
            watchdog_deadline: None,
            slo: None,
        }
    }
}

/// One registered model: its serving runtime plus wire-level metadata.
pub struct ModelEntry {
    /// The model's serving runtime.
    pub server: Server,
    /// Format version of the model file the entry was loaded from.
    pub format_version: u32,
    /// Bytes of constant (weight) data in the graph.
    pub constant_bytes: u64,
    /// Whether the graph contains quantized (int8) operators.
    pub quantized: bool,
    /// Graph input names, in declaration order.
    pub inputs: Vec<String>,
    /// Graph output names, in declaration order.
    pub outputs: Vec<String>,
    /// Per-model runtime profiler, present when the entry was registered with
    /// [`ServeOptions::profiling`] enabled.
    pub profiler: Option<Arc<Profiler>>,
    /// Ledger account holding the model's constant (weight) bytes under
    /// `(model name, "constants")`; zeroed when the entry is dropped. A
    /// separate guard (not `Drop` on the entry itself) so drain can still
    /// move the server out.
    #[allow(dead_code)] // held for its Drop
    constants_account: ConstantsGuard,
}

/// Owns a model's `"constants"` ledger component and releases it on drop:
/// unloading the model releases the weights.
struct ConstantsGuard(mnn_obs::AccountedBytes);

impl Drop for ConstantsGuard {
    fn drop(&mut self) {
        self.0.set(0);
    }
}

/// Name-keyed table of serving runtimes (see the [module docs](self)).
#[derive(Default)]
pub struct ModelRegistry {
    entries: BTreeMap<String, ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `model` under `name`, building its serving runtime (session
    /// pre-warm included — this is the expensive step).
    ///
    /// # Errors
    ///
    /// Fails on duplicate names and on graphs the serving runtime rejects.
    pub fn register_model(
        &mut self,
        name: impl Into<String>,
        model: ModelFile,
        options: &ServeOptions,
    ) -> Result<(), HttpError> {
        let name = name.into();
        if name.is_empty() {
            return Err(HttpError::Model("model name must not be empty".into()));
        }
        if self.entries.contains_key(&name) {
            return Err(HttpError::Model(format!(
                "model '{name}' is already registered"
            )));
        }
        let graph = &model.graph;
        let quantized = graph.nodes().iter().any(|n| n.op.is_quantized());
        let constant_bytes = graph.constant_bytes() as u64;
        let inputs: Vec<String> = graph.input_names().iter().map(|s| s.to_string()).collect();
        let outputs: Vec<String> = graph.output_names().iter().map(|s| s.to_string()).collect();

        let profiler = if options.profiling {
            let profiler = Arc::new(Profiler::new());
            profiler.set_enabled(true);
            Some(profiler)
        } else {
            None
        };
        let mut session = options.session.clone();
        if let Some(profiler) = &profiler {
            session.profiler = Some(Arc::clone(profiler));
        }
        // Sessions account their arenas and plan caches under the registry
        // name, so `/v1/status` attributes memory to the model a client
        // addresses (several entries may share one graph name).
        session.resource_scope = Some(name.clone());

        let mut builder = Server::builder()
            .workers(options.workers)
            .max_batch(options.max_batch)
            .batch_window(options.batch_window)
            .session_config(session);
        if let Some(capacity) = options.queue_capacity {
            builder = builder.queue_capacity(capacity);
        }
        if let Some(deadline) = options.watchdog_deadline {
            builder = builder.watchdog_deadline(deadline);
        }
        if let Some(slo) = options.slo {
            builder = builder.slo(slo);
        }
        let server = builder
            .build(model.graph)
            .map_err(|e| HttpError::Model(format!("model '{name}': {e}")))?;

        let constants_account = mnn_obs::resources::account(&name, "constants");
        constants_account.set(constant_bytes);

        self.entries.insert(
            name,
            ModelEntry {
                server,
                format_version: model.version,
                constant_bytes,
                quantized,
                inputs,
                outputs,
                profiler,
                constants_account: ConstantsGuard(constants_account),
            },
        );
        Ok(())
    }

    /// Register a zoo model under its canonical lowercase name (e.g.
    /// `tiny-cnn`), built at batch 1 and the given input resolution.
    ///
    /// # Errors
    ///
    /// Fails like [`ModelRegistry::register_model`].
    pub fn register_zoo(
        &mut self,
        kind: ModelKind,
        input_size: usize,
        options: &ServeOptions,
    ) -> Result<(), HttpError> {
        let graph = mnn_models::build(kind, 1, input_size);
        let name = kind.name().to_ascii_lowercase();
        self.register_model(name, ModelFile::new(graph), options)
    }

    /// Register every `.mnnr` file in `dir`, named by file stem, in sorted
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unreadable model files and duplicate names.
    pub fn load_dir(
        &mut self,
        dir: impl AsRef<Path>,
        options: &ServeOptions,
    ) -> Result<usize, HttpError> {
        let dir = dir.as_ref();
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "mnnr"))
            .collect();
        paths.sort();
        let mut loaded = 0;
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .ok_or_else(|| {
                    HttpError::Model(format!("non-UTF-8 model filename {}", path.display()))
                })?
                .to_string();
            let model = ModelFile::load(&path)
                .map_err(|e| HttpError::Model(format!("{}: {e}", path.display())))?;
            self.register_model(name, model, options)?;
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Register every model a manifest file names, resolving relative paths
    /// against the manifest's directory.
    ///
    /// # Errors
    ///
    /// Fails on manifest or model-file errors and duplicate names.
    pub fn load_manifest(
        &mut self,
        manifest_path: impl AsRef<Path>,
        options: &ServeOptions,
    ) -> Result<usize, HttpError> {
        let manifest_path = manifest_path.as_ref();
        let manifest = ModelManifest::load(manifest_path)
            .map_err(|e| HttpError::Model(format!("{}: {e}", manifest_path.display())))?;
        let base = manifest_path.parent().unwrap_or(Path::new("."));
        let models = manifest
            .load_models(base)
            .map_err(|e| HttpError::Model(e.to_string()))?;
        let count = models.len();
        for (name, model) in models {
            self.register_model(name, model, options)?;
        }
        Ok(count)
    }

    /// Look up a model by registry name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.get(name)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(|k| k.as_str()).collect()
    }

    /// Iterate `(name, entry)` pairs in name order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &ModelEntry)> {
        self.entries
            .iter()
            .map(|(name, entry)| (name.as_str(), entry))
    }

    /// Wire-level summaries for `GET /v1/models`, in name order.
    pub fn summaries(&self) -> Vec<ModelSummary> {
        self.entries
            .iter()
            .map(|(name, entry)| ModelSummary {
                name: name.clone(),
                format_version: entry.format_version,
                constant_bytes: entry.constant_bytes,
                quantized: entry.quantized,
                inputs: entry.inputs.clone(),
                outputs: entry.outputs.clone(),
            })
            .collect()
    }

    /// Drain every model's serving runtime, splitting `deadline` across the
    /// models by remaining time. Consumes the registry: after this no model
    /// accepts work.
    pub fn drain_with_deadline(self, deadline: Duration) -> Vec<(String, DrainReport)> {
        let deadline_at = Instant::now() + deadline;
        self.entries
            .into_iter()
            .map(|(name, entry)| {
                let remaining = deadline_at.saturating_duration_since(Instant::now());
                let report = entry.server.shutdown_with_deadline(remaining);
                (name, report)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_tensor::Tensor;

    fn tiny_options() -> ServeOptions {
        ServeOptions {
            workers: 1,
            max_batch: 1,
            session: SessionConfig::cpu(1),
            ..ServeOptions::default()
        }
    }

    #[test]
    fn zoo_registration_serves_inference() {
        let mut registry = ModelRegistry::new();
        registry
            .register_zoo(ModelKind::TinyCnn, 16, &tiny_options())
            .unwrap();
        assert_eq!(registry.names(), ["tiny-cnn"]);

        let entry = registry.get("tiny-cnn").unwrap();
        assert!(!entry.quantized);
        assert!(entry.constant_bytes > 0);
        assert_eq!(entry.inputs.len(), 1);

        let input = Tensor::zeros(mnn_tensor::Shape::nchw(1, 3, 16, 16));
        let outputs = entry
            .server
            .infer(&[(entry.inputs[0].as_str(), &input)])
            .unwrap();
        assert_eq!(outputs.len(), 1);

        let reports = registry.drain_with_deadline(Duration::from_secs(5));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].1.drained);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = ModelRegistry::new();
        registry
            .register_zoo(ModelKind::TinyCnn, 16, &tiny_options())
            .unwrap();
        let err = registry
            .register_zoo(ModelKind::TinyCnn, 16, &tiny_options())
            .unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
        registry.drain_with_deadline(Duration::from_secs(5));
    }

    #[test]
    fn directory_loading_registers_by_file_stem() {
        let dir = std::env::temp_dir().join(format!("mnn-http-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph = mnn_models::build(ModelKind::TinyCnn, 1, 16);
        ModelFile::new(graph).save(dir.join("tiny.mnnr")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let mut registry = ModelRegistry::new();
        let loaded = registry.load_dir(&dir, &tiny_options()).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(registry.names(), ["tiny"]);
        registry.drain_with_deadline(Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(dir);
    }
}
