//! Error type for the HTTP serving frontend.

use std::fmt;

/// Failures configuring, loading models into, or running the HTTP server.
#[derive(Debug)]
pub enum HttpError {
    /// Socket or filesystem I/O failed.
    Io(std::io::Error),
    /// A configuration value is invalid (e.g. a bad flag).
    Config(String),
    /// A model could not be loaded or registered.
    Model(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Config(msg) => write!(f, "configuration error: {msg}"),
            HttpError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}
