//! HTTP/1.1 response construction and serialization.

use serde::Serialize;
use std::io::{self, Write};

/// An HTTP response ready to be written to a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 429, …).
    pub status: u16,
    /// `Content-Type` of the body (defaults to `application/json`).
    pub content_type: String,
    /// Extra header fields beyond the automatic `Content-Type`,
    /// `Content-Length` and `Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response: serializes `value` and sets `Content-Type`.
    pub fn json<T: Serialize>(status: u16, value: &T) -> HttpResponse {
        let body = serde_json::to_string(value)
            .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e}\"}}"));
        HttpResponse {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with an explicit `Content-Type` (e.g. the
    /// Prometheus exposition format of `GET /metrics`).
    pub fn text(status: u16, content_type: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An error response with a `{"error": message}` JSON body.
    pub fn error(status: u16, message: impl AsRef<str>) -> HttpResponse {
        #[derive(Serialize)]
        struct ErrorBody {
            error: String,
        }
        HttpResponse::json(
            status,
            &ErrorBody {
                error: message.as_ref().to_string(),
            },
        )
    }

    /// Add a header field.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize the response to `writer`, stamping `Connection: keep-alive`
    /// or `Connection: close` according to `keep_alive`.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_a_complete_json_response() {
        #[derive(Serialize)]
        struct Body {
            ok: bool,
        }
        let response = HttpResponse::json(200, &Body { ok: true });
        let mut out = Vec::new();
        response.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn text_responses_carry_their_content_type() {
        let response = HttpResponse::text(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            "m_total 1\n",
        );
        let mut out = Vec::new();
        response.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("content-type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "{text}"
        );
        assert!(text.ends_with("\r\n\r\nm_total 1\n"));
    }

    #[test]
    fn error_body_and_extra_headers() {
        let response = HttpResponse::error(429, "queue full").with_header("retry-after", "1");
        let mut out = Vec::new();
        response.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
