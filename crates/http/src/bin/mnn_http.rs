//! `mnn_http` — serve models over HTTP.
//!
//! ```text
//! mnn_http --zoo tiny-cnn=32 --port 8080
//! mnn_http --models ./zoo --workers 4 --tuning cached
//! mnn_http --manifest ./zoo/manifest.json
//! ```
//!
//! The process serves until it receives `POST /admin/shutdown`, then drains
//! gracefully and exits 0.

use mnn_core::{SessionConfig, TuningMode};
use mnn_http::{HttpConfig, HttpServer, ModelRegistry, ServeOptions};
use mnn_models::ModelKind;
use std::time::Duration;

struct Args {
    host: String,
    port: u16,
    models_dir: Option<String>,
    manifest: Option<String>,
    zoo: Vec<(ModelKind, usize)>,
    workers: usize,
    max_batch: usize,
    batch_window_ms: u64,
    queue_capacity: Option<usize>,
    threads: usize,
    tuning: TuningMode,
    tune_cache: Option<String>,
    max_connections: usize,
    drain_deadline_ms: u64,
    profiling: bool,
    tracing: Option<bool>,
    trace_slow_ms: u64,
    watchdog_deadline_ms: Option<u64>,
    slo_p99_ms: Option<f64>,
    slo_availability: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            host: "127.0.0.1".into(),
            port: 8080,
            models_dir: None,
            manifest: None,
            zoo: Vec::new(),
            workers: 2,
            max_batch: 8,
            batch_window_ms: 1,
            queue_capacity: None,
            threads: 1,
            tuning: TuningMode::Off,
            tune_cache: None,
            max_connections: 64,
            drain_deadline_ms: 10_000,
            profiling: false,
            tracing: None,
            trace_slow_ms: 250,
            watchdog_deadline_ms: None,
            slo_p99_ms: None,
            slo_availability: None,
        }
    }
}

const USAGE: &str = "mnn_http — serve MNN-rs models over HTTP/1.1

USAGE:
    mnn_http [OPTIONS]

MODEL SOURCES (at least one):
    --zoo NAME=SIZE        serve a zoo model at the given input resolution
                           (repeatable; e.g. --zoo tiny-cnn=32 --zoo squeezenet=64)
    --models DIR           serve every .mnnr file in DIR, named by file stem
    --manifest FILE        serve the models a manifest JSON names

SERVING OPTIONS:
    --host HOST            bind address          [default: 127.0.0.1]
    --port PORT            bind port, 0=ephemeral [default: 8080]
    --workers N            worker threads per model      [default: 2]
    --max-batch N          micro-batch size cap          [default: 8]
    --batch-window-ms MS   batching window               [default: 1]
    --queue-capacity N     bounded queue per model  [default: workers*max_batch*4]
    --threads N            intra-op threads per worker   [default: 1]
    --tuning MODE          kernel tuning: off|cached|full [default: off]
    --tune-cache FILE      persistent tuning cache path
    --max-connections N    concurrent connection cap     [default: 64]
    --drain-deadline-ms MS graceful-drain deadline       [default: 10000]
    --profiling            per-op runtime profiling for every model,
                           exposed at GET /v1/models/{name}/profile
    --tracing MODE         request tracing: on|off  [default: MNN_TRACE env, on]
                           traced waterfalls served at GET /v1/traces
    --trace-slow-ms MS     slow-trace reservoir threshold [default: 250]
    --watchdog-deadline-ms MS
                           flag a non-idle worker stalled after MS without a
                           heartbeat (fails /readyz)   [default: 30000]
    --slo-p99-ms MS        latency objective: p99 under MS  [default: 250]
    --slo-availability F   availability objective in (0,1]  [default: 0.999]
                           (passing either --slo-* flag enables SLO tracking,
                           reported at GET /v1/status)
    --help                 print this message

Metrics are always on: GET /metrics serves the Prometheus text format.
Log verbosity follows the MNN_LOG env var (error|warn|info|debug|trace).
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--host" => args.host = value("--host")?.clone(),
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--models" => args.models_dir = Some(value("--models")?.clone()),
            "--manifest" => args.manifest = Some(value("--manifest")?.clone()),
            "--zoo" => {
                let spec = value("--zoo")?;
                let (name, size) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--zoo '{spec}': expected NAME=SIZE"))?;
                let kind = ModelKind::from_name(name)
                    .ok_or_else(|| format!("--zoo: unknown model '{name}'"))?;
                let size: usize = size
                    .parse()
                    .map_err(|e| format!("--zoo '{spec}': bad size: {e}"))?;
                args.zoo.push((kind, size));
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--batch-window-ms" => {
                args.batch_window_ms = value("--batch-window-ms")?
                    .parse()
                    .map_err(|e| format!("--batch-window-ms: {e}"))?
            }
            "--queue-capacity" => {
                args.queue_capacity = Some(
                    value("--queue-capacity")?
                        .parse()
                        .map_err(|e| format!("--queue-capacity: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--tuning" => args.tuning = value("--tuning")?.parse()?,
            "--tune-cache" => args.tune_cache = Some(value("--tune-cache")?.clone()),
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--drain-deadline-ms" => {
                args.drain_deadline_ms = value("--drain-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-deadline-ms: {e}"))?
            }
            "--profiling" => args.profiling = true,
            "--tracing" => {
                args.tracing = match value("--tracing")?.as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    other => return Err(format!("--tracing: expected on|off, got '{other}'")),
                }
            }
            "--trace-slow-ms" => {
                args.trace_slow_ms = value("--trace-slow-ms")?
                    .parse()
                    .map_err(|e| format!("--trace-slow-ms: {e}"))?
            }
            "--watchdog-deadline-ms" => {
                args.watchdog_deadline_ms = Some(
                    value("--watchdog-deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--watchdog-deadline-ms: {e}"))?,
                )
            }
            "--slo-p99-ms" => {
                args.slo_p99_ms = Some(
                    value("--slo-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--slo-p99-ms: {e}"))?,
                )
            }
            "--slo-availability" => {
                let availability: f64 = value("--slo-availability")?
                    .parse()
                    .map_err(|e| format!("--slo-availability: {e}"))?;
                if !(availability > 0.0 && availability <= 1.0) {
                    return Err(format!(
                        "--slo-availability: expected a fraction in (0, 1], got {availability}"
                    ));
                }
                args.slo_availability = Some(availability);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.models_dir.is_none() && args.manifest.is_none() && args.zoo.is_empty() {
        return Err("no models: pass --zoo, --models or --manifest (try --help)".into());
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let mut session = SessionConfig::builder()
        .threads(args.threads)
        .tuning(args.tuning);
    if let Some(path) = &args.tune_cache {
        session = session.tune_cache_path(path);
    }
    let slo = (args.slo_p99_ms.is_some() || args.slo_availability.is_some()).then(|| {
        let default = mnn_obs::SloConfig::default();
        mnn_obs::SloConfig {
            latency_p99_ms: args.slo_p99_ms.unwrap_or(default.latency_p99_ms),
            availability: args.slo_availability.unwrap_or(default.availability),
        }
    });
    let options = ServeOptions {
        workers: args.workers,
        max_batch: args.max_batch,
        batch_window: Duration::from_millis(args.batch_window_ms),
        queue_capacity: args.queue_capacity,
        session: session.build(),
        profiling: args.profiling,
        watchdog_deadline: args.watchdog_deadline_ms.map(Duration::from_millis),
        slo,
    };

    let mut registry = ModelRegistry::new();
    for &(kind, size) in &args.zoo {
        mnn_obs::info!("mnn-http", "loading zoo model {kind} at {size}px ...");
        registry
            .register_zoo(kind, size, &options)
            .map_err(|e| e.to_string())?;
    }
    if let Some(dir) = &args.models_dir {
        let loaded = registry
            .load_dir(dir, &options)
            .map_err(|e| e.to_string())?;
        mnn_obs::info!("mnn-http", "loaded {loaded} model(s) from {dir}");
    }
    if let Some(manifest) = &args.manifest {
        let loaded = registry
            .load_manifest(manifest, &options)
            .map_err(|e| e.to_string())?;
        mnn_obs::info!(
            "mnn-http",
            "loaded {loaded} model(s) from manifest {manifest}"
        );
    }
    if registry.is_empty() {
        return Err("no models were loaded".into());
    }
    let names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();

    let config = HttpConfig {
        max_connections: args.max_connections,
        drain_deadline: Duration::from_millis(args.drain_deadline_ms),
        tracing: args.tracing,
        slow_trace_threshold: Duration::from_millis(args.trace_slow_ms),
        ..HttpConfig::default()
    };
    let server = HttpServer::bind((args.host.as_str(), args.port), registry, config)
        .map_err(|e| e.to_string())?;

    // The startup line scripts grep for; flushed so pipes see it immediately.
    use std::io::Write;
    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "mnn-http listening on http://{}",
        server.local_addr()
    );
    for name in &names {
        let _ = writeln!(stdout, "  serving model '{name}'");
    }
    let _ = stdout.flush();

    server.wait_shutdown_requested();
    mnn_obs::info!("mnn-http", "shutdown requested; draining ...");
    let summary = server.shutdown();
    if summary.drained {
        mnn_obs::info!(
            "mnn-http",
            "drained cleanly (aborted {} request(s))",
            summary.aborted_requests
        );
    } else {
        mnn_obs::warn!(
            "mnn-http",
            "drain deadline expired; aborted {} request(s)",
            summary.aborted_requests
        );
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(args) {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}
