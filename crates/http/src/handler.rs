//! Request routing: maps parsed HTTP requests onto the serving API.

use crate::codec::{
    BuildJson, HealthResponse, InferRequest, InferResponse, ModelStatus, ModelsResponse,
    NamedTensorJson, ProfileResponse, ReadyResponse, StatsResponse, StatusResponse, TracesResponse,
};
use crate::parser::HttpRequest;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::response::HttpResponse;
use mnn_obs::{ActiveTrace, FlightRecorder};
use mnn_serve::ServeError;
use mnn_tensor::Tensor;
use std::sync::Arc;
use std::time::Instant;

/// The router's verdict on one request.
#[derive(Debug)]
pub enum Routed {
    /// Send this response and continue serving the connection.
    Response(HttpResponse),
    /// Send this response, then begin graceful shutdown of the whole server.
    Shutdown(HttpResponse),
}

/// Route one parsed request against the registry.
///
/// `draining` marks a server that has begun graceful shutdown; it only
/// changes what `/healthz` reports (admission control happens before routing).
pub fn route(request: &HttpRequest, registry: &ModelRegistry, draining: bool) -> Routed {
    route_traced(request, registry, draining, None, None)
}

/// [`route`] with the tracing context attached: `recorder` backs
/// `GET /v1/traces`, and `trace` — the request's own in-flight trace — gets
/// the decode / serve / encode stages stamped by the infer path.
pub fn route_traced(
    request: &HttpRequest,
    registry: &ModelRegistry,
    draining: bool,
    recorder: Option<&Arc<FlightRecorder>>,
    trace: Option<&ActiveTrace>,
) -> Routed {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => expect_method(request, "GET", || {
            HttpResponse::json(
                200,
                &HealthResponse {
                    status: if draining { "draining" } else { "ok" }.to_string(),
                    models: registry.len(),
                },
            )
        }),
        ["readyz"] => expect_method(request, "GET", || readyz(registry, draining)),
        ["v1", "status"] => expect_method(request, "GET", || status(registry, draining)),
        ["v1", "models"] => expect_method(request, "GET", || {
            HttpResponse::json(
                200,
                &ModelsResponse {
                    models: registry.summaries(),
                },
            )
        }),
        ["v1", "models", name, "stats"] => with_model(request, registry, name, "GET", |entry| {
            HttpResponse::json(
                200,
                &StatsResponse {
                    name: name.to_string(),
                    stats: entry.server.stats(),
                    memory: mnn_obs::resources::scope_snapshot(name),
                },
            )
        }),
        ["v1", "models", name, "infer"] => with_model(request, registry, name, "POST", |entry| {
            infer(request, name, entry, trace)
        }),
        ["v1", "models", name, "profile"] => with_model(request, registry, name, "GET", |entry| {
            profile(request, name, entry)
        }),
        ["v1", "traces"] => expect_method(request, "GET", || traces(request, recorder)),
        ["metrics"] => expect_method(request, "GET", || {
            HttpResponse::text(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                mnn_obs::metrics::render_global(),
            )
        }),
        ["admin", "shutdown"] => match request.method.as_str() {
            "POST" => Routed::Shutdown(HttpResponse::json(
                200,
                &HealthResponse {
                    status: "draining".to_string(),
                    models: registry.len(),
                },
            )),
            _ => Routed::Response(method_not_allowed("POST")),
        },
        _ => Routed::Response(HttpResponse::error(
            404,
            format!("no route for {}", request.path),
        )),
    }
}

/// Evaluate readiness: loaded models, not draining, no stalled workers,
/// every queue below saturation. Returns the (possibly empty) reasons list.
fn readiness_reasons(registry: &ModelRegistry, draining: bool) -> Vec<String> {
    let mut reasons = Vec::new();
    if draining {
        reasons.push("server is draining".to_string());
    }
    if registry.is_empty() {
        reasons.push("no models registered".to_string());
    }
    for (name, entry) in registry.entries() {
        let stalled = entry.server.stalled_workers();
        if stalled > 0 {
            reasons.push(format!("model '{name}': {stalled} stalled worker(s)"));
        }
        let depth = entry.server.queue_depth();
        let capacity = entry.server.queue_capacity();
        if depth >= capacity {
            reasons.push(format!(
                "model '{name}': queue saturated ({depth}/{capacity})"
            ));
        }
    }
    reasons
}

/// `GET /readyz`: `200` when the frontend should receive traffic, `503`
/// with machine-readable reasons otherwise. Load balancers poll this;
/// `/healthz` stays a pure liveness check.
fn readyz(registry: &ModelRegistry, draining: bool) -> HttpResponse {
    let reasons = readiness_reasons(registry, draining);
    let ready = reasons.is_empty();
    HttpResponse::json(
        if ready { 200 } else { 503 },
        &ReadyResponse {
            ready,
            reasons,
            models: registry.len(),
        },
    )
}

/// `GET /v1/status`: build identity, process resources and the per-model
/// health/memory/SLO table — the one page an operator reads first.
fn status(registry: &ModelRegistry, draining: bool) -> HttpResponse {
    let reasons = readiness_reasons(registry, draining);
    let build = mnn_obs::resources::build_info();
    let models = registry
        .entries()
        .map(|(name, entry)| {
            let stats = entry.server.stats();
            ModelStatus {
                name: name.to_string(),
                workers: stats.workers,
                worker_states: stats.worker_states,
                stalled_workers: stats.stalled_workers,
                queue_depth: stats.queue_depth,
                queue_capacity: entry.server.queue_capacity(),
                submitted: stats.submitted,
                completed: stats.completed,
                failed: stats.failed,
                throughput_rps: stats.throughput_rps,
                p99_latency_ms: stats.p99_latency_ms,
                memory: mnn_obs::resources::scope_snapshot(name),
                slo: stats.slo,
            }
        })
        .collect();
    HttpResponse::json(
        200,
        &StatusResponse {
            status: if draining { "draining" } else { "ok" }.to_string(),
            ready: reasons.is_empty(),
            reasons,
            build: BuildJson {
                version: build.version.to_string(),
                build_id: build.build_id.to_string(),
                kernel_backend: build.kernel_backend.to_string(),
            },
            uptime_seconds: mnn_obs::metrics::process_epoch().elapsed().as_secs_f64(),
            os: mnn_obs::resources::os_stats(),
            accounted_bytes: mnn_obs::resources::snapshot().accounted_bytes,
            models,
        },
    )
}

fn expect_method(
    request: &HttpRequest,
    method: &str,
    respond: impl FnOnce() -> HttpResponse,
) -> Routed {
    if request.method == method {
        Routed::Response(respond())
    } else {
        Routed::Response(method_not_allowed(method))
    }
}

fn with_model(
    request: &HttpRequest,
    registry: &ModelRegistry,
    name: &str,
    method: &str,
    respond: impl FnOnce(&ModelEntry) -> HttpResponse,
) -> Routed {
    if request.method != method {
        return Routed::Response(method_not_allowed(method));
    }
    match registry.get(name) {
        Some(entry) => Routed::Response(respond(entry)),
        None => Routed::Response(HttpResponse::error(404, format!("unknown model '{name}'"))),
    }
}

fn method_not_allowed(allowed: &str) -> HttpResponse {
    HttpResponse::error(405, format!("method not allowed; use {allowed}"))
        .with_header("allow", allowed)
}

/// Decode the infer body, run it through the model's serving runtime, and
/// encode the outputs. Backpressure surfaces as `429` with a `Retry-After`
/// hint; shutdown races surface as `503`. A traced request gets decode /
/// serve / encode stages in its waterfall, and the serving runtime nests
/// queue-wait, batch-assembly, inference and scatter spans under `serve`.
fn infer(
    request: &HttpRequest,
    model: &str,
    entry: &ModelEntry,
    trace: Option<&ActiveTrace>,
) -> HttpResponse {
    let decode_start = Instant::now();
    let body: InferRequest = match serde_json::from_slice(&request.body) {
        Ok(body) => body,
        Err(e) => return HttpResponse::error(400, format!("invalid JSON body: {e}")),
    };
    let mut tensors: Vec<(String, Tensor)> = Vec::with_capacity(body.inputs.len());
    for (name, wire) in &body.inputs {
        match wire.to_tensor() {
            Ok(tensor) => tensors.push((name.clone(), tensor)),
            Err(message) => return HttpResponse::error(400, format!("input '{name}': {message}")),
        }
    }
    let borrowed: Vec<(&str, &Tensor)> = tensors
        .iter()
        .map(|(name, tensor)| (name.as_str(), tensor))
        .collect();
    if let Some(trace) = trace {
        trace.add_stage("decode", 0, decode_start, Instant::now());
    }
    let serve_start = Instant::now();
    let result = entry.server.infer_with_trace(&borrowed, trace.cloned());
    if let Some(trace) = trace {
        trace.stage_since("serve", 0, serve_start);
        // The serving runtime stamps its graph name; the registry name the
        // client addressed is the one worth reading back from `/v1/traces`.
        trace.set_model(model);
    }
    match result {
        Ok(outputs) => {
            let encode_start = Instant::now();
            let response = HttpResponse::json(
                200,
                &InferResponse {
                    outputs: entry
                        .outputs
                        .iter()
                        .zip(&outputs)
                        .map(|(name, tensor)| NamedTensorJson {
                            name: name.clone(),
                            shape: tensor.shape().dims().to_vec(),
                            data: tensor.data_f32().to_vec(),
                        })
                        .collect(),
                },
            );
            if let Some(trace) = trace {
                trace.add_stage("encode", 0, encode_start, Instant::now());
            }
            response
        }
        Err(e) => serve_error_response(&e),
    }
}

/// Serve the flight recorder: the retained ring plus the slow reservoir as
/// JSON by default, a single trace with `?id=<32 hex>`, or chrome://tracing
/// JSON with `?format=trace` (load it at `chrome://tracing` or
/// `ui.perfetto.dev`; the two filters compose).
fn traces(request: &HttpRequest, recorder: Option<&Arc<FlightRecorder>>) -> HttpResponse {
    let Some(recorder) = recorder else {
        return HttpResponse::error(404, "tracing is not available on this frontend");
    };
    let wants_chrome = query_param(request, "format") == Some("trace");
    let selected: Vec<Arc<mnn_obs::RequestTrace>> = match query_param(request, "id") {
        Some(id) => match recorder.find(id) {
            Some(found) => vec![found],
            None => {
                return HttpResponse::error(404, format!("no retained trace with id '{id}'"));
            }
        },
        None => recorder.recent(),
    };
    if wants_chrome {
        return HttpResponse::text(
            200,
            "application/json",
            FlightRecorder::chrome_trace(&selected),
        );
    }
    HttpResponse::json(
        200,
        &TracesResponse {
            enabled: recorder.is_enabled(),
            completed: recorder.completed(),
            slow_threshold_ms: recorder.slow_threshold().as_millis() as u64,
            traces: selected.iter().map(|trace| (**trace).clone()).collect(),
            slow: recorder
                .slow()
                .iter()
                .map(|trace| (**trace).clone())
                .collect(),
        },
    )
}

/// The value of `key` in the request's query string, if present.
fn query_param<'a>(request: &'a HttpRequest, key: &str) -> Option<&'a str> {
    request.query.as_deref()?.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Render a model's runtime profile: the aggregated [`ProfileResponse`] by
/// default, or the raw chrome://tracing JSON with `?format=trace`. Models
/// registered without profiling get a `404` pointing at the flag.
fn profile(request: &HttpRequest, name: &str, entry: &ModelEntry) -> HttpResponse {
    let Some(profiler) = &entry.profiler else {
        return HttpResponse::error(
            404,
            format!("profiling is not enabled for model '{name}'; restart with --profiling"),
        );
    };
    let wants_trace = query_param(request, "format") == Some("trace");
    if wants_trace {
        HttpResponse::text(200, "application/json", profiler.chrome_trace())
    } else {
        HttpResponse::json(
            200,
            &ProfileResponse {
                name: name.to_string(),
                profile: profiler.report(),
            },
        )
    }
}

/// Map a serving-runtime error onto an HTTP status.
pub fn serve_error_response(error: &ServeError) -> HttpResponse {
    match error {
        ServeError::QueueFull { .. } => {
            HttpResponse::error(429, error.to_string()).with_header("retry-after", "1")
        }
        ServeError::ShuttingDown => {
            HttpResponse::error(503, error.to_string()).with_header("retry-after", "1")
        }
        ServeError::InvalidRequest(_) => HttpResponse::error(400, error.to_string()),
        ServeError::Inference(_) | ServeError::InvalidConfig(_) => {
            HttpResponse::error(500, error.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServeOptions;
    use mnn_core::SessionConfig;
    use mnn_models::ModelKind;

    fn request(method: &str, path: &str, body: &[u8]) -> HttpRequest {
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            query: None,
            headers: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn tiny_registry() -> ModelRegistry {
        let mut registry = ModelRegistry::new();
        let options = ServeOptions {
            workers: 1,
            max_batch: 1,
            session: SessionConfig::cpu(1),
            ..ServeOptions::default()
        };
        registry
            .register_zoo(ModelKind::TinyCnn, 16, &options)
            .unwrap();
        registry
    }

    fn response_of(routed: Routed) -> HttpResponse {
        match routed {
            Routed::Response(r) => r,
            Routed::Shutdown(r) => r,
        }
    }

    #[test]
    fn routes_cover_the_api_surface() {
        let registry = tiny_registry();
        let health = response_of(route(&request("GET", "/healthz", b""), &registry, false));
        assert_eq!(health.status, 200);
        assert_eq!(
            String::from_utf8(health.body).unwrap(),
            r#"{"status":"ok","models":1}"#
        );

        let models = response_of(route(&request("GET", "/v1/models", b""), &registry, false));
        assert_eq!(models.status, 200);
        let text = String::from_utf8(models.body).unwrap();
        assert!(text.contains(r#""name":"tiny-cnn""#), "{text}");
        assert!(text.contains(r#""quantized":false"#), "{text}");

        let stats = response_of(route(
            &request("GET", "/v1/models/tiny-cnn/stats", b""),
            &registry,
            false,
        ));
        assert_eq!(stats.status, 200);
        assert!(String::from_utf8(stats.body)
            .unwrap()
            .contains(r#""submitted":"#));

        let missing = response_of(route(
            &request("GET", "/v1/models/ghost/stats", b""),
            &registry,
            false,
        ));
        assert_eq!(missing.status, 404);

        let wrong_method =
            response_of(route(&request("DELETE", "/healthz", b""), &registry, false));
        assert_eq!(wrong_method.status, 405);

        let nowhere = response_of(route(&request("GET", "/nope", b""), &registry, false));
        assert_eq!(nowhere.status, 404);

        registry.drain_with_deadline(std::time::Duration::from_secs(5));
    }

    #[test]
    fn infer_round_trip_and_bad_bodies() {
        let registry = tiny_registry();
        let entry = registry.get("tiny-cnn").unwrap();
        let input_name = entry.inputs[0].clone();
        let zeros = vec![0.0f32; 3 * 16 * 16];
        let body = serde_json::to_string(&InferRequest {
            inputs: [(
                input_name.clone(),
                crate::codec::TensorJson {
                    shape: vec![1, 3, 16, 16],
                    data: zeros,
                },
            )]
            .into_iter()
            .collect(),
        })
        .unwrap();

        let ok = response_of(route(
            &request("POST", "/v1/models/tiny-cnn/infer", body.as_bytes()),
            &registry,
            false,
        ));
        assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
        let parsed: InferResponse = serde_json::from_slice(&ok.body).unwrap();
        assert_eq!(parsed.outputs.len(), 1);

        let bad_json = response_of(route(
            &request("POST", "/v1/models/tiny-cnn/infer", b"not json"),
            &registry,
            false,
        ));
        assert_eq!(bad_json.status, 400);

        let wrong_input = response_of(route(
            &request(
                "POST",
                "/v1/models/tiny-cnn/infer",
                br#"{"inputs":{"nope":{"shape":[1],"data":[0.0]}}}"#,
            ),
            &registry,
            false,
        ));
        assert_eq!(wrong_input.status, 400);

        registry.drain_with_deadline(std::time::Duration::from_secs(5));
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let registry = tiny_registry();
        let response = response_of(route(&request("GET", "/metrics", b""), &registry, false));
        assert_eq!(response.status, 200);
        assert_eq!(
            response.content_type,
            "text/plain; version=0.0.4; charset=utf-8"
        );
        let text = String::from_utf8(response.body).unwrap();
        for series in [
            "mnn_infer_requests_total",
            "mnn_queue_depth",
            "mnn_batch_size",
            "mnn_plan_cache_hits_total",
            "mnn_tune_cache_hits_total",
            "mnn_tune_cache_misses_total",
            "mnn_uptime_seconds",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }

        let wrong_method = response_of(route(&request("POST", "/metrics", b""), &registry, false));
        assert_eq!(wrong_method.status, 405);
        registry.drain_with_deadline(std::time::Duration::from_secs(5));
    }

    #[test]
    fn profile_route_requires_profiling_and_reports_runs() {
        // Without profiling the route 404s with a hint.
        let registry = tiny_registry();
        let off = response_of(route(
            &request("GET", "/v1/models/tiny-cnn/profile", b""),
            &registry,
            false,
        ));
        assert_eq!(off.status, 404);
        assert!(String::from_utf8(off.body).unwrap().contains("--profiling"));
        registry.drain_with_deadline(std::time::Duration::from_secs(5));

        // With profiling, a run shows up in the report and the trace export.
        let mut registry = ModelRegistry::new();
        let options = ServeOptions {
            workers: 1,
            max_batch: 1,
            session: SessionConfig::cpu(1),
            profiling: true,
            ..ServeOptions::default()
        };
        registry
            .register_zoo(ModelKind::TinyCnn, 16, &options)
            .unwrap();
        let entry = registry.get("tiny-cnn").unwrap();
        let input = mnn_tensor::Tensor::zeros(mnn_tensor::Shape::nchw(1, 3, 16, 16));
        entry
            .server
            .infer(&[(entry.inputs[0].as_str(), &input)])
            .unwrap();

        let report = response_of(route(
            &request("GET", "/v1/models/tiny-cnn/profile", b""),
            &registry,
            false,
        ));
        assert_eq!(report.status, 200);
        let parsed: ProfileResponse = serde_json::from_slice(&report.body).unwrap();
        assert_eq!(parsed.name, "tiny-cnn");
        assert!(parsed.profile.runs >= 1, "{:?}", parsed.profile);
        assert!(!parsed.profile.ops.is_empty());

        let mut trace_request = request("GET", "/v1/models/tiny-cnn/profile", b"");
        trace_request.query = Some("format=trace".to_string());
        let trace = response_of(route(&trace_request, &registry, false));
        assert_eq!(trace.status, 200);
        assert_eq!(trace.content_type, "application/json");
        let text = String::from_utf8(trace.body).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");

        registry.drain_with_deadline(std::time::Duration::from_secs(5));
    }

    #[test]
    fn traces_route_serves_the_flight_recorder() {
        let registry = tiny_registry();
        // Routing without a recorder attached (the plain `route` entry
        // point) answers 404 rather than panicking.
        let missing = response_of(route(&request("GET", "/v1/traces", b""), &registry, false));
        assert_eq!(missing.status, 404);

        // A traced infer shows up in the listing with its full waterfall.
        let recorder = Arc::new(FlightRecorder::new());
        let trace = recorder.begin_trace(None).expect("recorder is enabled");
        let entry = registry.get("tiny-cnn").unwrap();
        let input_name = entry.inputs[0].clone();
        let body = serde_json::to_vec(&InferRequest {
            inputs: [(
                input_name,
                crate::codec::TensorJson {
                    shape: vec![1, 3, 16, 16],
                    data: vec![0.0; 3 * 16 * 16],
                },
            )]
            .into_iter()
            .collect(),
        })
        .unwrap();
        let infer_request = request("POST", "/v1/models/tiny-cnn/infer", &body);
        let ok = response_of(route_traced(
            &infer_request,
            &registry,
            false,
            Some(&recorder),
            Some(&trace),
        ));
        assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
        trace.finish(200);

        let listing = response_of(route_traced(
            &request("GET", "/v1/traces", b""),
            &registry,
            false,
            Some(&recorder),
            None,
        ));
        assert_eq!(listing.status, 200);
        let parsed: TracesResponse = serde_json::from_slice(&listing.body).unwrap();
        assert!(parsed.enabled);
        assert_eq!(parsed.completed, 1);
        assert_eq!(parsed.traces.len(), 1);
        let recorded = &parsed.traces[0];
        assert_eq!(recorded.model, "tiny-cnn");
        assert_eq!(recorded.status, 200);
        let names: Vec<&str> = recorded.stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "decode",
            "serve",
            "queue_wait",
            "batch_assembly",
            "inference",
            "scatter",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }

        // `?id=` selects one trace, a bogus id 404s, and `?format=trace`
        // renders chrome://tracing JSON.
        let mut by_id = request("GET", "/v1/traces", b"");
        by_id.query = Some(format!("id={}", recorded.trace_id));
        let single = response_of(route_traced(
            &by_id,
            &registry,
            false,
            Some(&recorder),
            None,
        ));
        assert_eq!(single.status, 200);
        let single: TracesResponse = serde_json::from_slice(&single.body).unwrap();
        assert_eq!(single.traces.len(), 1);

        let mut bogus = request("GET", "/v1/traces", b"");
        bogus.query = Some("id=ffffffffffffffffffffffffffffffff".to_string());
        let not_found = response_of(route_traced(
            &bogus,
            &registry,
            false,
            Some(&recorder),
            None,
        ));
        assert_eq!(not_found.status, 404);

        let mut chrome = request("GET", "/v1/traces", b"");
        chrome.query = Some("format=trace".to_string());
        let export = response_of(route_traced(
            &chrome,
            &registry,
            false,
            Some(&recorder),
            None,
        ));
        assert_eq!(export.status, 200);
        assert_eq!(export.content_type, "application/json");
        let text = String::from_utf8(export.body).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");

        registry.drain_with_deadline(std::time::Duration::from_secs(5));
    }

    #[test]
    fn shutdown_route_is_a_shutdown_verdict() {
        let registry = ModelRegistry::new();
        assert!(matches!(
            route(&request("POST", "/admin/shutdown", b""), &registry, false),
            Routed::Shutdown(_)
        ));
        let get = route(&request("GET", "/admin/shutdown", b""), &registry, false);
        assert_eq!(response_of(get).status, 405);
    }

    #[test]
    fn serve_errors_map_to_statuses() {
        let cases = [
            (ServeError::QueueFull { capacity: 4 }, 429),
            (ServeError::ShuttingDown, 503),
            (ServeError::InvalidRequest("x".into()), 400),
            (ServeError::Inference("x".into()), 500),
        ];
        for (error, status) in cases {
            let response = serve_error_response(&error);
            assert_eq!(response.status, status, "{error}");
            if status == 429 || status == 503 {
                assert!(response.headers.iter().any(|(n, _)| n == "retry-after"));
            }
        }
    }
}
