//! JSON wire types for the serving API.
//!
//! Tensors travel as `{"shape": [...], "data": [...]}` with row-major f32
//! data. f32 → f64 widening (what JSON numbers are) is exact, so values
//! round-trip bit-identically — responses over the wire match in-process
//! [`mnn_serve::Server::infer`] results exactly.

use mnn_obs::resources::OsStats;
use mnn_obs::{ScopeResources, SloSnapshot};
use mnn_serve::ServerStats;
use mnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A tensor on the wire: shape plus row-major data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorJson {
    /// Tensor dimensions, outermost first.
    pub shape: Vec<usize>,
    /// Row-major f32 elements; its length must equal the shape's product.
    pub data: Vec<f32>,
}

impl TensorJson {
    /// Convert to an engine tensor, validating that the element count matches
    /// the shape product (overflow-checked).
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a `400` response body.
    pub fn to_tensor(&self) -> Result<Tensor, String> {
        let mut product: usize = 1;
        for &dim in &self.shape {
            product = product
                .checked_mul(dim)
                .ok_or_else(|| format!("tensor shape {:?} overflows", self.shape))?;
        }
        if product != self.data.len() {
            return Err(format!(
                "shape {:?} implies {} elements but {} were provided",
                self.shape,
                product,
                self.data.len()
            ));
        }
        Tensor::try_from_vec(Shape::new(self.shape.clone()), self.data.clone())
            .map_err(|e| e.to_string())
    }

    /// Convert an engine tensor to its wire form.
    pub fn from_tensor(tensor: &Tensor) -> TensorJson {
        TensorJson {
            shape: tensor.shape().dims().to_vec(),
            data: tensor.data_f32().to_vec(),
        }
    }
}

/// Body of `POST /v1/models/{name}/infer`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferRequest {
    /// Input tensors keyed by the graph's input names.
    pub inputs: BTreeMap<String, TensorJson>,
}

/// One named output tensor in an [`InferResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedTensorJson {
    /// The graph output's name.
    pub name: String,
    /// Tensor dimensions, outermost first.
    pub shape: Vec<usize>,
    /// Row-major f32 elements.
    pub data: Vec<f32>,
}

/// Body of a successful infer response: outputs in graph output order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferResponse {
    /// The model's outputs, in the graph's output order.
    pub outputs: Vec<NamedTensorJson>,
}

/// One model's description in `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Registry name the model is served under.
    pub name: String,
    /// Model-file format version the model was loaded from.
    pub format_version: u32,
    /// Bytes of constant (weight) data in the graph.
    pub constant_bytes: u64,
    /// Whether the graph contains quantized (int8) operators.
    pub quantized: bool,
    /// The graph's input names, in declaration order.
    pub inputs: Vec<String>,
    /// The graph's output names, in declaration order.
    pub outputs: Vec<String>,
}

/// Body of `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Every registered model, in name order.
    pub models: Vec<ModelSummary>,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"` while serving, `"draining"` once shutdown has begun.
    pub status: String,
    /// Number of registered models.
    pub models: usize,
}

/// Body of `GET /readyz`.
///
/// Unlike `/healthz` (liveness: the process is up and answering), readiness
/// says whether this frontend should receive traffic *right now*: models
/// loaded, not draining, no stalled workers, queues below saturation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadyResponse {
    /// Whether the server is ready for traffic (`200` iff true).
    pub ready: bool,
    /// Human-readable reasons the server is not ready; empty when ready.
    pub reasons: Vec<String>,
    /// Number of registered models.
    pub models: usize,
}

/// Build identity in `GET /v1/status` (owned mirror of
/// [`mnn_obs::BuildInfo`], which borrows `'static` strings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildJson {
    /// Engine crate version.
    pub version: String,
    /// Build identifier baked in at compile time (`MNN_BUILD_ID`, or `dev`).
    pub build_id: String,
    /// Kernel backend selected at startup (`scalar`, `avx2fma`, `neon`).
    pub kernel_backend: String,
}

/// One model's row in `GET /v1/status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStatus {
    /// Registry name the model is served under.
    pub name: String,
    /// Worker threads serving the model.
    pub workers: usize,
    /// Each worker's last-stamped state, in worker-index order.
    pub worker_states: Vec<String>,
    /// Workers currently flagged stalled by the health watchdog.
    pub stalled_workers: usize,
    /// Requests currently waiting in the model's queue.
    pub queue_depth: usize,
    /// The model's bounded queue capacity.
    pub queue_capacity: usize,
    /// Requests accepted into the queue since startup.
    pub submitted: u64,
    /// Requests answered successfully since startup.
    pub completed: u64,
    /// Requests answered with an inference error since startup.
    pub failed: u64,
    /// Completed requests per second since startup.
    pub throughput_rps: f64,
    /// 99th-percentile end-to-end latency over the recent window, ms.
    pub p99_latency_ms: f64,
    /// Accounted memory for this model's scope: weights, active arenas and
    /// parked plan-cache arenas, with a per-component breakdown.
    pub memory: ScopeResources,
    /// SLO compliance over the rolling window, if an SLO is configured.
    pub slo: Option<SloSnapshot>,
}

/// Body of `GET /v1/status`: one page aggregating build identity, process
/// resources and the per-model health/memory/SLO table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// `"ok"` while serving, `"draining"` once shutdown has begun.
    pub status: String,
    /// Whether `/readyz` would answer 200 right now.
    pub ready: bool,
    /// Reasons the server is not ready; empty when ready.
    pub reasons: Vec<String>,
    /// Build identity (version, build id, kernel backend).
    pub build: BuildJson,
    /// Seconds since the process first touched the metrics layer.
    pub uptime_seconds: f64,
    /// OS-reported process stats (RSS, thread count).
    pub os: OsStats,
    /// Sum of every ledger account: engine-attributed resident bytes.
    pub accounted_bytes: u64,
    /// Per-model status rows, in name order.
    pub models: Vec<ModelStatus>,
}

/// Body of `GET /v1/models/{name}/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Registry name the model is served under.
    pub name: String,
    /// The serving runtime's counters and latency percentiles.
    pub stats: ServerStats,
    /// Accounted memory for this model's scope (weights, arenas, plan cache).
    pub memory: ScopeResources,
}

/// Body of `GET /v1/models/{name}/profile`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileResponse {
    /// Registry name the model is served under.
    pub name: String,
    /// Aggregated per-op runtime profile across every run so far.
    pub profile: mnn_obs::ProfileReport,
}

/// Body of `GET /v1/traces`: the flight recorder's retained request traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracesResponse {
    /// Whether the recorder is currently collecting traces.
    pub enabled: bool,
    /// Request traces completed over the server's lifetime.
    pub completed: u64,
    /// Threshold above which a trace is kept in the slow reservoir, ms.
    pub slow_threshold_ms: u64,
    /// The retained ring of recent traces, most recent first.
    pub traces: Vec<mnn_obs::RequestTrace>,
    /// The always-kept slow-request reservoir, most recent last.
    pub slow: Vec<mnn_obs::RequestTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_json_round_trips_bit_exactly() {
        let tensor = Tensor::from_vec(
            Shape::new(vec![2, 2]),
            vec![1.25, f32::MIN_POSITIVE, -0.0, 3.4e38],
        );
        let wire = TensorJson::from_tensor(&tensor);
        let text = serde_json::to_string(&wire).unwrap();
        let back: TensorJson = serde_json::from_str(&text).unwrap();
        let restored = back.to_tensor().unwrap();
        let (a, b) = (tensor.data_f32(), restored.data_f32());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn mismatched_shape_is_rejected() {
        let bad = TensorJson {
            shape: vec![2, 3],
            data: vec![0.0; 5],
        };
        let err = bad.to_tensor().unwrap_err();
        assert!(err.contains("6 elements"), "{err}");

        let overflow = TensorJson {
            shape: vec![usize::MAX, 2],
            data: vec![],
        };
        assert!(overflow.to_tensor().unwrap_err().contains("overflows"));
    }

    #[test]
    fn infer_request_parses_from_literal_json() {
        let text = r#"{"inputs":{"data":{"shape":[1,2],"data":[0.5,1.5]}}}"#;
        let request: InferRequest = serde_json::from_str(text).unwrap();
        assert_eq!(request.inputs.len(), 1);
        assert_eq!(request.inputs["data"].shape, vec![1, 2]);
        assert_eq!(request.inputs["data"].data, vec![0.5, 1.5]);
    }
}
