//! TVM deployment-cost model (paper Table 5 and Section 4.2, "Comparison with TVM").
//!
//! TVM generates model-specific code: before a model can run on a device class, it
//! must be auto-tuned (minutes to hours, scaling with the number of trials) and
//! compiled (tens of seconds). MNN performs its search at runtime during
//! pre-inference instead, so its deployment cost is effectively zero. This module
//! models both sides so the Table 5 harness can print the comparison.

/// Distinct convolution workloads in ResNet-18 (the unit TVM tunes per workload).
const RESNET18_WORKLOADS: f64 = 12.0;

/// Seconds of auto-tuning for ResNet-18 on one device, as a function of the number
/// of trials per workload.
///
/// The linear model (≈ 214 s fixed cost + ≈ 141 s per trial) is fitted to the
/// paper's Table 5 measurements on a Samsung Galaxy S8: 1 → 355 s, 10 → 1477 s,
/// 30 → 4583 s.
pub fn auto_tuning_seconds(trials: u32) -> f64 {
    214.0 + 141.0 * trials as f64
}

/// Seconds to compile the tuned model (Table 5 reports ≈ 40–41 s regardless of the
/// trial count).
pub fn compile_seconds(trials: u32) -> f64 {
    40.0 + 0.035 * trials as f64
}

/// Per-workload tuning time implied by the model (useful for scaling to other
/// networks).
pub fn per_workload_seconds(trials: u32) -> f64 {
    auto_tuning_seconds(trials) / RESNET18_WORKLOADS
}

/// MNN's equivalent "deployment" cost: the runtime pre-inference measured in
/// milliseconds, i.e. effectively zero on the Table 5 scale. Exposed so harnesses
/// can print both numbers side by side.
pub fn mnn_runtime_search_seconds(pre_inference_ms: f64) -> f64 {
    pre_inference_ms / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_model_matches_table5_within_15_percent() {
        let published = [(1u32, 355.0), (10, 1477.0), (30, 4583.0)];
        for (trials, expected) in published {
            let got = auto_tuning_seconds(trials);
            assert!(
                (got - expected).abs() / expected < 0.15,
                "{trials} trials: got {got:.0}s, expected {expected}s"
            );
        }
    }

    #[test]
    fn compile_time_is_roughly_constant() {
        assert!((compile_seconds(1) - 40.0).abs() < 1.0);
        assert!((compile_seconds(30) - 41.0).abs() < 1.0);
    }

    #[test]
    fn tuning_dwarfs_mnn_runtime_search() {
        // Even a single-trial tuning run costs orders of magnitude more than MNN's
        // pre-inference (tens of milliseconds).
        assert!(auto_tuning_seconds(1) > 1000.0 * mnn_runtime_search_seconds(50.0));
    }

    #[test]
    fn per_workload_time_is_positive_and_increases_with_trials() {
        assert!(per_workload_seconds(1) > 0.0);
        assert!(per_workload_seconds(30) > per_workload_seconds(10));
    }
}
