//! Device profiles, competitor-engine cost models and the analytic latency
//! simulator used by the cross-engine / cross-device experiments.
//!
//! The paper's Figures 7–9 and Tables 5, 6 and 8 compare MNN against CoreML,
//! TF-Lite, MACE, NCNN and TVM on physical phones. Neither the phones nor the
//! other engines are available here, so this crate substitutes an analytic model
//! (see `DESIGN.md`, substitution table):
//!
//! * [`DeviceProfile`] — effective CPU throughput per thread count (calibrated from
//!   the paper's own MNN measurements) and the GPU FLOPS / `t_schedule` constants
//!   from the paper's Appendix C.
//! * [`Engine`] / [`EngineSpec`] — per-engine efficiency factors encoding each
//!   engine's documented design: case-by-case kernels with unoptimized fallbacks
//!   (NCNN / MACE), library-backed execution with extra overhead (TF-Lite),
//!   vendor-tuned Metal (CoreML), compiled model-specific code with offline
//!   auto-tuning cost (TVM), and MNN's semi-automated search as the baseline.
//! * [`estimate_cpu_latency_ms`] / [`estimate_gpu_latency_ms`] — the Eq. 5-style
//!   latency estimator that walks a graph and prices every operator.
//!
//! The absolute numbers are calibrated; the *relative* behaviour (who wins, where
//! the blind spots are) is what the experiments reproduce.

#![deny(missing_docs)]

mod device;
mod engine;
pub mod tvm;

pub use device::{DeviceProfile, GpuInfo};
pub use engine::{
    estimate_cpu_latency_ms, estimate_gpu_latency_ms, is_uncommon_conv, Engine, EngineSpec,
    GpuStandard,
};
