//! Competitor-engine cost models and the analytic latency estimator.

use crate::DeviceProfile;
use mnn_graph::{Conv2dAttrs, Graph, Op};

/// Android GPU standards (plus Metal for iOS) used in the cross-engine figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuStandard {
    /// Apple Metal (iOS only).
    Metal,
    /// OpenCL.
    OpenCl,
    /// OpenGL compute shaders.
    OpenGl,
    /// Vulkan.
    Vulkan,
}

impl GpuStandard {
    /// Per-operator scheduling overhead in milliseconds (paper Appendix C).
    pub fn t_schedule_ms(self) -> f64 {
        match self {
            GpuStandard::OpenCl | GpuStandard::OpenGl => 0.05,
            GpuStandard::Vulkan | GpuStandard::Metal => 0.01,
        }
    }

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            GpuStandard::Metal => "Metal",
            GpuStandard::OpenCl => "OpenCL",
            GpuStandard::OpenGl => "OpenGL",
            GpuStandard::Vulkan => "Vulkan",
        }
    }
}

/// The mobile inference engines compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// MNN (the paper's engine / this reproduction).
    Mnn,
    /// Tencent NCNN — manual case-by-case optimization.
    Ncnn,
    /// Xiaomi MACE — manual optimization, OpenCL GPU.
    Mace,
    /// Google TensorFlow Lite.
    TfLite,
    /// Apple CoreML (iOS only).
    CoreMl,
    /// TVM — ahead-of-time compiled, auto-tuned code.
    Tvm,
}

impl Engine {
    /// All engines, in the order used by the figures.
    pub const ALL: [Engine; 6] = [
        Engine::Ncnn,
        Engine::Mace,
        Engine::TfLite,
        Engine::CoreMl,
        Engine::Tvm,
        Engine::Mnn,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Engine::Mnn => "MNN",
            Engine::Ncnn => "NCNN",
            Engine::Mace => "MACE",
            Engine::TfLite => "TF-Lite",
            Engine::CoreMl => "CoreML",
            Engine::Tvm => "TVM",
        }
    }

    /// The cost-model parameters for this engine.
    pub const fn spec(self) -> EngineSpec {
        match self {
            // MNN is the calibration baseline: device throughputs were fitted against
            // the paper's MNN latencies, so its factors are 1.
            Engine::Mnn => EngineSpec {
                cpu_factor: 1.0,
                uncommon_conv_factor: 1.0,
                per_op_overhead_ms: 0.0,
                metal_factor: Some(1.1),
                opencl_factor: Some(1.0),
                opengl_factor: Some(1.35),
                vulkan_factor: Some(1.0),
                ios_only: false,
                android_only: false,
            },
            // NCNN: hand-written kernels for the common cases, but operators outside
            // that set (e.g. 1x7 / 7x1) fall back to a slow generic path — the
            // bottleneck of Fig. 8. Vulkan support exists but is not uniformly fast.
            Engine::Ncnn => EngineSpec {
                cpu_factor: 1.25,
                uncommon_conv_factor: 36.0,
                per_op_overhead_ms: 0.005,
                metal_factor: None,
                opencl_factor: None,
                opengl_factor: None,
                vulkan_factor: Some(1.7),
                ios_only: false,
                android_only: false,
            },
            // MACE: similar manual philosophy, OpenCL only on the GPU side.
            Engine::Mace => EngineSpec {
                cpu_factor: 1.3,
                uncommon_conv_factor: 5.0,
                per_op_overhead_ms: 0.01,
                metal_factor: None,
                opencl_factor: Some(1.25),
                opengl_factor: None,
                vulkan_factor: None,
                ios_only: false,
                android_only: true,
            },
            // TF-Lite: library-backed (Eigen/OpenBLAS) floating point with extra
            // framework overhead; the OpenGL delegate has clear blind spots.
            Engine::TfLite => EngineSpec {
                cpu_factor: 1.35,
                uncommon_conv_factor: 4.0,
                per_op_overhead_ms: 0.01,
                metal_factor: Some(1.8),
                opencl_factor: None,
                opengl_factor: Some(2.6),
                vulkan_factor: None,
                ios_only: false,
                android_only: false,
            },
            // CoreML: Apple's vendor-tuned engine — slightly ahead of MNN on Metal,
            // competitive on CPU, iOS only.
            Engine::CoreMl => EngineSpec {
                cpu_factor: 1.05,
                uncommon_conv_factor: 1.2,
                per_op_overhead_ms: 0.0,
                metal_factor: Some(0.85),
                opencl_factor: None,
                opengl_factor: None,
                vulkan_factor: None,
                ios_only: true,
                android_only: false,
            },
            // TVM: compiled, auto-tuned code — uniformly good coverage, slightly
            // behind MNN's hand-tuned kernels on ARM CPUs (Fig. 9), with the offline
            // tuning/compilation cost modeled separately (Table 5).
            Engine::Tvm => EngineSpec {
                cpu_factor: 1.28,
                uncommon_conv_factor: 1.28,
                per_op_overhead_ms: 0.0,
                metal_factor: None,
                opencl_factor: Some(1.2),
                opengl_factor: None,
                vulkan_factor: None,
                ios_only: false,
                android_only: false,
            },
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost-model parameters of one engine.
///
/// Factors are multipliers on the MNN-calibrated compute time; `None` GPU factors
/// mean the engine does not support that standard (its bar is absent from Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSpec {
    /// CPU time multiplier for well-supported operators.
    pub cpu_factor: f64,
    /// CPU time multiplier for convolutions the engine does not hand-optimize
    /// (asymmetric ≥7-tap kernels, dilated convolutions).
    pub uncommon_conv_factor: f64,
    /// Fixed per-operator framework overhead, in milliseconds.
    pub per_op_overhead_ms: f64,
    /// Metal time multiplier (`None` = unsupported).
    pub metal_factor: Option<f64>,
    /// OpenCL time multiplier.
    pub opencl_factor: Option<f64>,
    /// OpenGL time multiplier.
    pub opengl_factor: Option<f64>,
    /// Vulkan time multiplier.
    pub vulkan_factor: Option<f64>,
    /// Engine only runs on iOS.
    pub ios_only: bool,
    /// Engine only runs on Android.
    pub android_only: bool,
}

impl EngineSpec {
    /// GPU factor for a standard, if supported.
    pub fn gpu_factor(&self, standard: GpuStandard) -> Option<f64> {
        match standard {
            GpuStandard::Metal => self.metal_factor,
            GpuStandard::OpenCl => self.opencl_factor,
            GpuStandard::OpenGl => self.opengl_factor,
            GpuStandard::Vulkan => self.vulkan_factor,
        }
    }
}

/// Whether a convolution falls outside the set that case-by-case engines optimize:
/// asymmetric kernels with a 7-tap side (Inception-v3's 1×7 / 7×1) or dilated
/// convolutions (paper Section 4.2, "bottleneck of case-by-case optimization").
pub fn is_uncommon_conv(attrs: &Conv2dAttrs) -> bool {
    let (kh, kw) = attrs.kernel;
    let asymmetric_large = kh != kw && (kh >= 7 || kw >= 7);
    let dilated = attrs.dilation != (1, 1);
    asymmetric_large || dilated
}

/// Per-node multiplication count split into common / uncommon convolution work.
fn node_muls(graph: &Graph, node: &mnn_graph::Node) -> (f64, bool) {
    let muls = graph.node_mul_count(node).unwrap_or(0) as f64;
    let uncommon = match &node.op {
        Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => is_uncommon_conv(attrs),
        _ => false,
    };
    (muls, uncommon)
}

/// Estimated CPU latency (milliseconds) of running `graph` with `engine` on
/// `device` using `threads` CPU threads.
///
/// Shapes must already be inferred on `graph`.
pub fn estimate_cpu_latency_ms(
    graph: &Graph,
    device: &DeviceProfile,
    engine: Engine,
    threads: usize,
) -> f64 {
    let spec = engine.spec();
    let flops = device.cpu_flops(threads);
    let mut total = 0.0f64;
    for node in graph.nodes() {
        let (muls, uncommon) = node_muls(graph, node);
        let factor = if uncommon {
            spec.uncommon_conv_factor
        } else {
            spec.cpu_factor
        };
        total += muls / flops * 1000.0 * factor + spec.per_op_overhead_ms;
    }
    total
}

/// Estimated GPU latency (milliseconds) of running `graph` with `engine` on
/// `device` through the given GPU `standard`. Returns `None` when the engine does
/// not support that standard or the device does not expose it (Metal vs Android).
pub fn estimate_gpu_latency_ms(
    graph: &Graph,
    device: &DeviceProfile,
    engine: Engine,
    standard: GpuStandard,
) -> Option<f64> {
    let spec = engine.spec();
    let factor = spec.gpu_factor(standard)?;
    // Metal exists only on iOS devices; the Android standards only on Android ones.
    if (standard == GpuStandard::Metal) != device.gpu.is_metal {
        return None;
    }
    if spec.ios_only && !device.gpu.is_metal {
        return None;
    }
    if spec.android_only && device.gpu.is_metal {
        return None;
    }
    let mut total = 0.0f64;
    for node in graph.nodes() {
        let (muls, uncommon) = node_muls(graph, node);
        let uncommon_penalty = if uncommon {
            spec.uncommon_conv_factor / spec.cpu_factor
        } else {
            1.0
        };
        total +=
            muls / device.gpu.flops * 1000.0 * factor * uncommon_penalty + standard.t_schedule_ms();
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_models::{build, ModelKind};

    fn graph(kind: ModelKind) -> Graph {
        let mut g = build(kind, 1, kind.default_input_size());
        g.infer_shapes().unwrap();
        g
    }

    #[test]
    fn mnn_cpu_latency_matches_calibration_targets() {
        // The device profiles were calibrated against the paper's MNN 4-thread
        // MobileNet-v1 latencies (Fig. 7, row 2): iPhoneX ≈ 15 ms, Mate20 ≈ 21 ms,
        // MI6 ≈ 58 ms. Allow ±30% for the synthetic model's small structural
        // differences.
        let g = graph(ModelKind::MobileNetV1);
        let expectations = [("iPhoneX", 15.0), ("Mate20", 21.0), ("MI6", 58.0)];
        for (device, expected) in expectations {
            let d = DeviceProfile::by_name(device).unwrap();
            let got = estimate_cpu_latency_ms(&g, &d, Engine::Mnn, 4);
            assert!(
                (got - expected).abs() / expected < 0.3,
                "{device}: got {got:.1} ms, expected ≈{expected} ms"
            );
        }
    }

    #[test]
    fn mnn_is_fastest_or_tied_on_cpu_across_engines() {
        let g = graph(ModelKind::MobileNetV1);
        let device = DeviceProfile::by_name("Mate20").unwrap();
        let mnn = estimate_cpu_latency_ms(&g, &device, Engine::Mnn, 4);
        for engine in [Engine::Ncnn, Engine::Mace, Engine::TfLite, Engine::Tvm] {
            let other = estimate_cpu_latency_ms(&g, &device, engine, 4);
            assert!(other >= mnn, "{engine} should not beat MNN on CPU");
        }
        // and the 20–40% headline gap holds against the manual-search engines
        let ncnn = estimate_cpu_latency_ms(&g, &device, Engine::Ncnn, 4);
        assert!(ncnn / mnn > 1.15 && ncnn / mnn < 1.6);
    }

    #[test]
    fn ncnn_collapses_on_inception_v3() {
        // Fig. 8: NCNN's unoptimized 1x7 / 7x1 convolutions make Inception-v3
        // abnormally slow, while MNN / MACE / TF-Lite stay within a few ×.
        let g = graph(ModelKind::InceptionV3);
        let p20 = DeviceProfile::by_name("P20").unwrap();
        let mnn = estimate_cpu_latency_ms(&g, &p20, Engine::Mnn, 4);
        let ncnn = estimate_cpu_latency_ms(&g, &p20, Engine::Ncnn, 4);
        let mace = estimate_cpu_latency_ms(&g, &p20, Engine::Mace, 4);
        assert!(
            ncnn / mnn > 5.0,
            "NCNN should be >5x slower (got {:.1}x)",
            ncnn / mnn
        );
        assert!(mace / mnn < 5.0, "MACE should stay within 5x");
        // MNN itself should land near the paper's 297 ms.
        assert!(
            (mnn - 297.0).abs() / 297.0 < 0.4,
            "MNN Inception-v3 on P20: {mnn:.0} ms"
        );
    }

    #[test]
    fn tvm_is_slightly_slower_than_mnn_on_cpu() {
        // Fig. 9 shape: TVM within 1.1–1.6x of MNN on every network.
        let p20 = DeviceProfile::by_name("P20").unwrap();
        for kind in [
            ModelKind::MobileNetV1,
            ModelKind::SqueezeNetV1_1,
            ModelKind::ResNet50,
        ] {
            let g = graph(kind);
            let mnn = estimate_cpu_latency_ms(&g, &p20, Engine::Mnn, 4);
            let tvm = estimate_cpu_latency_ms(&g, &p20, Engine::Tvm, 4);
            let ratio = tvm / mnn;
            assert!((1.05..1.7).contains(&ratio), "{kind}: ratio {ratio:.2}");
        }
    }

    #[test]
    fn gpu_support_matrix_matches_the_engines() {
        let g = graph(ModelKind::MobileNetV1);
        let mi6 = DeviceProfile::by_name("MI6").unwrap();
        let iphone = DeviceProfile::by_name("iPhoneX").unwrap();
        // NCNN has Vulkan but no OpenCL.
        assert!(estimate_gpu_latency_ms(&g, &mi6, Engine::Ncnn, GpuStandard::Vulkan).is_some());
        assert!(estimate_gpu_latency_ms(&g, &mi6, Engine::Ncnn, GpuStandard::OpenCl).is_none());
        // CoreML only exists on iOS / Metal.
        assert!(estimate_gpu_latency_ms(&g, &iphone, Engine::CoreMl, GpuStandard::Metal).is_some());
        assert!(estimate_gpu_latency_ms(&g, &mi6, Engine::CoreMl, GpuStandard::Vulkan).is_none());
        // Metal never exists on Android devices.
        assert!(estimate_gpu_latency_ms(&g, &mi6, Engine::Mnn, GpuStandard::Metal).is_none());
        // MNN covers all three Android standards.
        for standard in [
            GpuStandard::OpenCl,
            GpuStandard::OpenGl,
            GpuStandard::Vulkan,
        ] {
            assert!(estimate_gpu_latency_ms(&g, &mi6, Engine::Mnn, standard).is_some());
        }
    }

    #[test]
    fn coreml_beats_mnn_on_metal_but_not_by_much() {
        let g = graph(ModelKind::MobileNetV1);
        let iphone = DeviceProfile::by_name("iPhoneX").unwrap();
        let mnn = estimate_gpu_latency_ms(&g, &iphone, Engine::Mnn, GpuStandard::Metal).unwrap();
        let coreml =
            estimate_gpu_latency_ms(&g, &iphone, Engine::CoreMl, GpuStandard::Metal).unwrap();
        assert!(coreml < mnn);
        assert!(mnn / coreml < 1.6);
    }

    #[test]
    fn uncommon_conv_detection() {
        assert!(is_uncommon_conv(&Conv2dAttrs::rect(64, 64, (1, 7), (0, 3))));
        assert!(is_uncommon_conv(&Conv2dAttrs::rect(64, 64, (7, 1), (3, 0))));
        assert!(!is_uncommon_conv(&Conv2dAttrs::same_3x3(64, 64)));
        assert!(!is_uncommon_conv(&Conv2dAttrs::rect(
            64,
            64,
            (1, 3),
            (0, 1)
        )));
        let mut dilated = Conv2dAttrs::same_3x3(64, 64);
        dilated.dilation = (2, 2);
        assert!(is_uncommon_conv(&dilated));
    }

    #[test]
    fn more_threads_reduce_estimated_latency() {
        let g = graph(ModelKind::SqueezeNetV1_1);
        let device = DeviceProfile::by_name("Mate20").unwrap();
        let t2 = estimate_cpu_latency_ms(&g, &device, Engine::Mnn, 2);
        let t4 = estimate_cpu_latency_ms(&g, &device, Engine::Mnn, 4);
        assert!(t4 < t2);
    }
}
