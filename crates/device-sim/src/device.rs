//! Device profiles for the phones used throughout the paper's evaluation.

use serde::Serialize;

/// GPU description: marketing name plus the effective FLOPS from the paper's
/// Appendix C list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuInfo {
    /// GPU name, e.g. `"Adreno 540"`.
    pub name: &'static str,
    /// Effective FLOPs per second (Appendix C).
    pub flops: f64,
    /// Whether the device exposes Metal (iOS) rather than the Android GPU standards.
    pub is_metal: bool,
}

/// A phone profile: the effective CPU throughput at 1/2/4 threads (calibrated from
/// the paper's MNN CPU latencies) and the GPU description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceProfile {
    /// Device marketing name (e.g. `"Mate20"`).
    pub name: &'static str,
    /// SoC name (e.g. `"Kirin 980"`).
    pub soc: &'static str,
    /// CPU description.
    pub cpu: &'static str,
    /// Effective single-thread CPU FLOPs per second.
    pub cpu_flops_1t: f64,
    /// Effective 2-thread CPU FLOPs per second.
    pub cpu_flops_2t: f64,
    /// Effective 4-thread CPU FLOPs per second.
    pub cpu_flops_4t: f64,
    /// GPU description.
    pub gpu: GpuInfo,
}

impl DeviceProfile {
    /// Effective CPU FLOPS for a given thread count (1, 2 or 4; other values are
    /// interpolated from the nearest configuration).
    pub fn cpu_flops(&self, threads: usize) -> f64 {
        match threads {
            0 | 1 => self.cpu_flops_1t,
            2 | 3 => self.cpu_flops_2t,
            _ => self.cpu_flops_4t,
        }
    }

    /// Look up a profile by (case-insensitive) device name.
    pub fn by_name(name: &str) -> Option<DeviceProfile> {
        ALL_DEVICES
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
            .copied()
    }
}

const fn gpu(name: &'static str, flops: f64, is_metal: bool) -> GpuInfo {
    GpuInfo {
        name,
        flops,
        is_metal,
    }
}

/// The benchmark phones of Section 4.1 (Fig. 7), the ablation phones of Table 2,
/// the Fig. 8/9 phone (P20 / Kirin 970), the Pixel phones of Table 8 and the top-5
/// production devices of Table 6.
///
/// CPU throughputs are calibrated so that the simulator's MNN latency on
/// MobileNet-v1 (or Inception-v3 for the Pixel phones) reproduces the paper's own
/// MNN measurements; GPU FLOPS come from the Appendix C table.
pub const ALL_DEVICES: &[DeviceProfile] = &[
    DeviceProfile {
        name: "iPhoneX",
        soc: "Apple A11",
        cpu: "A11 Bionic (2 big + 4 little)",
        cpu_flops_1t: 11.5e9,
        cpu_flops_2t: 21.1e9,
        cpu_flops_4t: 37.9e9,
        gpu: gpu("Apple A11 GPU", 42.0e9, true),
    },
    DeviceProfile {
        name: "iPhone8",
        soc: "Apple A11",
        cpu: "A11 Bionic (2 big + 4 little)",
        cpu_flops_1t: 11.5e9,
        cpu_flops_2t: 21.1e9,
        cpu_flops_4t: 40.6e9,
        gpu: gpu("Apple A11 GPU", 42.0e9, true),
    },
    DeviceProfile {
        name: "Mate20",
        soc: "Kirin 980",
        cpu: "2x A76 + 2x A76 + 4x A55",
        cpu_flops_1t: 8.5e9,
        cpu_flops_2t: 15.4e9,
        cpu_flops_4t: 27.1e9,
        gpu: gpu("Mali-G76", 31.61e9, false),
    },
    DeviceProfile {
        name: "MI6",
        soc: "Snapdragon 835",
        cpu: "Kryo 280",
        cpu_flops_1t: 3.1e9,
        cpu_flops_2t: 5.6e9,
        cpu_flops_4t: 9.8e9,
        gpu: gpu("Adreno 540", 42.74e9, false),
    },
    DeviceProfile {
        name: "P10",
        soc: "Kirin 960",
        cpu: "Cortex-A73",
        cpu_flops_1t: 6.2e9,
        cpu_flops_2t: 11.6e9,
        cpu_flops_4t: 21.2e9,
        gpu: gpu("Mali-G71", 31.61e9, false),
    },
    DeviceProfile {
        name: "P20",
        soc: "Kirin 970",
        cpu: "Cortex-A73",
        cpu_flops_1t: 5.6e9,
        cpu_flops_2t: 10.5e9,
        cpu_flops_4t: 19.2e9,
        gpu: gpu("Mali-G72 MP12", 31.61e9, false),
    },
    DeviceProfile {
        name: "Pixel2",
        soc: "Snapdragon 835",
        cpu: "Kryo 280",
        cpu_flops_1t: 8.6e9,
        cpu_flops_2t: 15.5e9,
        cpu_flops_4t: 26.6e9,
        gpu: gpu("Adreno 540", 42.74e9, false),
    },
    DeviceProfile {
        name: "Pixel3",
        soc: "Snapdragon 845",
        cpu: "Kryo 385",
        cpu_flops_1t: 9.6e9,
        cpu_flops_2t: 18.0e9,
        cpu_flops_4t: 35.6e9,
        gpu: gpu("Adreno 630", 42.74e9, false),
    },
    DeviceProfile {
        name: "GalaxyS8",
        soc: "Snapdragon 835",
        cpu: "Kryo 280",
        cpu_flops_1t: 8.0e9,
        cpu_flops_2t: 14.5e9,
        cpu_flops_4t: 25.0e9,
        gpu: gpu("Adreno 540", 42.74e9, false),
    },
    // ---- Table 6: top-5 devices of the production object-detection service ----
    DeviceProfile {
        name: "EML-AL00",
        soc: "Kirin 970",
        cpu: "Cortex-A73",
        cpu_flops_1t: 3.5e9,
        cpu_flops_2t: 6.6e9,
        cpu_flops_4t: 11.7e9,
        gpu: gpu("Mali-G72 MP12", 31.61e9, false),
    },
    DeviceProfile {
        name: "PBEM00",
        soc: "SDM670",
        cpu: "Kryo 360",
        cpu_flops_1t: 3.7e9,
        cpu_flops_2t: 6.9e9,
        cpu_flops_4t: 12.2e9,
        gpu: gpu("Adreno 615", 16.77e9, false),
    },
    DeviceProfile {
        name: "PACM00",
        soc: "MT6771",
        cpu: "Cortex-A73",
        cpu_flops_1t: 3.3e9,
        cpu_flops_2t: 6.3e9,
        cpu_flops_4t: 11.2e9,
        gpu: gpu("Mali-G72 MP3", 6.83e9, false),
    },
    DeviceProfile {
        name: "COL-AL10",
        soc: "Kirin 970",
        cpu: "Cortex-A73",
        cpu_flops_1t: 3.2e9,
        cpu_flops_2t: 6.1e9,
        cpu_flops_4t: 10.8e9,
        gpu: gpu("Mali-G72 MP12", 31.61e9, false),
    },
    DeviceProfile {
        name: "OPPO R11",
        soc: "Snapdragon 660",
        cpu: "Kryo 260",
        cpu_flops_1t: 3.4e9,
        cpu_flops_2t: 6.4e9,
        cpu_flops_4t: 11.3e9,
        gpu: gpu("Adreno 512", 14.23e9, false),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(DeviceProfile::by_name("mate20").is_some());
        assert!(DeviceProfile::by_name("MATE20").is_some());
        assert!(DeviceProfile::by_name("NoSuchPhone").is_none());
    }

    #[test]
    fn thread_scaling_is_monotonic() {
        for device in ALL_DEVICES {
            assert!(device.cpu_flops(2) > device.cpu_flops(1), "{}", device.name);
            assert!(device.cpu_flops(4) > device.cpu_flops(2), "{}", device.name);
            assert!(device.gpu.flops > 0.0);
        }
    }

    #[test]
    fn high_end_devices_outrun_low_end_devices() {
        let iphone = DeviceProfile::by_name("iPhoneX").unwrap();
        let mi6 = DeviceProfile::by_name("MI6").unwrap();
        assert!(iphone.cpu_flops(4) > 2.0 * mi6.cpu_flops(4));
    }

    #[test]
    fn appendix_gpu_flops_are_used() {
        let mi6 = DeviceProfile::by_name("MI6").unwrap();
        assert_eq!(mi6.gpu.flops, 42.74e9);
        let p20 = DeviceProfile::by_name("P20").unwrap();
        assert_eq!(p20.gpu.flops, 31.61e9);
    }

    #[test]
    fn table6_devices_are_present() {
        for name in ["EML-AL00", "PBEM00", "PACM00", "COL-AL10", "OPPO R11"] {
            assert!(DeviceProfile::by_name(name).is_some(), "{name} missing");
        }
    }
}
