//! Physical memory layouts and conversion routines.
//!
//! MNN's CPU kernels operate on the **NC4HW4** layout (paper, Section 3.3.1): the
//! channel dimension is split into `ceil(C/4)` blocks of 4 channels, and the 4
//! channel values of one spatial position are stored contiguously so a single SIMD
//! instruction can process them. Logically the packed buffer has shape
//! `(N, ceil(C/4), H, W, 4)`.

use crate::{round_up_pack, Shape, PACK};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical memory layout of a 4-D activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataLayout {
    /// Batch, channel, height, width — the canonical layout used by graph-level code.
    #[default]
    Nchw,
    /// Batch, height, width, channel — the layout used by TensorFlow-style models.
    Nhwc,
    /// MNN's packed layout: `(N, ceil(C/4), H, W, 4)`. Channels are padded with zeros
    /// up to a multiple of 4.
    Nc4hw4,
}

impl DataLayout {
    /// Number of buffer elements needed to store a tensor of logical shape `shape`
    /// in this layout.
    ///
    /// For [`DataLayout::Nc4hw4`] the channel dimension is padded up to a multiple
    /// of 4, so the physical size can exceed `shape.num_elements()`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not 4-D and the layout is not [`DataLayout::Nchw`].
    pub fn physical_elements(self, shape: &Shape) -> usize {
        match self {
            DataLayout::Nchw => shape.num_elements(),
            DataLayout::Nhwc => shape.num_elements(),
            DataLayout::Nc4hw4 => {
                let (n, c, h, w) = (
                    shape.batch(),
                    shape.channels(),
                    shape.height(),
                    shape.width(),
                );
                n * round_up_pack(c) * h * w
            }
        }
    }

    /// Short human-readable name (`"NCHW"`, `"NHWC"`, `"NC4HW4"`).
    pub const fn name(self) -> &'static str {
        match self {
            DataLayout::Nchw => "NCHW",
            DataLayout::Nhwc => "NHWC",
            DataLayout::Nc4hw4 => "NC4HW4",
        }
    }
}

impl fmt::Display for DataLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Offset of element `(n, c, h, w)` in an NC4HW4 buffer for a tensor of logical
/// shape `(batch, channels, height, width)`.
///
/// ```
/// use mnn_tensor::nc4hw4_offset;
/// // channel 5 lives in block 1, lane 1
/// let off = nc4hw4_offset(0, 5, 0, 0, 8, 2, 2);
/// assert_eq!(off, 1 * (2 * 2 * 4) + 0 * (2 * 4) + 0 * 4 + 1);
/// ```
pub fn nc4hw4_offset(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    channels: usize,
    height: usize,
    width: usize,
) -> usize {
    let c_blocks = round_up_pack(channels) / PACK;
    let block = c / PACK;
    let lane = c % PACK;
    ((n * c_blocks + block) * height * width + h * width + w) * PACK + lane
}

/// Offset of element `(n, c, h, w)` in an NCHW buffer.
pub fn nchw_offset(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    channels: usize,
    height: usize,
    width: usize,
) -> usize {
    ((n * channels + c) * height + h) * width + w
}

/// Offset of element `(n, c, h, w)` in an NHWC buffer.
pub fn nhwc_offset(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    channels: usize,
    height: usize,
    width: usize,
) -> usize {
    ((n * height + h) * width + w) * channels + c
}

/// Convert an `f32` buffer from one layout to another for a tensor of logical shape
/// `shape` (must be 4-D). Returns a freshly allocated buffer in the destination
/// layout; padded lanes in NC4HW4 are zero-filled.
///
/// # Panics
///
/// Panics if `shape` is not 4-D or `src.len()` does not match the source layout's
/// physical element count.
pub fn convert_layout_f32(
    src: &[f32],
    shape: &Shape,
    from: DataLayout,
    to: DataLayout,
) -> Vec<f32> {
    assert!(shape.is_4d(), "layout conversion requires a 4-D shape");
    assert_eq!(
        src.len(),
        from.physical_elements(shape),
        "source buffer length does not match {from} physical size"
    );
    if from == to {
        return src.to_vec();
    }
    let (n, c, h, w) = (
        shape.batch(),
        shape.channels(),
        shape.height(),
        shape.width(),
    );
    let mut dst = vec![0.0f32; to.physical_elements(shape)];
    for bn in 0..n {
        for bc in 0..c {
            for bh in 0..h {
                for bw in 0..w {
                    let s = offset_for(from, bn, bc, bh, bw, c, h, w);
                    let d = offset_for(to, bn, bc, bh, bw, c, h, w);
                    dst[d] = src[s];
                }
            }
        }
    }
    dst
}

#[allow(clippy::too_many_arguments)]
fn offset_for(
    layout: DataLayout,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    channels: usize,
    height: usize,
    width: usize,
) -> usize {
    match layout {
        DataLayout::Nchw => nchw_offset(n, c, h, w, channels, height, width),
        DataLayout::Nhwc => nhwc_offset(n, c, h, w, channels, height, width),
        DataLayout::Nc4hw4 => nc4hw4_offset(n, c, h, w, channels, height, width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn physical_elements_pads_nc4hw4() {
        let shape = Shape::nchw(1, 3, 2, 2);
        assert_eq!(DataLayout::Nchw.physical_elements(&shape), 12);
        assert_eq!(DataLayout::Nhwc.physical_elements(&shape), 12);
        assert_eq!(DataLayout::Nc4hw4.physical_elements(&shape), 16);
    }

    #[test]
    fn exact_multiple_of_pack_is_not_padded() {
        let shape = Shape::nchw(2, 8, 3, 3);
        assert_eq!(
            DataLayout::Nc4hw4.physical_elements(&shape),
            shape.num_elements()
        );
    }

    #[test]
    fn nchw_to_nhwc_small_case() {
        // shape (1, 2, 1, 2): NCHW = [c0w0, c0w1, c1w0, c1w1]
        let shape = Shape::nchw(1, 2, 1, 2);
        let src = vec![1.0, 2.0, 3.0, 4.0];
        let dst = convert_layout_f32(&src, &shape, DataLayout::Nchw, DataLayout::Nhwc);
        // NHWC = [w0c0, w0c1, w1c0, w1c1]
        assert_eq!(dst, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn nchw_to_nc4hw4_pads_with_zero() {
        let shape = Shape::nchw(1, 2, 1, 1);
        let src = vec![5.0, 7.0];
        let dst = convert_layout_f32(&src, &shape, DataLayout::Nchw, DataLayout::Nc4hw4);
        assert_eq!(dst, vec![5.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_conversion_is_copy() {
        let shape = Shape::nchw(1, 1, 2, 2);
        let src = vec![1.0, 2.0, 3.0, 4.0];
        let dst = convert_layout_f32(&src, &shape, DataLayout::Nchw, DataLayout::Nchw);
        assert_eq!(dst, src);
    }

    #[test]
    fn layout_names() {
        assert_eq!(DataLayout::Nchw.to_string(), "NCHW");
        assert_eq!(DataLayout::Nc4hw4.to_string(), "NC4HW4");
    }

    fn layouts() -> impl Strategy<Value = DataLayout> {
        prop_oneof![
            Just(DataLayout::Nchw),
            Just(DataLayout::Nhwc),
            Just(DataLayout::Nc4hw4),
        ]
    }

    proptest! {
        #[test]
        fn prop_roundtrip_is_lossless(
            n in 1usize..3, c in 1usize..9, h in 1usize..6, w in 1usize..6,
            from in layouts(), to in layouts()
        ) {
            let shape = Shape::nchw(n, c, h, w);
            // Fill the *logical* elements through NCHW so padding lanes stay zero.
            let logical: Vec<f32> = (0..shape.num_elements()).map(|v| v as f32 + 1.0).collect();
            let src = convert_layout_f32(&logical, &shape, DataLayout::Nchw, from);
            let converted = convert_layout_f32(&src, &shape, from, to);
            let back = convert_layout_f32(&converted, &shape, to, DataLayout::Nchw);
            prop_assert_eq!(back, logical);
        }

        #[test]
        fn prop_nc4hw4_offsets_in_bounds(
            n in 1usize..3, c in 1usize..17, h in 1usize..5, w in 1usize..5
        ) {
            let shape = Shape::nchw(n, c, h, w);
            let size = DataLayout::Nc4hw4.physical_elements(&shape);
            for bn in 0..n { for bc in 0..c { for bh in 0..h { for bw in 0..w {
                let off = nc4hw4_offset(bn, bc, bh, bw, c, h, w);
                prop_assert!(off < size);
            }}}}
        }
    }
}
