//! Batch-dimension stacking and splitting.
//!
//! A serving runtime coalesces several single-item requests into one batched
//! inference ("dynamic micro-batching"): inputs are stacked along the leading
//! (batch) dimension, the model runs once, and the batched output is split back
//! into per-request tensors. Because every layout used by the engine — `NCHW`,
//! `NHWC` and the packed `NC4HW4` — keeps the batch dimension outermost, both
//! operations are pure buffer concatenation/chunking and never re-order
//! elements, so a stacked run that computes each sample independently stays
//! bit-identical to the unbatched runs.

use crate::{Tensor, TensorData, TensorError};

impl Tensor {
    /// Stack tensors along the leading (batch) dimension.
    ///
    /// All tensors must share the data type, physical layout, and every
    /// dimension except the leading one; the result's leading dimension is the
    /// sum of the inputs' leading dimensions. Stacking is a buffer
    /// concatenation — element order within each sample is preserved exactly.
    ///
    /// ```
    /// use mnn_tensor::{Shape, Tensor};
    /// let a = Tensor::full(Shape::nchw(1, 2, 2, 2), 1.0);
    /// let b = Tensor::full(Shape::nchw(1, 2, 2, 2), 2.0);
    /// let stacked = Tensor::stack_batch(&[a, b]).unwrap();
    /// assert_eq!(stacked.shape().dims(), &[2, 2, 2, 2]);
    /// assert_eq!(stacked.at(1, 1, 1, 1), 2.0);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`TensorError::EmptyBatch`] for an empty slice.
    /// * [`TensorError::NotBatchable`] for rank-0 (scalar) tensors.
    /// * [`TensorError::DataTypeMismatch`] / [`TensorError::LayoutMismatch`] /
    ///   [`TensorError::ShapeMismatch`] when a tensor disagrees with the first
    ///   one.
    pub fn stack_batch(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = tensors.first().ok_or(TensorError::EmptyBatch)?;
        if first.shape().rank() == 0 {
            return Err(TensorError::NotBatchable(first.shape().clone()));
        }
        let mut batch = 0usize;
        for t in tensors {
            if t.data_type() != first.data_type() {
                return Err(TensorError::DataTypeMismatch {
                    expected: first.data_type(),
                    actual: t.data_type(),
                });
            }
            if t.layout() != first.layout() {
                return Err(TensorError::LayoutMismatch {
                    expected: first.layout(),
                    actual: t.layout(),
                });
            }
            if t.shape().rank() != first.shape().rank()
                || t.shape().dims()[1..] != first.shape().dims()[1..]
            {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape().clone(),
                    actual: t.shape().clone(),
                });
            }
            batch += t.shape().dims()[0];
        }

        let mut dims = first.shape().dims().to_vec();
        dims[0] = batch;
        let data = match first.data() {
            TensorData::F32(_) => TensorData::F32(concat(tensors, |t| match t.data() {
                TensorData::F32(v) => v,
                _ => unreachable!("dtype checked above"),
            })),
            TensorData::I8(_) => TensorData::I8(concat(tensors, |t| match t.data() {
                TensorData::I8(v) => v,
                _ => unreachable!("dtype checked above"),
            })),
            TensorData::U8(_) => TensorData::U8(concat(tensors, |t| match t.data() {
                TensorData::U8(v) => v,
                _ => unreachable!("dtype checked above"),
            })),
            TensorData::I32(_) => TensorData::I32(concat(tensors, |t| match t.data() {
                TensorData::I32(v) => v,
                _ => unreachable!("dtype checked above"),
            })),
        };
        Tensor::from_parts(dims.into(), first.layout(), data)
    }

    /// Split the tensor into `parts` tensors of equal size along the leading
    /// (batch) dimension — the inverse of [`Tensor::stack_batch`].
    ///
    /// ```
    /// use mnn_tensor::{Shape, Tensor};
    /// let t = Tensor::from_vec(Shape::matrix(4, 2), (0..8).map(|v| v as f32).collect());
    /// let parts = t.split_batch(4).unwrap();
    /// assert_eq!(parts.len(), 4);
    /// assert_eq!(parts[3].data_f32(), &[6.0, 7.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`TensorError::NotBatchable`] for rank-0 (scalar) tensors.
    /// * [`TensorError::IndivisibleBatch`] when `parts` is zero or does not
    ///   divide the leading dimension evenly.
    pub fn split_batch(&self, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        if self.shape().rank() == 0 {
            return Err(TensorError::NotBatchable(self.shape().clone()));
        }
        let batch = self.shape().dims()[0];
        if parts == 0 || !batch.is_multiple_of(parts) {
            return Err(TensorError::IndivisibleBatch { batch, parts });
        }
        let mut dims = self.shape().dims().to_vec();
        dims[0] = batch / parts;
        // Every supported layout keeps the batch dimension outermost, so each
        // part is a contiguous chunk of the physical buffer.
        let chunk = self.data().len() / parts;
        let mut out = Vec::with_capacity(parts);
        for i in 0..parts {
            let range = i * chunk..(i + 1) * chunk;
            let data = match self.data() {
                TensorData::F32(v) => TensorData::F32(v[range].to_vec()),
                TensorData::I8(v) => TensorData::I8(v[range].to_vec()),
                TensorData::U8(v) => TensorData::U8(v[range].to_vec()),
                TensorData::I32(v) => TensorData::I32(v[range].to_vec()),
            };
            out.push(Tensor::from_parts(
                dims.clone().into(),
                self.layout(),
                data,
            )?);
        }
        Ok(out)
    }
}

/// Concatenate the typed buffers of `tensors` in order.
fn concat<'a, T: Copy + 'a>(tensors: &'a [Tensor], get: impl Fn(&'a Tensor) -> &'a [T]) -> Vec<T> {
    let total = tensors.iter().map(|t| get(t).len()).sum();
    let mut out = Vec::with_capacity(total);
    for t in tensors {
        out.extend_from_slice(get(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{DataLayout, DataType, Shape, Tensor, TensorError};

    fn sample(seed: f32) -> Tensor {
        Tensor::from_vec(
            Shape::nchw(1, 3, 2, 2),
            (0..12).map(|v| seed + v as f32).collect(),
        )
    }

    #[test]
    fn stack_then_split_roundtrips() {
        let parts: Vec<Tensor> = (0..4).map(|i| sample(100.0 * i as f32)).collect();
        let stacked = Tensor::stack_batch(&parts).unwrap();
        assert_eq!(stacked.shape().dims(), &[4, 3, 2, 2]);
        let back = stacked.split_batch(4).unwrap();
        assert_eq!(back, parts);
    }

    #[test]
    fn stack_preserves_logical_coordinates() {
        let parts: Vec<Tensor> = (0..3).map(|i| sample(10.0 * i as f32)).collect();
        let stacked = Tensor::stack_batch(&parts).unwrap();
        for (n, part) in parts.iter().enumerate() {
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        assert_eq!(stacked.at(n, c, h, w), part.at(0, c, h, w));
                    }
                }
            }
        }
    }

    #[test]
    fn stack_sums_leading_dimensions() {
        let a = Tensor::from_vec(Shape::matrix(2, 3), (0..6).map(|v| v as f32).collect());
        let b = Tensor::from_vec(Shape::matrix(1, 3), vec![9.0, 10.0, 11.0]);
        let stacked = Tensor::stack_batch(&[a, b]).unwrap();
        assert_eq!(stacked.shape().dims(), &[3, 3]);
        assert_eq!(stacked.data_f32()[6..], [9.0, 10.0, 11.0]);
    }

    #[test]
    fn stack_rejects_empty_slice() {
        assert_eq!(Tensor::stack_batch(&[]), Err(TensorError::EmptyBatch));
    }

    #[test]
    fn stack_rejects_scalars() {
        let s = Tensor::full(Shape::scalar(), 1.0);
        assert!(matches!(
            Tensor::stack_batch(&[s]),
            Err(TensorError::NotBatchable(_))
        ));
    }

    #[test]
    fn stack_rejects_shape_mismatch() {
        let a = sample(0.0);
        let b = Tensor::zeros(Shape::nchw(1, 3, 2, 3));
        assert!(matches!(
            Tensor::stack_batch(&[a, b]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn stack_rejects_dtype_mismatch() {
        let a = Tensor::zeros(Shape::vector(4));
        let b = Tensor::try_from_i8(Shape::vector(4), vec![0; 4]).unwrap();
        assert_eq!(
            Tensor::stack_batch(&[a, b]),
            Err(TensorError::DataTypeMismatch {
                expected: DataType::F32,
                actual: DataType::I8,
            })
        );
    }

    #[test]
    fn stack_rejects_layout_mismatch() {
        let a = sample(0.0);
        let b = sample(1.0).to_layout(DataLayout::Nc4hw4);
        assert_eq!(
            Tensor::stack_batch(&[a, b]),
            Err(TensorError::LayoutMismatch {
                expected: DataLayout::Nchw,
                actual: DataLayout::Nc4hw4,
            })
        );
    }

    #[test]
    fn stack_and_split_handle_packed_layout() {
        // 3 channels pad to 4 in NC4HW4; the padded per-sample blocks must
        // concatenate and split without mixing samples.
        let parts: Vec<Tensor> = (0..2)
            .map(|i| sample(50.0 * i as f32).to_layout(DataLayout::Nc4hw4))
            .collect();
        let stacked = Tensor::stack_batch(&parts).unwrap();
        assert_eq!(stacked.layout(), DataLayout::Nc4hw4);
        assert_eq!(stacked.at(1, 2, 1, 1), parts[1].at(0, 2, 1, 1));
        let back = stacked.split_batch(2).unwrap();
        assert_eq!(back, parts);
    }

    #[test]
    fn stack_supports_integer_tensors() {
        let a = Tensor::try_from_i32(Shape::vector(2), vec![1, 2]).unwrap();
        let b = Tensor::try_from_i32(Shape::vector(2), vec![3, 4]).unwrap();
        let stacked = Tensor::stack_batch(&[a, b]).unwrap();
        assert_eq!(stacked.try_data_i32().unwrap(), &[1, 2, 3, 4]);
        let back = stacked.split_batch(2).unwrap();
        assert_eq!(back[1].try_data_i32().unwrap(), &[3, 4]);
    }

    #[test]
    fn split_rejects_uneven_and_zero_parts() {
        let t = Tensor::zeros(Shape::nchw(4, 1, 1, 1));
        assert_eq!(
            t.split_batch(3),
            Err(TensorError::IndivisibleBatch { batch: 4, parts: 3 })
        );
        assert_eq!(
            t.split_batch(0),
            Err(TensorError::IndivisibleBatch { batch: 4, parts: 0 })
        );
        assert_eq!(t.split_batch(2).unwrap().len(), 2);
    }

    #[test]
    fn split_rejects_scalars() {
        let s = Tensor::full(Shape::scalar(), 1.0);
        assert!(matches!(
            s.split_batch(1),
            Err(TensorError::NotBatchable(_))
        ));
    }
}
