//! Tensor containers, data types, shapes and data layouts for the MNN-rs inference engine.
//!
//! This crate is the lowest layer of the MNN-rs reproduction of
//! *MNN: A Universal and Efficient Inference Engine* (MLSys 2020). It provides:
//!
//! * [`DataType`] — element types supported by the engine (`f32`, `i8`, `i32`, `u8`).
//! * [`Shape`] — a dimension vector with stride/element-count helpers.
//! * [`DataLayout`] — the memory layouts used by the engine: the canonical `NCHW`,
//!   the interleaved `NHWC`, and MNN's SIMD-friendly **`NC4HW4`** layout in which the
//!   channel dimension is split into blocks of 4 contiguous elements (Section 3.3.1
//!   of the paper).
//! * [`Tensor`] — an owned, dense tensor with conversion routines between layouts.
//!
//! # Example
//!
//! ```
//! use mnn_tensor::{Tensor, Shape, DataLayout};
//!
//! // A 1x3x4x4 activation in NCHW...
//! let t = Tensor::from_vec(Shape::nchw(1, 3, 4, 4), (0..48).map(|v| v as f32).collect());
//! // ...repacked into NC4HW4 (channels padded up to a multiple of 4)...
//! let packed = t.to_layout(DataLayout::Nc4hw4);
//! // ...and back, losslessly.
//! let back = packed.to_layout(DataLayout::Nchw);
//! assert_eq!(t.data_f32(), back.data_f32());
//! ```

#![deny(missing_docs)]

mod batch;
mod dtype;
mod error;
mod layout;
mod shape;
mod tensor;

pub use dtype::DataType;
pub use error::TensorError;
pub use layout::{convert_layout_f32, nc4hw4_offset, nchw_offset, nhwc_offset, DataLayout};
pub use shape::Shape;
pub use tensor::{Tensor, TensorData};

/// Number of elements packed together in the NC4HW4 layout.
///
/// MNN splits out `V = 4` channel elements as a unit so a single SIMD register can
/// process 4 values at once (paper, Section 3.3.1, "Hadamard product optimization").
pub const PACK: usize = 4;

/// Round `value` up to the next multiple of [`PACK`].
///
/// ```
/// assert_eq!(mnn_tensor::round_up_pack(3), 4);
/// assert_eq!(mnn_tensor::round_up_pack(4), 4);
/// assert_eq!(mnn_tensor::round_up_pack(5), 8);
/// assert_eq!(mnn_tensor::round_up_pack(0), 0);
/// ```
pub const fn round_up_pack(value: usize) -> usize {
    value.div_ceil(PACK) * PACK
}

/// Round `value` up to the next multiple of `to`.
///
/// # Panics
///
/// Panics if `to == 0`.
///
/// ```
/// assert_eq!(mnn_tensor::round_up(10, 8), 16);
/// ```
pub const fn round_up(value: usize, to: usize) -> usize {
    value.div_ceil(to) * to
}
