//! Tensor shapes and stride helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor.
///
/// A [`Shape`] is an ordered list of dimension sizes. For 4-D activation tensors the
/// convention throughout the engine is `(N, C, H, W)` regardless of the physical
/// memory layout (which is tracked separately by
/// [`DataLayout`](crate::DataLayout)).
///
/// ```
/// use mnn_tensor::Shape;
/// let s = Shape::nchw(1, 64, 56, 56);
/// assert_eq!(s.num_elements(), 64 * 56 * 56);
/// assert_eq!(s.channels(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from an arbitrary dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Create a 4-D `(N, C, H, W)` shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Create a 2-D `(rows, cols)` shape, used for matrices / fully-connected layers.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Create a 1-D shape of `len` elements.
    pub fn vector(len: usize) -> Self {
        Shape(vec![len])
    }

    /// Create a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions; 1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major (C-contiguous) strides for this shape.
    ///
    /// ```
    /// use mnn_tensor::Shape;
    /// assert_eq!(Shape::nchw(1, 2, 3, 4).strides(), vec![24, 12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Dimension `i`, or 1 when the shape has fewer dimensions.
    pub fn dim_or(&self, i: usize, default: usize) -> usize {
        self.0.get(i).copied().unwrap_or(default)
    }

    /// Batch dimension of a 4-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn batch(&self) -> usize {
        assert_eq!(self.rank(), 4, "batch() requires a 4-D shape, got {self}");
        self.0[0]
    }

    /// Channel dimension of a 4-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn channels(&self) -> usize {
        assert_eq!(
            self.rank(),
            4,
            "channels() requires a 4-D shape, got {self}"
        );
        self.0[1]
    }

    /// Height dimension of a 4-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn height(&self) -> usize {
        assert_eq!(self.rank(), 4, "height() requires a 4-D shape, got {self}");
        self.0[2]
    }

    /// Width dimension of a 4-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn width(&self) -> usize {
        assert_eq!(self.rank(), 4, "width() requires a 4-D shape, got {self}");
        self.0[3]
    }

    /// Whether the shape is 4-dimensional.
    pub fn is_4d(&self) -> bool {
        self.rank() == 4
    }

    /// Flat row-major index of the multi-dimensional `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any coordinate is out of bounds
    /// (debug builds only for the bounds check).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .zip(strides.iter())
            .zip(self.0.iter())
            .map(|((&i, &s), &d)| {
                debug_assert!(i < d, "index {i} out of bounds for dimension of size {d}");
                i * s
            })
            .sum()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nchw_accessors() {
        let s = Shape::nchw(2, 3, 5, 7);
        assert_eq!(s.batch(), 2);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.height(), 5);
        assert_eq!(s.width(), 7);
        assert_eq!(s.num_elements(), 2 * 3 * 5 * 7);
        assert!(s.is_4d());
    }

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::matrix(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::vector(10).strides(), vec![1]);
        assert_eq!(Shape::nchw(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.offset(&[0, 0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3, 4]), 60 + 40 + 15 + 4);
    }

    #[test]
    #[should_panic(expected = "requires a 4-D shape")]
    fn channels_panics_on_matrix() {
        Shape::matrix(2, 2).channels();
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::nchw(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_vecs() {
        let a: Shape = [1, 2, 3].into();
        let b: Shape = vec![1, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_offset_is_bijective_within_bounds(
            n in 1usize..3, c in 1usize..5, h in 1usize..6, w in 1usize..6
        ) {
            let s = Shape::nchw(n, c, h, w);
            let mut seen = std::collections::HashSet::new();
            for bn in 0..n { for bc in 0..c { for bh in 0..h { for bw in 0..w {
                let off = s.offset(&[bn, bc, bh, bw]);
                prop_assert!(off < s.num_elements());
                prop_assert!(seen.insert(off), "offset {} duplicated", off);
            }}}}
            prop_assert_eq!(seen.len(), s.num_elements());
        }

        #[test]
        fn prop_strides_product_consistency(dims in proptest::collection::vec(1usize..6, 1..5)) {
            let s = Shape::new(dims.clone());
            let strides = s.strides();
            // stride[0] * dims[0] == num_elements for row-major layout
            prop_assert_eq!(strides[0] * dims[0], s.num_elements());
        }
    }
}
