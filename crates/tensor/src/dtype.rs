//! Element data types supported by the engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a [`Tensor`](crate::Tensor).
///
/// The engine primarily computes in `f32`; `i8`/`u8` are used by the post-training
/// quantization path and `i32` by shape/index tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataType {
    /// 32-bit IEEE-754 floating point (the default compute type).
    #[default]
    F32,
    /// Signed 8-bit integer, used for quantized weights/activations.
    I8,
    /// Unsigned 8-bit integer, used for quantized activations with asymmetric zero points.
    U8,
    /// Signed 32-bit integer, used for indices, shapes and quantized accumulators.
    I32,
}

impl DataType {
    /// Size in bytes of one element of this type.
    ///
    /// ```
    /// use mnn_tensor::DataType;
    /// assert_eq!(DataType::F32.size_of(), 4);
    /// assert_eq!(DataType::I8.size_of(), 1);
    /// ```
    pub const fn size_of(self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::I8 | DataType::U8 => 1,
        }
    }

    /// Whether this is a quantized (integer, sub-32-bit) type.
    pub const fn is_quantized(self) -> bool {
        matches!(self, DataType::I8 | DataType::U8)
    }

    /// Whether this is a floating point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::F32)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::F32 => "f32",
            DataType::I8 => "i8",
            DataType::U8 => "u8",
            DataType::I32 => "i32",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_types() {
        assert_eq!(DataType::F32.size_of(), std::mem::size_of::<f32>());
        assert_eq!(DataType::I32.size_of(), std::mem::size_of::<i32>());
        assert_eq!(DataType::I8.size_of(), std::mem::size_of::<i8>());
        assert_eq!(DataType::U8.size_of(), std::mem::size_of::<u8>());
    }

    #[test]
    fn quantized_flags() {
        assert!(DataType::I8.is_quantized());
        assert!(DataType::U8.is_quantized());
        assert!(!DataType::F32.is_quantized());
        assert!(!DataType::I32.is_quantized());
        assert!(DataType::F32.is_float());
        assert!(!DataType::I32.is_float());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::F32.to_string(), "f32");
        assert_eq!(DataType::I8.to_string(), "i8");
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(DataType::default(), DataType::F32);
    }
}
