//! Owned dense tensors.

use crate::layout::convert_layout_f32;
use crate::{DataLayout, DataType, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Backing storage of a [`Tensor`], one variant per supported [`DataType`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TensorData {
    /// 32-bit float storage.
    F32(Vec<f32>),
    /// Signed 8-bit storage (quantized).
    I8(Vec<i8>),
    /// Unsigned 8-bit storage (quantized).
    U8(Vec<u8>),
    /// 32-bit integer storage.
    I32(Vec<i32>),
}

impl TensorData {
    /// The [`DataType`] of this storage.
    pub fn data_type(&self) -> DataType {
        match self {
            TensorData::F32(_) => DataType::F32,
            TensorData::I8(_) => DataType::I8,
            TensorData::U8(_) => DataType::U8,
            TensorData::I32(_) => DataType::I32,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::I8(v) => v.len(),
            TensorData::U8(v) => v.len(),
            TensorData::I32(v) => v.len(),
        }
    }

    /// Whether the storage holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An owned dense tensor: shape + layout + typed storage.
///
/// The *logical* shape is always expressed as if the tensor were `NCHW` (for 4-D
/// tensors); the physical arrangement of the buffer is described by
/// [`Tensor::layout`]. Weight tensors and 1-D/2-D tensors always use
/// [`DataLayout::Nchw`] (i.e. plain row-major storage).
///
/// ```
/// use mnn_tensor::{Tensor, Shape};
/// let zeros = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
/// assert_eq!(zeros.shape().num_elements(), 192);
/// assert!(zeros.data_f32().iter().all(|&v| v == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    layout: DataLayout,
    data: TensorData,
}

impl Tensor {
    /// Create an all-zero `f32` tensor in NCHW layout.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.num_elements();
        Tensor {
            shape,
            layout: DataLayout::Nchw,
            data: TensorData::F32(vec![0.0; n]),
        }
    }

    /// Create an `f32` tensor filled with `value` in NCHW layout.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.num_elements();
        Tensor {
            shape,
            layout: DataLayout::Nchw,
            data: TensorData::F32(vec![value; n]),
        }
    }

    /// Create an `f32` tensor from a flat row-major (NCHW) buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.num_elements()`. Use [`Tensor::try_from_vec`]
    /// for a fallible variant.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        Self::try_from_vec(shape, data).expect("buffer length must match shape")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length does not match
    /// the number of elements implied by the shape.
    pub fn try_from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            layout: DataLayout::Nchw,
            data: TensorData::F32(data),
        })
    }

    /// Create an `i8` tensor from a flat row-major buffer (used for quantized weights).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length does not match
    /// the shape.
    pub fn try_from_i8(shape: Shape, data: Vec<i8>) -> Result<Self, TensorError> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            layout: DataLayout::Nchw,
            data: TensorData::I8(data),
        })
    }

    /// Create an `i32` tensor from a flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length does not match
    /// the shape.
    pub fn try_from_i32(shape: Shape, data: Vec<i32>) -> Result<Self, TensorError> {
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            layout: DataLayout::Nchw,
            data: TensorData::I32(data),
        })
    }

    /// Build a tensor from raw parts without validation beyond a length check.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal the
    /// physical element count of `shape` in `layout`.
    pub fn from_parts(
        shape: Shape,
        layout: DataLayout,
        data: TensorData,
    ) -> Result<Self, TensorError> {
        let expected = if shape.is_4d() {
            layout.physical_elements(&shape)
        } else {
            shape.num_elements()
        };
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            layout,
            data,
        })
    }

    /// The logical shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The physical memory layout of the buffer.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// The element data type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// The raw storage.
    pub fn data(&self) -> &TensorData {
        &self.data
    }

    /// Number of bytes occupied by the buffer.
    pub fn byte_size(&self) -> usize {
        self.data.len() * self.data_type().size_of()
    }

    /// Borrow the buffer as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32`; use [`Tensor::try_data_f32`] otherwise.
    pub fn data_f32(&self) -> &[f32] {
        self.try_data_f32().expect("tensor is not f32")
    }

    /// Mutably borrow the buffer as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32`.
    pub fn data_f32_mut(&mut self) -> &mut [f32] {
        match &mut self.data {
            TensorData::F32(v) => v,
            _ => panic!("tensor is not f32"),
        }
    }

    /// Borrow the buffer as `f32`, failing on type mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataTypeMismatch`] if the tensor is not `f32`.
    pub fn try_data_f32(&self) -> Result<&[f32], TensorError> {
        match &self.data {
            TensorData::F32(v) => Ok(v),
            other => Err(TensorError::DataTypeMismatch {
                expected: DataType::F32,
                actual: other.data_type(),
            }),
        }
    }

    /// Borrow the buffer as `i8`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataTypeMismatch`] if the tensor is not `i8`.
    pub fn try_data_i8(&self) -> Result<&[i8], TensorError> {
        match &self.data {
            TensorData::I8(v) => Ok(v),
            other => Err(TensorError::DataTypeMismatch {
                expected: DataType::I8,
                actual: other.data_type(),
            }),
        }
    }

    /// Borrow the buffer as `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataTypeMismatch`] if the tensor is not `i32`.
    pub fn try_data_i32(&self) -> Result<&[i32], TensorError> {
        match &self.data {
            TensorData::I32(v) => Ok(v),
            other => Err(TensorError::DataTypeMismatch {
                expected: DataType::I32,
                actual: other.data_type(),
            }),
        }
    }

    /// Consume the tensor and return the `f32` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32`.
    pub fn into_vec_f32(self) -> Vec<f32> {
        match self.data {
            TensorData::F32(v) => v,
            other => panic!("tensor is not f32 (found {})", other.data_type()),
        }
    }

    /// Element access for a 4-D `f32` tensor by logical `(n, c, h, w)` coordinates,
    /// regardless of physical layout.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D `f32` or the index is out of bounds.
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        assert!(self.shape.is_4d(), "at() requires a 4-D tensor");
        let (cc, hh, ww) = (
            self.shape.channels(),
            self.shape.height(),
            self.shape.width(),
        );
        let off = match self.layout {
            DataLayout::Nchw => crate::nchw_offset(n, c, h, w, cc, hh, ww),
            DataLayout::Nhwc => crate::nhwc_offset(n, c, h, w, cc, hh, ww),
            DataLayout::Nc4hw4 => crate::nc4hw4_offset(n, c, h, w, cc, hh, ww),
        };
        self.data_f32()[off]
    }

    /// Return a copy of this tensor converted to the requested physical layout.
    ///
    /// Non-4-D tensors are returned unchanged (their layout is always row-major).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `f32` (layout conversion is only defined for the
    /// float compute path).
    pub fn to_layout(&self, layout: DataLayout) -> Tensor {
        if !self.shape.is_4d() || layout == self.layout {
            return self.clone();
        }
        let converted = convert_layout_f32(self.data_f32(), &self.shape, self.layout, layout);
        Tensor {
            shape: self.shape.clone(),
            layout,
            data: TensorData::F32(converted),
        }
    }

    /// Reshape the tensor in place to a new logical shape with the same number of
    /// elements. Only valid for NCHW/row-major tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ, or
    /// [`TensorError::ShapeMismatch`] if the tensor is packed (NC4HW4).
    pub fn reshape(&mut self, shape: Shape) -> Result<(), TensorError> {
        if self.layout == DataLayout::Nc4hw4 {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: shape,
            });
        }
        if shape.num_elements() != self.shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: self.shape.num_elements(),
                actual: shape.num_elements(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Maximum absolute element-wise difference between two `f32` tensors of the same
    /// logical shape (layouts may differ). Useful for numerical comparisons in tests.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or either tensor is not `f32`.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        let a = self.to_layout(DataLayout::Nchw);
        let b = other.to_layout(DataLayout::Nchw);
        a.data_f32()
            .iter()
            .zip(b.data_f32())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor<{}>{} ({})",
            self.data_type(),
            self.shape,
            self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        assert!(z.data_f32().iter().all(|&v| v == 0.0));
        let f = Tensor::full(Shape::vector(5), 3.5);
        assert!(f.data_f32().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::try_from_vec(Shape::vector(3), vec![1.0, 2.0]).is_err());
        assert!(Tensor::try_from_vec(Shape::vector(2), vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn typed_accessors_enforce_type() {
        let t = Tensor::zeros(Shape::vector(4));
        assert!(t.try_data_f32().is_ok());
        assert!(t.try_data_i8().is_err());
        assert!(t.try_data_i32().is_err());
    }

    #[test]
    fn at_reads_logical_coordinates_in_any_layout() {
        let shape = Shape::nchw(1, 3, 2, 2);
        let data: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let t = Tensor::from_vec(shape, data);
        let packed = t.to_layout(DataLayout::Nc4hw4);
        let nhwc = t.to_layout(DataLayout::Nhwc);
        for c in 0..3 {
            for h in 0..2 {
                for w in 0..2 {
                    assert_eq!(t.at(0, c, h, w), packed.at(0, c, h, w));
                    assert_eq!(t.at(0, c, h, w), nhwc.at(0, c, h, w));
                }
            }
        }
    }

    #[test]
    fn reshape_preserves_elements() {
        let mut t = Tensor::from_vec(Shape::matrix(2, 6), (0..12).map(|v| v as f32).collect());
        t.reshape(Shape::nchw(1, 3, 2, 2)).unwrap();
        assert_eq!(t.shape(), &Shape::nchw(1, 3, 2, 2));
        assert!(t.reshape(Shape::vector(5)).is_err());
    }

    #[test]
    fn reshape_rejects_packed_layout() {
        let t = Tensor::from_vec(Shape::nchw(1, 3, 2, 2), (0..12).map(|v| v as f32).collect());
        let mut packed = t.to_layout(DataLayout::Nc4hw4);
        assert!(packed.reshape(Shape::vector(12)).is_err());
    }

    #[test]
    fn byte_size_counts_padding() {
        let t = Tensor::from_vec(Shape::nchw(1, 3, 2, 2), vec![0.0; 12]);
        assert_eq!(t.byte_size(), 48);
        let packed = t.to_layout(DataLayout::Nc4hw4);
        assert_eq!(packed.byte_size(), 64);
    }

    #[test]
    fn max_abs_diff_across_layouts() {
        let a = Tensor::from_vec(Shape::nchw(1, 3, 2, 2), (0..12).map(|v| v as f32).collect());
        let b = a.to_layout(DataLayout::Nc4hw4);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn display_mentions_type_shape_layout() {
        let t = Tensor::zeros(Shape::nchw(1, 1, 1, 1));
        let s = t.to_string();
        assert!(s.contains("f32"));
        assert!(s.contains("NCHW"));
    }

    #[test]
    fn from_parts_checks_physical_size() {
        let shape = Shape::nchw(1, 3, 1, 1);
        // NC4HW4 physical size is 4, not 3.
        assert!(Tensor::from_parts(
            shape.clone(),
            DataLayout::Nc4hw4,
            TensorData::F32(vec![0.0; 3])
        )
        .is_err());
        assert!(
            Tensor::from_parts(shape, DataLayout::Nc4hw4, TensorData::F32(vec![0.0; 4])).is_ok()
        );
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(Shape::nchw(1, 2, 2, 2), (0..8).map(|v| v as f32).collect());
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    proptest! {
        #[test]
        fn prop_layout_roundtrip_via_tensor(
            n in 1usize..3, c in 1usize..9, h in 1usize..5, w in 1usize..5
        ) {
            let shape = Shape::nchw(n, c, h, w);
            let data: Vec<f32> = (0..shape.num_elements()).map(|v| v as f32).collect();
            let t = Tensor::from_vec(shape, data);
            for layout in [DataLayout::Nhwc, DataLayout::Nc4hw4] {
                let converted = t.to_layout(layout);
                let back = converted.to_layout(DataLayout::Nchw);
                prop_assert_eq!(t.data_f32(), back.data_f32());
            }
        }
    }
}
