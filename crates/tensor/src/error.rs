//! Error type for tensor operations.

use crate::{DataLayout, DataType, Shape};
use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided buffer length does not match the number of elements implied by the shape.
    LengthMismatch {
        /// Number of elements expected from the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// The tensor's data type does not match the requested operation.
    DataTypeMismatch {
        /// Data type expected by the operation.
        expected: DataType,
        /// Data type actually present in the tensor.
        actual: DataType,
    },
    /// The tensor's shape is incompatible with the requested operation.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Shape,
        /// Shape actually present.
        actual: Shape,
    },
    /// The requested operation needs a 4-D (N, C, H, W) tensor.
    NotFourDimensional(Shape),
    /// The tensor's physical layout does not match the requested operation.
    LayoutMismatch {
        /// Layout expected by the operation.
        expected: DataLayout,
        /// Layout actually present.
        actual: DataLayout,
    },
    /// Batch stacking was given no tensors.
    EmptyBatch,
    /// A rank-0 tensor has no leading dimension to stack or split along.
    NotBatchable(Shape),
    /// Batch splitting cannot divide the leading dimension evenly.
    IndivisibleBatch {
        /// Leading (batch) dimension of the tensor.
        batch: usize,
        /// Requested number of parts.
        parts: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
            TensorError::DataTypeMismatch { expected, actual } => {
                write!(f, "expected data type {expected}, found {actual}")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "expected shape {expected}, found {actual}")
            }
            TensorError::NotFourDimensional(shape) => {
                write!(f, "operation requires a 4-D tensor, found shape {shape}")
            }
            TensorError::LayoutMismatch { expected, actual } => {
                write!(f, "expected layout {expected}, found {actual}")
            }
            TensorError::EmptyBatch => write!(f, "cannot stack an empty list of tensors"),
            TensorError::NotBatchable(shape) => write!(
                f,
                "shape {shape} has no leading dimension to stack or split along"
            ),
            TensorError::IndivisibleBatch { batch, parts } => write!(
                f,
                "batch dimension {batch} cannot be split into {parts} equal parts"
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let err = TensorError::LengthMismatch {
            expected: 12,
            actual: 10,
        };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("10"));

        let err = TensorError::DataTypeMismatch {
            expected: DataType::F32,
            actual: DataType::I8,
        };
        assert!(err.to_string().contains("f32"));
        assert!(err.to_string().contains("i8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
