//! Ergonomic graph construction.

use crate::ops::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Op, PoolAttrs, SoftmaxAttrs,
};
use crate::{Graph, TensorId};
use mnn_tensor::{Shape, Tensor};

/// Builder for [`Graph`]s, used by the model zoo and by tests.
///
/// The builder tracks value slots by [`TensorId`]; each layer method appends a node
/// and returns the id of its output slot. Constant slots (weights) are created with
/// [`GraphBuilder::constant`] / [`GraphBuilder::constant_random`].
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    /// Deterministic pseudo-random state for `constant_random` (xorshift).
    rng_state: u64,
}

impl GraphBuilder {
    /// Start building a graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    /// Declare a graph input with a fixed shape (the common mobile-inference case the
    /// paper's pre-inference mechanism exploits).
    pub fn input(&mut self, name: &str, shape: Shape) -> TensorId {
        let id = self.graph.add_tensor(name, Some(shape));
        self.graph.mark_input(id);
        id
    }

    /// Add a constant slot holding `data`.
    pub fn constant(&mut self, name: &str, data: Tensor) -> TensorId {
        self.graph.add_constant(name, data)
    }

    /// Add a constant filled with small deterministic pseudo-random values in
    /// `[-magnitude, magnitude]` — used to give zoo models synthetic weights.
    pub fn constant_random(&mut self, name: &str, shape: Shape, magnitude: f32) -> TensorId {
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            // xorshift64*
            self.rng_state ^= self.rng_state >> 12;
            self.rng_state ^= self.rng_state << 25;
            self.rng_state ^= self.rng_state >> 27;
            let r = (self.rng_state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32
                / (1u64 << 24) as f32;
            data.push((r * 2.0 - 1.0) * magnitude);
        }
        self.constant(name, Tensor::from_vec(shape, data))
    }

    /// Add a constant filled with `value`.
    pub fn constant_filled(&mut self, name: &str, shape: Shape, value: f32) -> TensorId {
        self.constant(name, Tensor::full(shape, value))
    }

    /// Append a 2-D convolution node.
    pub fn conv2d(
        &mut self,
        name: &str,
        input: TensorId,
        weight: TensorId,
        bias: Option<TensorId>,
        mut attrs: Conv2dAttrs,
    ) -> TensorId {
        attrs.has_bias = bias.is_some();
        let mut inputs = vec![input, weight];
        if let Some(b) = bias {
            inputs.push(b);
        }
        self.graph.add_node(name, Op::Conv2d(attrs), inputs).1
    }

    /// Convenience: convolution with weights (and optional bias) generated on the fly.
    pub fn conv2d_auto(
        &mut self,
        name: &str,
        input: TensorId,
        attrs: Conv2dAttrs,
        with_bias: bool,
    ) -> TensorId {
        let weight_shape = Shape::new(vec![
            attrs.out_channels,
            attrs.in_channels / attrs.groups,
            attrs.kernel.0,
            attrs.kernel.1,
        ]);
        let fan_in = (attrs.in_channels / attrs.groups) * attrs.kernel.0 * attrs.kernel.1;
        let magnitude = (2.0 / fan_in as f32).sqrt();
        let weight = self.constant_random(&format!("{name}.weight"), weight_shape, magnitude);
        let bias = if with_bias {
            Some(self.constant_filled(
                &format!("{name}.bias"),
                Shape::vector(attrs.out_channels),
                0.01,
            ))
        } else {
            None
        };
        self.conv2d(name, input, weight, bias, attrs)
    }

    /// Append a pooling node.
    pub fn pool(&mut self, name: &str, input: TensorId, attrs: PoolAttrs) -> TensorId {
        self.graph.add_node(name, Op::Pool(attrs), vec![input]).1
    }

    /// Append a stand-alone activation node.
    pub fn activation(&mut self, name: &str, input: TensorId, kind: ActivationKind) -> TensorId {
        self.graph
            .add_node(name, Op::Activation(kind), vec![input])
            .1
    }

    /// Append a binary element-wise node.
    pub fn binary(&mut self, name: &str, a: TensorId, b: TensorId, kind: BinaryKind) -> TensorId {
        self.graph.add_node(name, Op::Binary(kind), vec![a, b]).1
    }

    /// Append a channel-concatenation node.
    pub fn concat(&mut self, name: &str, inputs: Vec<TensorId>) -> TensorId {
        self.graph.add_node(name, Op::Concat, inputs).1
    }

    /// Append an inference-mode batch-normalization node with synthetic statistics.
    pub fn batch_norm_auto(&mut self, name: &str, input: TensorId, channels: usize) -> TensorId {
        let mean = self.constant_random(&format!("{name}.mean"), Shape::vector(channels), 0.1);
        let var = self.constant_filled(&format!("{name}.var"), Shape::vector(channels), 1.0);
        let gamma = self.constant_filled(&format!("{name}.gamma"), Shape::vector(channels), 1.0);
        let beta = self.constant_random(&format!("{name}.beta"), Shape::vector(channels), 0.05);
        self.graph
            .add_node(
                name,
                Op::BatchNorm { epsilon: 1e-5 },
                vec![input, mean, var, gamma, beta],
            )
            .1
    }

    /// Append a fully-connected node.
    pub fn fully_connected(
        &mut self,
        name: &str,
        input: TensorId,
        weight: TensorId,
        bias: Option<TensorId>,
        in_features: usize,
        out_features: usize,
    ) -> TensorId {
        let mut inputs = vec![input, weight];
        if let Some(b) = bias {
            inputs.push(b);
        }
        self.graph
            .add_node(
                name,
                Op::FullyConnected {
                    in_features,
                    out_features,
                    has_bias: bias.is_some(),
                },
                inputs,
            )
            .1
    }

    /// Convenience: fully-connected layer with generated weights.
    pub fn fully_connected_auto(
        &mut self,
        name: &str,
        input: TensorId,
        in_features: usize,
        out_features: usize,
    ) -> TensorId {
        let magnitude = (2.0 / in_features as f32).sqrt();
        let weight = self.constant_random(
            &format!("{name}.weight"),
            Shape::matrix(out_features, in_features),
            magnitude,
        );
        let bias = self.constant_filled(&format!("{name}.bias"), Shape::vector(out_features), 0.01);
        self.fully_connected(name, input, weight, Some(bias), in_features, out_features)
    }

    /// Append a softmax node.
    pub fn softmax(&mut self, name: &str, input: TensorId) -> TensorId {
        self.graph
            .add_node(name, Op::Softmax(SoftmaxAttrs { axis: 1 }), vec![input])
            .1
    }

    /// Append a flatten node.
    pub fn flatten(&mut self, name: &str, input: TensorId, attrs: FlattenAttrs) -> TensorId {
        self.graph.add_node(name, Op::Flatten(attrs), vec![input]).1
    }

    /// Append a reshape node.
    pub fn reshape(&mut self, name: &str, input: TensorId, shape: Vec<usize>) -> TensorId {
        self.graph
            .add_node(name, Op::Reshape { shape }, vec![input])
            .1
    }

    /// Finish the graph, marking `outputs` as its outputs.
    pub fn build(mut self, outputs: Vec<TensorId>) -> Graph {
        for out in outputs {
            self.graph.mark_output(out);
        }
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_graph() {
        let mut b = GraphBuilder::new("demo");
        let x = b.input("x", Shape::nchw(1, 3, 16, 16));
        let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
        let y = b.activation("relu1", y, ActivationKind::Relu);
        let y = b.pool("pool1", y, PoolAttrs::max(2, 2));
        let y = b.flatten("flat", y, FlattenAttrs { start_axis: 1 });
        let y = b.fully_connected_auto("fc", y, 8 * 8 * 8, 10);
        let y = b.softmax("prob", y);
        let mut g = b.build(vec![y]);
        g.validate().unwrap();
        g.infer_shapes().unwrap();
        assert_eq!(g.outputs().len(), 1);
        assert!(g.parameter_count() > 0);
    }

    #[test]
    fn constant_random_is_deterministic_per_builder() {
        let mut b1 = GraphBuilder::new("a");
        let mut b2 = GraphBuilder::new("b");
        let t1 = b1.constant_random("w", Shape::vector(16), 1.0);
        let t2 = b2.constant_random("w", Shape::vector(16), 1.0);
        let g1 = b1.build(vec![]);
        let g2 = b2.build(vec![]);
        assert_eq!(
            g1.constant(t1).unwrap().data_f32(),
            g2.constant(t2).unwrap().data_f32()
        );
    }

    #[test]
    fn constant_random_values_bounded_by_magnitude() {
        let mut b = GraphBuilder::new("a");
        let t = b.constant_random("w", Shape::vector(256), 0.5);
        let g = b.build(vec![]);
        assert!(g
            .constant(t)
            .unwrap()
            .data_f32()
            .iter()
            .all(|v| v.abs() <= 0.5));
        // and not all identical
        let data = g.constant(t).unwrap().data_f32();
        assert!(data.iter().any(|&v| (v - data[0]).abs() > 1e-6));
    }

    #[test]
    fn conv2d_auto_creates_weight_with_group_aware_shape() {
        let mut b = GraphBuilder::new("a");
        let x = b.input("x", Shape::nchw(1, 8, 8, 8));
        let y = b.conv2d_auto("dw", x, Conv2dAttrs::depthwise_3x3(8, 1), false);
        let g = b.build(vec![y]);
        let conv = &g.nodes()[0];
        let w = g.constant(conv.inputs[1]).unwrap();
        assert_eq!(w.shape().dims(), &[8, 1, 3, 3]);
    }

    #[test]
    fn batch_norm_auto_wires_five_inputs() {
        let mut b = GraphBuilder::new("a");
        let x = b.input("x", Shape::nchw(1, 4, 4, 4));
        let y = b.batch_norm_auto("bn", x, 4);
        let g = b.build(vec![y]);
        assert_eq!(g.nodes()[0].inputs.len(), 5);
        g.validate().unwrap();
    }
}
