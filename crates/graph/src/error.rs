//! Error type for graph construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by graph validation, shape inference and lookup operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node references a tensor id that does not exist in the graph.
    UnknownTensor(usize),
    /// A node id lookup failed.
    UnknownNode(usize),
    /// The graph contains a cycle and cannot be topologically ordered.
    Cycle,
    /// A node received the wrong number of inputs.
    ArityMismatch {
        /// Name of the offending node.
        node: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// Shape inference failed for a node.
    ShapeInference {
        /// Name of the offending node.
        node: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A required constant (weight) tensor is missing.
    MissingWeight(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTensor(id) => write!(f, "unknown tensor id {id}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node '{node}' expects {expected} inputs, received {actual}"
            ),
            GraphError::ShapeInference { node, reason } => {
                write!(f, "shape inference failed at node '{node}': {reason}")
            }
            GraphError::MissingWeight(name) => write!(f, "missing weight tensor '{name}'"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_identifiers() {
        assert!(GraphError::UnknownTensor(7).to_string().contains('7'));
        assert!(GraphError::MissingWeight("w0".into())
            .to_string()
            .contains("w0"));
        let e = GraphError::ArityMismatch {
            node: "conv1".into(),
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<GraphError>();
    }
}
