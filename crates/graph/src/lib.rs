//! Computational-graph intermediate representation for the MNN-rs inference engine.
//!
//! Models imported by the converter and executed by `mnn-core` are expressed as a
//! [`Graph`]: a set of value slots ([`TensorId`]) produced/consumed by [`Node`]s, each
//! carrying an operator description ([`Op`]). The crate also provides:
//!
//! * [`GraphBuilder`] — an ergonomic way to construct graphs (used by the model zoo),
//! * shape inference ([`Graph::infer_shapes`]) — required by pre-inference, which
//!   needs every intermediate extent before the first real inference runs,
//! * topological ordering and structural validation.
//!
//! # Example
//!
//! ```
//! use mnn_graph::{GraphBuilder, Conv2dAttrs, ActivationKind};
//! use mnn_tensor::Shape;
//!
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("data", Shape::nchw(1, 3, 32, 32));
//! let w = b.constant_random("conv_w", Shape::new(vec![8, 3, 3, 3]), 0.1);
//! let conv = b.conv2d("conv", x, w, None, Conv2dAttrs::same_3x3(3, 8));
//! let out = b.activation("relu", conv, ActivationKind::Relu);
//! let graph = b.build(vec![out]);
//! assert_eq!(graph.nodes().len(), 2); // constants are not nodes
//! ```

#![deny(missing_docs)]

mod builder;
mod error;
mod graph;
mod ops;
mod shape_infer;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, Node, NodeId, TensorId, TensorInfo};
pub use ops::{
    ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, Op, PadKind, PoolAttrs, PoolKind,
    QuantAttrs, SoftmaxAttrs,
};
