//! Operator descriptions carried by graph nodes.

use mnn_kernels::conv::{ConvParams, PadMode};
use mnn_kernels::pool::{PoolMode, PoolParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Padding policy (serializable mirror of [`mnn_kernels::conv::PadMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PadKind {
    /// Explicit symmetric padding.
    #[default]
    Explicit,
    /// TensorFlow-style `SAME` padding.
    Same,
    /// No padding.
    Valid,
}

impl From<PadKind> for PadMode {
    fn from(value: PadKind) -> Self {
        match value {
            PadKind::Explicit => PadMode::Explicit,
            PadKind::Same => PadMode::Same,
            PadKind::Valid => PadMode::Valid,
        }
    }
}

/// Activation functions available as graph operators (and as fused epilogues).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ActivationKind {
    /// Identity (no activation).
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6.
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActivationKind {
    /// Convert to the kernel-level activation descriptor.
    pub fn to_kernel(self) -> mnn_kernels::activation::Activation {
        use mnn_kernels::activation::Activation;
        match self {
            ActivationKind::None => Activation::None,
            ActivationKind::Relu => Activation::Relu,
            ActivationKind::Relu6 => Activation::Relu6,
            ActivationKind::Sigmoid => Activation::Sigmoid,
            ActivationKind::Tanh => Activation::Tanh,
        }
    }
}

/// Binary element-wise operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryKind {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise maximum.
    Max,
}

impl BinaryKind {
    /// Convert to the kernel-level binary operator.
    pub fn to_kernel(self) -> mnn_kernels::elementwise::BinaryOp {
        use mnn_kernels::elementwise::BinaryOp;
        match self {
            BinaryKind::Add => BinaryOp::Add,
            BinaryKind::Sub => BinaryOp::Sub,
            BinaryKind::Mul => BinaryOp::Mul,
            BinaryKind::Max => BinaryOp::Max,
        }
    }
}

/// 2-D convolution attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dAttrs {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel size `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Explicit padding `(ph, pw)`.
    pub pad: (usize, usize),
    /// Dilation `(dh, dw)`.
    pub dilation: (usize, usize),
    /// Group count (`in_channels` for a depthwise convolution).
    pub groups: usize,
    /// Padding policy.
    pub pad_kind: PadKind,
    /// Whether the node consumes a bias tensor.
    pub has_bias: bool,
}

impl Conv2dAttrs {
    /// A 3×3, stride-1 convolution with `SAME`-style explicit padding of 1.
    pub fn same_3x3(in_channels: usize, out_channels: usize) -> Self {
        Conv2dAttrs {
            in_channels,
            out_channels,
            kernel: (3, 3),
            stride: (1, 1),
            pad: (1, 1),
            dilation: (1, 1),
            groups: 1,
            pad_kind: PadKind::Explicit,
            has_bias: false,
        }
    }

    /// A 1×1 pointwise convolution.
    pub fn pointwise(in_channels: usize, out_channels: usize) -> Self {
        Conv2dAttrs {
            kernel: (1, 1),
            pad: (0, 0),
            ..Conv2dAttrs::same_3x3(in_channels, out_channels)
        }
    }

    /// A general square-kernel convolution.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Conv2dAttrs {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            pad: (pad, pad),
            ..Conv2dAttrs::same_3x3(in_channels, out_channels)
        }
    }

    /// Depthwise 3×3 convolution with the given stride.
    pub fn depthwise_3x3(channels: usize, stride: usize) -> Self {
        Conv2dAttrs {
            groups: channels,
            stride: (stride, stride),
            ..Conv2dAttrs::same_3x3(channels, channels)
        }
    }

    /// Rectangular kernel (e.g. Inception-v3's 1×7 / 7×1 convolutions).
    pub fn rect(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        pad: (usize, usize),
    ) -> Self {
        Conv2dAttrs {
            kernel,
            pad,
            ..Conv2dAttrs::same_3x3(in_channels, out_channels)
        }
    }

    /// Mark the convolution as consuming a bias input (builder style).
    pub fn with_bias(mut self) -> Self {
        self.has_bias = true;
        self
    }

    /// Convert to the kernel-level parameter struct.
    pub fn to_conv_params(&self) -> ConvParams {
        ConvParams {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel_h: self.kernel.0,
            kernel_w: self.kernel.1,
            stride_h: self.stride.0,
            stride_w: self.stride.1,
            pad_h: self.pad.0,
            pad_w: self.pad.1,
            dilation_h: self.dilation.0,
            dilation_w: self.dilation.1,
            groups: self.groups,
            pad_mode: self.pad_kind.into(),
            has_bias: self.has_bias,
        }
    }
}

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Pooling attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolAttrs {
    /// Pooling mode.
    pub kind: PoolKind,
    /// Window size `(kh, kw)`; ignored when `global` is set.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding `(ph, pw)`.
    pub pad: (usize, usize),
    /// Global pooling over the whole spatial extent.
    pub global: bool,
}

impl PoolAttrs {
    /// Max pooling with a square window and stride equal to the window size.
    pub fn max(kernel: usize, stride: usize) -> Self {
        PoolAttrs {
            kind: PoolKind::Max,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            pad: (0, 0),
            global: false,
        }
    }

    /// Average pooling with a square window.
    pub fn avg(kernel: usize, stride: usize) -> Self {
        PoolAttrs {
            kind: PoolKind::Avg,
            ..PoolAttrs::max(kernel, stride)
        }
    }

    /// Global average pooling.
    pub fn global_avg() -> Self {
        PoolAttrs {
            kind: PoolKind::Avg,
            global: true,
            ..PoolAttrs::max(1, 1)
        }
    }

    /// Builder-style padding override.
    pub fn with_pad(mut self, pad: usize) -> Self {
        self.pad = (pad, pad);
        self
    }

    /// Convert to the kernel-level parameter struct.
    pub fn to_pool_params(&self) -> PoolParams {
        PoolParams {
            mode: match self.kind {
                PoolKind::Max => PoolMode::Max,
                PoolKind::Avg => PoolMode::Avg,
            },
            kernel_h: self.kernel.0,
            kernel_w: self.kernel.1,
            stride_h: self.stride.0,
            stride_w: self.stride.1,
            pad_h: self.pad.0,
            pad_w: self.pad.1,
            global: self.global,
        }
    }
}

/// Softmax attributes (axis length is resolved during shape inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct SoftmaxAttrs {
    /// Axis to normalize over; only the last axis (`-1`, stored as `usize::MAX`) and
    /// the channel axis (1) are used by the zoo models.
    pub axis: usize,
}

/// Flatten attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct FlattenAttrs {
    /// First axis that gets flattened into the trailing dimension (1 keeps batch).
    pub start_axis: usize,
}

/// Per-output-channel symmetric int8 quantization attributes carried by the
/// quantized operator variants.
///
/// The weight constant referenced by the node is stored as `DataType::I8`; each
/// output channel `o` dequantizes as `w_f32 = weight_scales[o] * w_i8`.
/// Activations are quantized on the fly at run time (per sample, so batched and
/// unbatched runs stay bit-identical) and the output is produced in `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantAttrs {
    /// One scale per output channel (convolution) or output feature
    /// (fully-connected) mapping int8 weights back to `f32`.
    pub weight_scales: Vec<f32>,
}

/// A graph operator.
///
/// Tensor operands (weights, biases) are separate graph inputs referenced by the
/// node's `inputs` list, so the enum only stores hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// 2-D convolution; inputs: `[data, weight]` or `[data, weight, bias]`.
    Conv2d(Conv2dAttrs),
    /// Convolution with a fused activation epilogue (produced by the graph optimizer).
    Conv2dFused {
        /// Convolution attributes.
        attrs: Conv2dAttrs,
        /// Fused activation applied to the convolution output.
        activation: ActivationKind,
    },
    /// Spatial pooling; inputs: `[data]`.
    Pool(PoolAttrs),
    /// Stand-alone activation; inputs: `[data]`.
    Activation(ActivationKind),
    /// Binary element-wise operator; inputs: `[a, b]`.
    Binary(BinaryKind),
    /// Channel concatenation; inputs: `[a, b, ...]`.
    Concat,
    /// Inference-mode batch normalization; inputs: `[data, mean, var, gamma, beta]`.
    BatchNorm {
        /// Stabilizing epsilon.
        epsilon: f32,
    },
    /// Per-channel affine transform; inputs: `[data, scale, shift]`.
    Scale,
    /// Fully-connected layer; inputs: `[data, weight]` or `[data, weight, bias]`.
    FullyConnected {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
        /// Whether a bias input is present.
        has_bias: bool,
    },
    /// Convolution over int8 weights (produced by the model compressor); inputs
    /// like [`Op::Conv2d`] but the weight constant is `i8` with per-output-channel
    /// scales. Carries an optional fused activation epilogue so quantization
    /// composes with the optimizer's Conv+Activation fusion.
    Conv2dQuantized {
        /// Convolution attributes.
        attrs: Conv2dAttrs,
        /// Fused activation applied to the (f32) convolution output.
        activation: ActivationKind,
        /// Weight quantization parameters.
        quant: QuantAttrs,
    },
    /// Fully-connected layer over int8 weights; inputs like [`Op::FullyConnected`].
    FullyConnectedQuantized {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
        /// Whether a bias input is present (bias stays `f32`).
        has_bias: bool,
        /// Weight quantization parameters.
        quant: QuantAttrs,
    },
    /// Softmax; inputs: `[data]`.
    Softmax(SoftmaxAttrs),
    /// Flatten trailing axes; inputs: `[data]`.
    Flatten(FlattenAttrs),
    /// Reshape to an explicit shape; inputs: `[data]`.
    Reshape {
        /// Target dimensions (must preserve the element count).
        shape: Vec<usize>,
    },
}

impl Op {
    /// Short operator name used in debug output and statistics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Conv2d(_) => "Conv2d",
            Op::Conv2dFused { .. } => "Conv2dFused",
            Op::Pool(_) => "Pool",
            Op::Activation(_) => "Activation",
            Op::Binary(_) => "Binary",
            Op::Concat => "Concat",
            Op::BatchNorm { .. } => "BatchNorm",
            Op::Scale => "Scale",
            Op::FullyConnected { .. } => "FullyConnected",
            Op::Conv2dQuantized { .. } => "Conv2dQuantized",
            Op::FullyConnectedQuantized { .. } => "FullyConnectedQuantized",
            Op::Softmax(_) => "Softmax",
            Op::Flatten(_) => "Flatten",
            Op::Reshape { .. } => "Reshape",
        }
    }

    /// Whether this operator is a (possibly fused or quantized) convolution.
    pub fn is_conv(&self) -> bool {
        matches!(
            self,
            Op::Conv2d(_) | Op::Conv2dFused { .. } | Op::Conv2dQuantized { .. }
        )
    }

    /// Convolution attributes, when this is a convolution.
    pub fn conv_attrs(&self) -> Option<&Conv2dAttrs> {
        match self {
            Op::Conv2d(attrs) => Some(attrs),
            Op::Conv2dFused { attrs, .. } => Some(attrs),
            Op::Conv2dQuantized { attrs, .. } => Some(attrs),
            _ => None,
        }
    }

    /// Whether this operator computes over int8-quantized weights.
    pub fn is_quantized(&self) -> bool {
        matches!(
            self,
            Op::Conv2dQuantized { .. } | Op::FullyConnectedQuantized { .. }
        )
    }

    /// The per-output-channel quantization attributes, for quantized operators.
    pub fn quant_attrs(&self) -> Option<&QuantAttrs> {
        match self {
            Op::Conv2dQuantized { quant, .. } => Some(quant),
            Op::FullyConnectedQuantized { quant, .. } => Some(quant),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_attrs_convert_to_kernel_params() {
        let attrs = Conv2dAttrs::square(16, 32, 3, 2, 1).with_bias();
        let p = attrs.to_conv_params();
        assert_eq!(p.in_channels, 16);
        assert_eq!(p.out_channels, 32);
        assert_eq!((p.kernel_h, p.kernel_w), (3, 3));
        assert_eq!((p.stride_h, p.stride_w), (2, 2));
        assert!(p.has_bias);
    }

    #[test]
    fn depthwise_attrs_set_groups() {
        let attrs = Conv2dAttrs::depthwise_3x3(64, 2);
        assert_eq!(attrs.groups, 64);
        assert!(attrs.to_conv_params().is_depthwise());
    }

    #[test]
    fn rect_kernel_for_inception_factorized_conv() {
        let attrs = Conv2dAttrs::rect(128, 128, (1, 7), (0, 3));
        let p = attrs.to_conv_params();
        assert_eq!((p.kernel_h, p.kernel_w), (1, 7));
        assert_eq!((p.pad_h, p.pad_w), (0, 3));
    }

    #[test]
    fn pool_attrs_convert() {
        let p = PoolAttrs::max(3, 2).with_pad(1).to_pool_params();
        assert_eq!(p.kernel_h, 3);
        assert_eq!(p.stride_w, 2);
        assert_eq!(p.pad_h, 1);
        let g = PoolAttrs::global_avg().to_pool_params();
        assert!(g.global);
    }

    #[test]
    fn op_names_and_predicates() {
        let conv = Op::Conv2d(Conv2dAttrs::same_3x3(3, 8));
        assert_eq!(conv.name(), "Conv2d");
        assert!(conv.is_conv());
        assert!(conv.conv_attrs().is_some());
        assert!(!Op::Concat.is_conv());
        assert_eq!(Op::Concat.to_string(), "Concat");
    }

    #[test]
    fn ops_serialize_roundtrip() {
        let ops = vec![
            Op::Conv2d(Conv2dAttrs::pointwise(8, 16)),
            Op::Pool(PoolAttrs::global_avg()),
            Op::Activation(ActivationKind::Relu6),
            Op::Binary(BinaryKind::Add),
            Op::Softmax(SoftmaxAttrs { axis: 1 }),
            Op::Conv2dQuantized {
                attrs: Conv2dAttrs::same_3x3(8, 16),
                activation: ActivationKind::Relu,
                quant: QuantAttrs {
                    weight_scales: vec![0.5; 16],
                },
            },
            Op::FullyConnectedQuantized {
                in_features: 16,
                out_features: 4,
                has_bias: true,
                quant: QuantAttrs {
                    weight_scales: vec![0.25; 4],
                },
            },
        ];
        let json = serde_json::to_string(&ops).unwrap();
        let back: Vec<Op> = serde_json::from_str(&json).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn quantized_op_predicates() {
        let conv = Op::Conv2dQuantized {
            attrs: Conv2dAttrs::same_3x3(3, 8),
            activation: ActivationKind::None,
            quant: QuantAttrs {
                weight_scales: vec![1.0; 8],
            },
        };
        assert!(conv.is_conv());
        assert!(conv.is_quantized());
        assert_eq!(conv.name(), "Conv2dQuantized");
        assert_eq!(conv.conv_attrs().unwrap().out_channels, 8);
        assert_eq!(conv.quant_attrs().unwrap().weight_scales.len(), 8);
        assert!(!Op::Conv2d(Conv2dAttrs::same_3x3(3, 8)).is_quantized());
        assert!(Op::FullyConnectedQuantized {
            in_features: 4,
            out_features: 2,
            has_bias: false,
            quant: QuantAttrs {
                weight_scales: vec![1.0; 2],
            },
        }
        .is_quantized());
    }

    #[test]
    fn activation_kind_maps_to_kernel() {
        use mnn_kernels::activation::Activation;
        assert_eq!(ActivationKind::Relu.to_kernel(), Activation::Relu);
        assert_eq!(ActivationKind::None.to_kernel(), Activation::None);
    }
}
