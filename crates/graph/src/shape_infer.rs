//! Static shape inference.
//!
//! Pre-inference (paper Section 3.2) relies on the fact that input sizes are fixed:
//! once the graph input shapes are known, every intermediate extent — and therefore
//! every buffer size and every operator's arithmetic cost — can be derived before the
//! first real inference. This module performs that propagation.

use crate::{Graph, GraphError, Op};
use mnn_tensor::Shape;

impl Graph {
    /// Infer and record the shape of every value slot, walking nodes in topological
    /// order. Graph inputs and constants must already carry shapes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeInference`] when an input shape is missing or an
    /// operator receives an incompatible shape, and propagates ordering errors.
    pub fn infer_shapes(&mut self) -> Result<(), GraphError> {
        let order = self.topological_order()?;
        for node_id in order {
            let node = self.node(node_id)?.clone();
            let out_shape = self.infer_node_shape(&node)?;
            let out_id = node.outputs[0];
            self.tensor_info_mut(out_id)?.shape = Some(out_shape);
        }
        Ok(())
    }

    fn input_shape(&self, node_name: &str, id: crate::TensorId) -> Result<Shape, GraphError> {
        self.tensor_info(id)?
            .shape
            .clone()
            .ok_or_else(|| GraphError::ShapeInference {
                node: node_name.to_string(),
                reason: format!("input slot {id} has no shape"),
            })
    }

    fn infer_node_shape(&self, node: &crate::Node) -> Result<Shape, GraphError> {
        let err = |reason: String| GraphError::ShapeInference {
            node: node.name.clone(),
            reason,
        };
        match &node.op {
            Op::Conv2d(attrs)
            | Op::Conv2dFused { attrs, .. }
            | Op::Conv2dQuantized { attrs, .. } => {
                let input = self.input_shape(&node.name, node.inputs[0])?;
                if !input.is_4d() {
                    return Err(err(format!("convolution input must be 4-D, got {input}")));
                }
                if input.channels() != attrs.in_channels {
                    return Err(err(format!(
                        "expected {} input channels, got {}",
                        attrs.in_channels,
                        input.channels()
                    )));
                }
                let params = attrs.to_conv_params();
                let (oh, ow) = params.output_size(input.height(), input.width());
                Ok(Shape::nchw(input.batch(), attrs.out_channels, oh, ow))
            }
            Op::Pool(attrs) => {
                let input = self.input_shape(&node.name, node.inputs[0])?;
                if !input.is_4d() {
                    return Err(err(format!("pool input must be 4-D, got {input}")));
                }
                let params = attrs.to_pool_params();
                let (oh, ow) = params.output_size(input.height(), input.width());
                Ok(Shape::nchw(input.batch(), input.channels(), oh, ow))
            }
            Op::Activation(_) | Op::Softmax(_) => self.input_shape(&node.name, node.inputs[0]),
            Op::BatchNorm { .. } | Op::Scale => self.input_shape(&node.name, node.inputs[0]),
            Op::Binary(_) => {
                let a = self.input_shape(&node.name, node.inputs[0])?;
                let b = self.input_shape(&node.name, node.inputs[1])?;
                if a != b {
                    return Err(err(format!("binary operands differ: {a} vs {b}")));
                }
                Ok(a)
            }
            Op::Concat => {
                let first = self.input_shape(&node.name, node.inputs[0])?;
                if !first.is_4d() {
                    return Err(err("concat inputs must be 4-D".into()));
                }
                let mut channels = 0usize;
                for id in &node.inputs {
                    let s = self.input_shape(&node.name, *id)?;
                    if s.batch() != first.batch()
                        || s.height() != first.height()
                        || s.width() != first.width()
                    {
                        return Err(err(format!("concat input {s} incompatible with {first}")));
                    }
                    channels += s.channels();
                }
                Ok(Shape::nchw(
                    first.batch(),
                    channels,
                    first.height(),
                    first.width(),
                ))
            }
            Op::FullyConnected {
                in_features,
                out_features,
                ..
            }
            | Op::FullyConnectedQuantized {
                in_features,
                out_features,
                ..
            } => {
                let input = self.input_shape(&node.name, node.inputs[0])?;
                let batch = input.dims()[0];
                let flat: usize = input.dims()[1..].iter().product();
                if flat != *in_features {
                    return Err(err(format!(
                        "fully-connected expects {in_features} input features, got {flat}"
                    )));
                }
                Ok(Shape::matrix(batch, *out_features))
            }
            Op::Flatten(attrs) => {
                let input = self.input_shape(&node.name, node.inputs[0])?;
                let axis = attrs.start_axis.min(input.rank());
                let kept: Vec<usize> = input.dims()[..axis].to_vec();
                let flattened: usize = input.dims()[axis..].iter().product();
                let mut dims = kept;
                dims.push(flattened);
                Ok(Shape::new(dims))
            }
            Op::Reshape { shape } => {
                let input = self.input_shape(&node.name, node.inputs[0])?;
                let target = Shape::new(shape.clone());
                if target.num_elements() != input.num_elements() {
                    return Err(err(format!(
                        "reshape from {input} to {target} changes element count"
                    )));
                }
                Ok(target)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ActivationKind, Conv2dAttrs, FlattenAttrs, PoolAttrs};
    use crate::GraphBuilder;
    use mnn_tensor::Shape;

    #[test]
    fn infers_shapes_through_conv_pool_fc() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 3, 32, 32));
        let w = b.constant_random("w", Shape::new(vec![8, 3, 3, 3]), 0.1);
        let c = b.conv2d("conv", x, w, None, Conv2dAttrs::square(3, 8, 3, 2, 1));
        let p = b.pool("pool", c, PoolAttrs::max(2, 2));
        let f = b.flatten("flat", p, FlattenAttrs { start_axis: 1 });
        let fcw = b.constant_random("fcw", Shape::matrix(10, 8 * 8 * 8), 0.1);
        let y = b.fully_connected("fc", f, fcw, None, 8 * 8 * 8, 10);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();

        let conv_shape = g.tensor_info(c).unwrap().shape.clone().unwrap();
        assert_eq!(conv_shape, Shape::nchw(1, 8, 16, 16));
        let pool_shape = g.tensor_info(p).unwrap().shape.clone().unwrap();
        assert_eq!(pool_shape, Shape::nchw(1, 8, 8, 8));
        let out_shape = g.tensor_info(y).unwrap().shape.clone().unwrap();
        assert_eq!(out_shape, Shape::matrix(1, 10));
    }

    #[test]
    fn concat_adds_channels() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 4, 8, 8));
        let a = b.activation("a", x, ActivationKind::Relu);
        let c = b.activation("b", x, ActivationKind::Sigmoid);
        let cat = b.concat("cat", vec![a, c]);
        let mut g = b.build(vec![cat]);
        g.infer_shapes().unwrap();
        assert_eq!(
            g.tensor_info(cat).unwrap().shape.clone().unwrap(),
            Shape::nchw(1, 8, 8, 8)
        );
    }

    #[test]
    fn channel_mismatch_is_reported() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let w = b.constant_random("w", Shape::new(vec![8, 16, 3, 3]), 0.1);
        // attrs claim 16 input channels but the data has 3
        let y = b.conv2d("conv", x, w, None, Conv2dAttrs::same_3x3(16, 8));
        let mut g = b.build(vec![y]);
        let result = g.infer_shapes();
        assert!(matches!(result, Err(GraphError::ShapeInference { .. })));
    }

    #[test]
    fn binary_requires_matching_shapes() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.input("y", Shape::nchw(1, 3, 4, 4));
        let z = b.binary("add", x, y, crate::BinaryKind::Add);
        let mut g = b.build(vec![z]);
        assert!(g.infer_shapes().is_err());
    }

    #[test]
    fn reshape_preserves_element_count() {
        let mut b = GraphBuilder::new("net");
        let x = b.input("x", Shape::nchw(1, 3, 4, 4));
        let r = b.reshape("reshape", x, vec![1, 48]);
        let mut g = b.build(vec![r]);
        g.infer_shapes().unwrap();
        assert_eq!(
            g.tensor_info(r).unwrap().shape.clone().unwrap(),
            Shape::new(vec![1, 48])
        );

        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", Shape::nchw(1, 3, 4, 4));
        let r = b.reshape("reshape", x, vec![1, 49]);
        let mut g = b.build(vec![r]);
        assert!(g.infer_shapes().is_err());
    }
}
