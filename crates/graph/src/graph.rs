//! The computational graph data structure.

use crate::{GraphError, Op};
use mnn_tensor::{DataType, Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Identifier of a value slot (activation or constant) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorId(pub usize);

/// Identifier of a node (operator instance) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Metadata describing a value slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorInfo {
    /// Human-readable name.
    pub name: String,
    /// Logical shape, when known (graph inputs and constants always know theirs;
    /// intermediate slots are filled in by [`Graph::infer_shapes`]).
    pub shape: Option<Shape>,
    /// Whether the slot holds constant data (weights, biases, BN statistics).
    pub is_constant: bool,
    /// Element type of the slot. Activations are computed in `f32`; constants
    /// carry their stored type (`i8` for quantized weights), so byte-accurate
    /// size accounting — e.g. the memory planner's arena and the quantizer's
    /// compression report — can use 1-byte element sizes where they apply.
    pub dtype: DataType,
}

/// One operator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier (index into the graph's node list).
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// The operator and its hyper-parameters.
    pub op: Op,
    /// Consumed value slots, in operator-defined order.
    pub inputs: Vec<TensorId>,
    /// Produced value slots (always exactly one for the current operator set).
    pub outputs: Vec<TensorId>,
}

/// A dataflow graph of operators over value slots.
///
/// Constant payloads (weights, biases, statistics) are stored behind [`Arc`]s, so
/// cloning a `Graph` is cheap: the structural metadata is copied while the weight
/// data is shared. Sessions rely on this to keep a per-session copy of the graph
/// (whose input shapes they may change via `resize_input`) without duplicating
/// model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    tensors: Vec<TensorInfo>,
    /// Constant data, keyed by the slot index (BTreeMap keeps serialization stable).
    constants: BTreeMap<usize, Arc<Tensor>>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            tensors: Vec::new(),
            constants: BTreeMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All value-slot descriptors.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// Graph input slots (activations fed by the caller).
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// Graph output slots.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// The declared names of the graph inputs, in positional order.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|id| self.tensors[id.0].name.as_str())
            .collect()
    }

    /// The names of the graph outputs, in positional order.
    ///
    /// An output slot is named after the node that produces it (e.g. `"prob"`);
    /// slots without a producer fall back to their tensor name.
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs
            .iter()
            .map(|id| {
                self.producer(*id)
                    .map(|n| n.name.as_str())
                    .unwrap_or_else(|| self.tensors[id.0].name.as_str())
            })
            .collect()
    }

    /// Resolve a graph input by name.
    pub fn input_named(&self, name: &str) -> Option<TensorId> {
        self.inputs
            .iter()
            .copied()
            .find(|id| self.tensors[id.0].name == name)
    }

    /// Resolve a graph output by name — either the producing node's name or the
    /// output slot's tensor name.
    pub fn output_named(&self, name: &str) -> Option<TensorId> {
        self.outputs.iter().copied().find(|id| {
            self.tensors[id.0].name == name
                || self.producer(*id).map(|n| n.name.as_str()) == Some(name)
        })
    }

    /// Change the declared shape of a graph input (the first half of MNN's
    /// `resizeTensor`). Downstream shapes become stale until
    /// [`Graph::infer_shapes`] is re-run — sessions do this inside
    /// `resize_session`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTensor`] when `id` is not a graph input.
    pub fn set_input_shape(&mut self, id: TensorId, shape: Shape) -> Result<(), GraphError> {
        if !self.inputs.contains(&id) {
            return Err(GraphError::UnknownTensor(id.0));
        }
        self.tensor_info_mut(id)?.shape = Some(shape);
        Ok(())
    }

    /// Declare a non-constant value slot and return its id.
    pub fn add_tensor(&mut self, name: impl Into<String>, shape: Option<Shape>) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo {
            name: name.into(),
            shape,
            is_constant: false,
            dtype: DataType::F32,
        });
        id
    }

    /// Declare a constant value slot holding `data` and return its id.
    pub fn add_constant(&mut self, name: impl Into<String>, data: Tensor) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo {
            name: name.into(),
            shape: Some(data.shape().clone()),
            is_constant: true,
            dtype: data.data_type(),
        });
        self.constants.insert(id.0, Arc::new(data));
        id
    }

    /// Append a node consuming `inputs` and producing one fresh output slot.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: Vec<TensorId>,
    ) -> (NodeId, TensorId) {
        let name = name.into();
        let output = self.add_tensor(format!("{name}:out"), None);
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            outputs: vec![output],
        });
        (id, output)
    }

    /// Mark a slot as a graph input.
    pub fn mark_input(&mut self, id: TensorId) {
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
    }

    /// Mark a slot as a graph output.
    pub fn mark_output(&mut self, id: TensorId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Replace the node list (used by the graph optimizer when rewriting).
    ///
    /// Node ids are renumbered to match their position in the new list so that
    /// [`NodeId`]s handed out afterwards stay consistent with [`Graph::node`] and
    /// [`Graph::topological_order`].
    pub fn set_nodes(&mut self, nodes: Vec<Node>) {
        self.nodes = nodes;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.id = NodeId(i);
        }
    }

    /// Replace the graph outputs (used by the optimizer when rewiring).
    pub fn set_outputs(&mut self, outputs: Vec<TensorId>) {
        self.outputs = outputs;
    }

    /// Look up a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode(id.0))
    }

    /// Look up a value-slot descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTensor`] for an out-of-range id.
    pub fn tensor_info(&self, id: TensorId) -> Result<&TensorInfo, GraphError> {
        self.tensors
            .get(id.0)
            .ok_or(GraphError::UnknownTensor(id.0))
    }

    /// Mutable access to a value-slot descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTensor`] for an out-of-range id.
    pub fn tensor_info_mut(&mut self, id: TensorId) -> Result<&mut TensorInfo, GraphError> {
        self.tensors
            .get_mut(id.0)
            .ok_or(GraphError::UnknownTensor(id.0))
    }

    /// Constant data stored in a slot, if any.
    pub fn constant(&self, id: TensorId) -> Option<&Tensor> {
        self.constants.get(&id.0).map(Arc::as_ref)
    }

    /// Shared handle to the constant stored in a slot, if any. Executions capture
    /// constants through this so weight data is shared rather than copied.
    pub fn constant_arc(&self, id: TensorId) -> Option<Arc<Tensor>> {
        self.constants.get(&id.0).cloned()
    }

    /// Replace the constant stored in a slot (used by optimizer passes that fold
    /// weights and by the quantizer) and update the recorded shape and dtype.
    pub fn replace_constant(&mut self, id: TensorId, data: Tensor) {
        if let Some(info) = self.tensors.get_mut(id.0) {
            info.shape = Some(data.shape().clone());
            info.is_constant = true;
            info.dtype = data.data_type();
        }
        self.constants.insert(id.0, Arc::new(data));
    }

    /// The node that produces `id`, if any (constants and graph inputs have none).
    pub fn producer(&self, id: TensorId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.outputs.contains(&id))
    }

    /// All nodes that consume `id`.
    pub fn consumers(&self, id: TensorId) -> Vec<&Node> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .collect()
    }

    /// Topological order of the nodes (Kahn's algorithm over tensor dependencies).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is cyclic and
    /// [`GraphError::UnknownTensor`] if a node references a missing slot.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        // producer map: tensor -> node index
        let mut producer: HashMap<usize, usize> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for out in &node.outputs {
                if out.0 >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor(out.0));
                }
                producer.insert(out.0, i);
            }
        }
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                if input.0 >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor(input.0));
                }
                if let Some(&p) = producer.get(&input.0) {
                    indegree[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
        let mut queue: VecDeque<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i));
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Structural validation: every referenced slot exists, every non-constant,
    /// non-input slot has a producer, arity constraints hold.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), GraphError> {
        for node in &self.nodes {
            let expected = match &node.op {
                Op::Conv2d(a)
                | Op::Conv2dFused { attrs: a, .. }
                | Op::Conv2dQuantized { attrs: a, .. } => {
                    if a.has_bias {
                        3
                    } else {
                        2
                    }
                }
                Op::Pool(_)
                | Op::Activation(_)
                | Op::Softmax(_)
                | Op::Flatten(_)
                | Op::Reshape { .. } => 1,
                Op::Binary(_) => 2,
                Op::Concat => node.inputs.len().max(1),
                Op::BatchNorm { .. } => 5,
                Op::Scale => 3,
                Op::FullyConnected { has_bias, .. }
                | Op::FullyConnectedQuantized { has_bias, .. } => {
                    if *has_bias {
                        3
                    } else {
                        2
                    }
                }
            };
            if node.inputs.len() != expected {
                return Err(GraphError::ArityMismatch {
                    node: node.name.clone(),
                    expected,
                    actual: node.inputs.len(),
                });
            }
            // Quantized operators: the per-channel scale list must match the output
            // channel count and the weight constant must actually be int8.
            if let Some(quant) = node.op.quant_attrs() {
                let channels = match &node.op {
                    Op::Conv2dQuantized { attrs, .. } => attrs.out_channels,
                    Op::FullyConnectedQuantized { out_features, .. } => *out_features,
                    _ => unreachable!("quant_attrs is only Some for quantized ops"),
                };
                if quant.weight_scales.len() != channels {
                    return Err(GraphError::ShapeInference {
                        node: node.name.clone(),
                        reason: format!(
                            "{} weight scales for {channels} output channels",
                            quant.weight_scales.len()
                        ),
                    });
                }
                if let Some(weight) = node.inputs.get(1).and_then(|id| self.constant(*id)) {
                    if weight.data_type() != DataType::I8 {
                        return Err(GraphError::ShapeInference {
                            node: node.name.clone(),
                            reason: format!(
                                "quantized weight constant must be i8, found {}",
                                weight.data_type()
                            ),
                        });
                    }
                }
            }
            for id in node.inputs.iter().chain(&node.outputs) {
                if id.0 >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor(id.0));
                }
            }
        }
        // every consumed, non-constant slot must be a graph input or produced by a node
        let produced: Vec<bool> = {
            let mut v = vec![false; self.tensors.len()];
            for node in &self.nodes {
                for out in &node.outputs {
                    v[out.0] = true;
                }
            }
            v
        };
        for node in &self.nodes {
            for input in &node.inputs {
                let info = self.tensor_info(*input)?;
                if !info.is_constant && !self.inputs.contains(input) && !produced[input.0] {
                    return Err(GraphError::ShapeInference {
                        node: node.name.clone(),
                        reason: format!("input slot {input} has no producer"),
                    });
                }
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Number of nodes per operator name (used for the Table 4 style statistics).
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut histogram = BTreeMap::new();
        for node in &self.nodes {
            *histogram.entry(node.op.name()).or_insert(0) += 1;
        }
        histogram
    }

    /// Total number of stored constant elements (≈ parameter count).
    pub fn parameter_count(&self) -> usize {
        self.constants
            .values()
            .map(|t| t.shape().num_elements())
            .sum()
    }

    /// Total bytes of stored constant data (weights, biases, statistics),
    /// honouring each constant's element type — int8 weights count one byte per
    /// element, so this is the number the quantizer's compression ratio is
    /// measured against.
    pub fn constant_bytes(&self) -> usize {
        self.constants.values().map(|t| t.byte_size()).sum()
    }

    /// Number of scalar multiplications the node performs, using inferred shapes.
    ///
    /// This is the `MUL` term of the paper's backend cost model (Eq. 5). Returns 0
    /// for shape-only / negligible operators and `None` when shapes are missing.
    pub fn node_mul_count(&self, node: &Node) -> Option<u64> {
        let in_shape = |idx: usize| -> Option<&Shape> {
            node.inputs
                .get(idx)
                .and_then(|id| self.tensors.get(id.0))
                .and_then(|t| t.shape.as_ref())
        };
        let out_shape = node
            .outputs
            .first()
            .and_then(|id| self.tensors.get(id.0))
            .and_then(|t| t.shape.as_ref());
        let muls = match &node.op {
            Op::Conv2d(attrs)
            | Op::Conv2dFused { attrs, .. }
            | Op::Conv2dQuantized { attrs, .. } => {
                let input = in_shape(0)?;
                attrs
                    .to_conv_params()
                    .mul_count(input.height(), input.width()) as u64
                    * input.batch() as u64
            }
            Op::FullyConnected {
                in_features,
                out_features,
                ..
            }
            | Op::FullyConnectedQuantized {
                in_features,
                out_features,
                ..
            } => {
                let input = in_shape(0)?;
                (input.dims()[0] * in_features * out_features) as u64
            }
            Op::Pool(_) | Op::Activation(_) | Op::Softmax(_) => {
                out_shape.map(|s| s.num_elements() as u64).unwrap_or(0)
            }
            Op::Binary(_) | Op::Scale | Op::BatchNorm { .. } => {
                in_shape(0).map(|s| s.num_elements() as u64).unwrap_or(0)
            }
            Op::Concat | Op::Flatten(_) | Op::Reshape { .. } => 0,
        };
        Some(muls)
    }

    /// Total multiplication count over all nodes (requires inferred shapes).
    pub fn total_mul_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| self.node_mul_count(n))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ActivationKind, Conv2dAttrs};

    fn tiny_graph() -> Graph {
        let mut g = Graph::new("tiny");
        let x = g.add_tensor("x", Some(Shape::nchw(1, 3, 8, 8)));
        g.mark_input(x);
        let w = g.add_constant("w", Tensor::zeros(Shape::new(vec![8, 3, 3, 3])));
        let (_, conv_out) = g.add_node("conv", Op::Conv2d(Conv2dAttrs::same_3x3(3, 8)), vec![x, w]);
        let (_, relu_out) =
            g.add_node("relu", Op::Activation(ActivationKind::Relu), vec![conv_out]);
        g.mark_output(relu_out);
        g
    }

    #[test]
    fn build_and_validate_tiny_graph() {
        let g = tiny_graph();
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let g = tiny_graph();
        let order = g.topological_order().unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn producer_and_consumers() {
        let g = tiny_graph();
        let conv_out = g.nodes()[0].outputs[0];
        assert_eq!(g.producer(conv_out).unwrap().name, "conv");
        assert_eq!(g.consumers(conv_out).len(), 1);
        let input = g.inputs()[0];
        assert!(g.producer(input).is_none());
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let mut g = Graph::new("bad");
        let x = g.add_tensor("x", None);
        g.mark_input(x);
        // Conv without weight input
        let (_, out) = g.add_node("conv", Op::Conv2d(Conv2dAttrs::same_3x3(3, 8)), vec![x]);
        g.mark_output(out);
        assert!(matches!(
            g.validate(),
            Err(GraphError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn validate_catches_missing_producer() {
        let mut g = Graph::new("bad");
        let x = g.add_tensor("x", None);
        let ghost = g.add_tensor("ghost", None);
        g.mark_input(x);
        let (_, out) = g.add_node("add", Op::Binary(crate::BinaryKind::Add), vec![x, ghost]);
        g.mark_output(out);
        assert!(g.validate().is_err());
    }

    #[test]
    fn cycle_detection() {
        let mut g = Graph::new("cyclic");
        let x = g.add_tensor("x", None);
        g.mark_input(x);
        let (_, a_out) = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let (_, b_out) = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a_out]);
        // manually create a cycle: rewire node a to also consume b's output
        let mut nodes = g.nodes().to_vec();
        nodes[0].inputs = vec![b_out];
        g.set_nodes(nodes);
        assert_eq!(g.topological_order(), Err(GraphError::Cycle));
    }

    #[test]
    fn op_histogram_counts_kinds() {
        let g = tiny_graph();
        let h = g.op_histogram();
        assert_eq!(h.get("Conv2d"), Some(&1));
        assert_eq!(h.get("Activation"), Some(&1));
    }

    #[test]
    fn parameter_count_sums_constant_elements() {
        let g = tiny_graph();
        assert_eq!(g.parameter_count(), 8 * 3 * 3 * 3);
    }

    #[test]
    fn mul_count_for_conv_uses_input_shape() {
        let g = tiny_graph();
        let conv = &g.nodes()[0];
        // 8x8 output (pad 1), 8 oc, 3 ic, 3x3 kernel
        assert_eq!(g.node_mul_count(conv), Some(8 * 8 * 8 * 3 * 3 * 3));
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let g = tiny_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
