//! SIMD-vs-scalar conformance suite for the vectorized kernel paths.
//!
//! Contract being enforced (see `mnn_kernels::simd`):
//!
//! * **int8 paths are bit-identical.** Every product is exact in i32 and i32
//!   addition is associative, so vectorization must not change a single bit —
//!   these tests use `assert_eq!`.
//! * **f32 paths agree within a documented tolerance.** SIMD kernels use FMA
//!   and lane-parallel accumulation, so individual elements may differ from
//!   the scalar reference by rounding. The bound used throughout is
//!   `|simd - scalar| <= TOL * (1 + |scalar|)` with `TOL` scaled to the
//!   reduction depth of the kernel under test.
//!
//! Geometries deliberately include sizes that are not multiples of the vector
//! width (16/8/4 column tails, 1..3-row remainders) so every remainder path in
//! the micro-kernels is crossed.
//!
//! On hosts with no SIMD backend (or non-x86_64/aarch64 targets) the suite
//! passes trivially — there is nothing to compare.

use mnn_kernels::conv::{conv2d_depthwise_with, conv2d_im2col_with, ConvParams};
use mnn_kernels::gemm::{gemm_mt_with, gemm_with};
use mnn_kernels::quant::{conv2d_quantized_with, gemm_i8_with, QuantParams};
use mnn_kernels::simd::KernelBackend;
use mnn_kernels::winograd::{conv2d_winograd_prepared_with, prepare_winograd_weights};

/// The SIMD backend this host can actually execute, if any.
fn hw_backend() -> Option<KernelBackend> {
    [KernelBackend::Avx2Fma, KernelBackend::Neon]
        .into_iter()
        .find(|kb| kb.hw_supported())
}

fn lcg(seed: &mut u64) -> f32 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
}

fn randf(seed: &mut u64, len: usize) -> Vec<f32> {
    (0..len).map(|_| lcg(seed)).collect()
}

fn randi8(seed: &mut u64, len: usize) -> Vec<i8> {
    (0..len).map(|_| (lcg(seed) * 250.0) as i8).collect()
}

fn assert_close(simd: &[f32], scalar: &[f32], tol: f32, what: &str) {
    assert_eq!(simd.len(), scalar.len(), "{what}: length mismatch");
    for (i, (s, r)) in simd.iter().zip(scalar).enumerate() {
        assert!(
            (s - r).abs() <= tol * (1.0 + r.abs()),
            "{what}: element {i} diverged: simd {s} vs scalar {r}"
        );
    }
}

#[test]
fn f32_gemm_matches_scalar_within_tolerance() {
    let Some(kb) = hw_backend() else { return };
    // m exercises 4-row tiles + 1..3-row remainders; n exercises 16/8/4-wide
    // and scalar column tails; k crosses the BLOCK_K=256 boundary.
    for (m, k, n) in [
        (1, 1, 1),
        (2, 3, 5),
        (4, 16, 16),
        (5, 7, 17),
        (6, 31, 24),
        (7, 300, 23),
        (8, 257, 33),
        (13, 64, 40),
    ] {
        let mut seed = (m * 1009 + k * 31 + n) as u64;
        let a = randf(&mut seed, m * k);
        let b = randf(&mut seed, k * n);
        let mut c_simd = vec![0.0f32; m * n];
        let mut c_scalar = vec![0.0f32; m * n];
        gemm_with(kb, m, k, n, &a, &b, &mut c_simd);
        gemm_with(KernelBackend::Scalar, m, k, n, &a, &b, &mut c_scalar);
        // Per output element the reduction is a single k-deep chain in both
        // paths; only FMA rounding differs.
        assert_close(&c_simd, &c_scalar, 1e-4, &format!("gemm {m}x{k}x{n}"));
    }
}

#[test]
fn f32_gemm_mt_matches_single_thread() {
    let Some(kb) = hw_backend() else { return };
    let (m, k, n) = (9, 40, 21);
    let mut seed = 7u64;
    let a = randf(&mut seed, m * k);
    let b = randf(&mut seed, k * n);
    let mut c_st = vec![0.0f32; m * n];
    gemm_with(kb, m, k, n, &a, &b, &mut c_st);
    for threads in [2, 3, 8] {
        let mut c_mt = vec![0.0f32; m * n];
        gemm_mt_with(kb, threads, m, k, n, &a, &b, &mut c_mt);
        // Row partitioning never splits a reduction, so multithreading is
        // bit-identical to single-threaded for the same backend.
        assert_eq!(c_mt, c_st, "gemm_mt diverged at {threads} threads");
    }
}

#[test]
fn int8_gemm_is_bit_identical() {
    let Some(kb) = hw_backend() else { return };
    for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 9, 16), (5, 33, 23), (8, 64, 40)] {
        let mut seed = (m * 131 + k * 17 + n) as u64;
        let a = randi8(&mut seed, m * k);
        let b = randi8(&mut seed, k * n);
        let ap = QuantParams::from_max_abs(1.3);
        let bp = QuantParams::from_max_abs(0.9);
        let simd = gemm_i8_with(kb, m, k, n, &a, ap, &b, bp);
        let scalar = gemm_i8_with(KernelBackend::Scalar, m, k, n, &a, ap, &b, bp);
        assert_eq!(simd, scalar, "int8 gemm must be exact ({m}x{k}x{n})");
    }
}

#[test]
fn quantized_conv_is_bit_identical() {
    let Some(kb) = hw_backend() else { return };
    let params = ConvParams::square(3, 8, 3, 1);
    let (batch, in_h, in_w) = (2, 9, 11);
    let mut seed = 42u64;
    let input = randf(&mut seed, batch * params.in_channels * in_h * in_w);
    let weight_q = randi8(&mut seed, params.weight_len());
    let weight_scales: Vec<f32> = (0..params.out_channels)
        .map(|oc| 0.01 + 0.002 * oc as f32)
        .collect();
    let bias = vec![0.0f32; 0];
    let simd = conv2d_quantized_with(
        kb,
        &params,
        1,
        batch,
        in_h,
        in_w,
        &input,
        &weight_q,
        &weight_scales,
        &bias,
    );
    let scalar = conv2d_quantized_with(
        KernelBackend::Scalar,
        &params,
        1,
        batch,
        in_h,
        in_w,
        &input,
        &weight_q,
        &weight_scales,
        &bias,
    );
    // Activations are quantized identically by both paths and the integer
    // accumulation is exact, so the dequantized outputs match bit-for-bit.
    assert_eq!(simd, scalar, "quantized conv must be exact");
}

#[test]
fn im2col_conv_matches_scalar_within_tolerance() {
    let Some(kb) = hw_backend() else { return };
    for (ic, oc, kernel, in_h, in_w) in [(3, 8, 3, 8, 8), (5, 7, 1, 9, 13), (4, 16, 5, 12, 10)] {
        let params = ConvParams::square(ic, oc, kernel, kernel / 2);
        let mut seed = (ic * 100 + oc * 10 + kernel) as u64;
        let input = randf(&mut seed, ic * in_h * in_w);
        let weight = randf(&mut seed, params.weight_len());
        let simd = conv2d_im2col_with(kb, &params, 1, 1, in_h, in_w, &input, &weight, &[]);
        let scalar = conv2d_im2col_with(
            KernelBackend::Scalar,
            &params,
            1,
            1,
            in_h,
            in_w,
            &input,
            &weight,
            &[],
        );
        assert_close(
            &simd,
            &scalar,
            1e-4,
            &format!("im2col {ic}->{oc} k{kernel}"),
        );
    }
}

#[test]
fn winograd_conv_matches_scalar_within_tolerance() {
    let Some(kb) = hw_backend() else { return };
    for (ic, oc, tile, in_h, in_w) in [(4, 8, 2, 10, 10), (3, 5, 4, 13, 11), (8, 16, 4, 12, 18)] {
        let params = ConvParams::square(ic, oc, 3, 1);
        let mut seed = (ic * 1000 + oc * 100 + tile) as u64;
        let input = randf(&mut seed, ic * in_h * in_w);
        let weight = randf(&mut seed, params.weight_len());
        let prepared = prepare_winograd_weights(&params, tile, &weight);
        let simd =
            conv2d_winograd_prepared_with(kb, &params, &prepared, 1, 1, in_h, in_w, &input, &[]);
        let scalar = conv2d_winograd_prepared_with(
            KernelBackend::Scalar,
            &params,
            &prepared,
            1,
            1,
            in_h,
            in_w,
            &input,
            &[],
        );
        // Winograd chains three matrix products per tile, so rounding
        // differences compound a little more than plain GEMM: 1e-3 relative.
        assert_close(
            &simd,
            &scalar,
            1e-3,
            &format!("winograd F({tile}x{tile}) {ic}->{oc}"),
        );
    }
}

#[test]
fn depthwise_conv_matches_scalar_within_tolerance() {
    let Some(kb) = hw_backend() else { return };
    // stride 1 exercises the vectorized row-axpy fast path; stride/dilation > 1
    // exercise the scalar-gather fallback inside the SIMD implementation.
    let cases = [
        (ConvParams::square(8, 8, 3, 1).depthwise(), 11, 9),
        (
            ConvParams::square(5, 5, 3, 0).depthwise().with_stride(2),
            12,
            14,
        ),
        (
            ConvParams::square(4, 4, 3, 2).depthwise().with_dilation(2),
            10,
            10,
        ),
    ];
    for (idx, (params, in_h, in_w)) in cases.into_iter().enumerate() {
        let mut seed = 1000 + idx as u64;
        let input = randf(&mut seed, params.in_channels * in_h * in_w);
        let weight = randf(&mut seed, params.weight_len());
        let simd = conv2d_depthwise_with(kb, &params, 2, 1, in_h, in_w, &input, &weight, &[]);
        let scalar = conv2d_depthwise_with(
            KernelBackend::Scalar,
            &params,
            2,
            1,
            in_h,
            in_w,
            &input,
            &weight,
            &[],
        );
        // 9 taps per output: a short reduction, so the bound is tight.
        assert_close(&simd, &scalar, 1e-5, &format!("depthwise case {idx}"));
    }
}
