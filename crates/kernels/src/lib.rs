//! CPU compute kernels for the MNN-rs inference engine.
//!
//! This crate implements every "kernel" (detailed operator implementation, paper
//! Section 3.3) the engine needs, all in safe Rust:
//!
//! * [`gemm`] — single- and multi-threaded blocked matrix multiplication, the basic
//!   compute-intensive unit MNN optimizes once and reuses everywhere (Section 3.5).
//! * [`strassen`] — Strassen matrix multiplication with the paper's cost-based
//!   recursion-stop condition (Eq. 9), used for 1×1 convolutions / large GEMMs.
//! * [`winograd`] — a *Winograd generator* producing `A`, `B`, `G` transform matrices
//!   for any output-tile/kernel size from the interpolation points of Eq. 8, plus the
//!   tiled Winograd convolution of Fig. 4 (Hadamard product restructured as GEMM).
//! * [`conv`] — reference (naive), sliding-window, im2col and 1×1-as-GEMM
//!   convolutions, depthwise convolution, and common parameter handling.
//! * [`pool`], [`activation`], [`elementwise`], [`norm`], [`fc`] — the remaining
//!   operator kernels used by the model zoo.
//! * [`quant`] — symmetric int8 quantization and a quantized GEMM/convolution path.
//! * [`parallel`] — a tiny scoped-thread work partitioner used by the heavy kernels.
//!
//! All kernels are validated against naive reference implementations in their unit
//! and property tests; the schemes compared in the paper's Table 1/3 are benchmarked
//! from `mnn-bench`.

#![deny(missing_docs)]
// Compute kernels take their geometry as scalar parameters and index with plain
// loops on purpose: the signatures mirror the (params, threads, batch, h, w,
// buffers...) shape of the C++ kernels and the indexed loops keep the math legible.
#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]

pub mod activation;
pub mod conv;
pub mod elementwise;
pub mod fc;
pub mod gemm;
pub mod norm;
pub mod parallel;
pub mod pool;
pub mod quant;
pub mod simd;
pub mod strassen;
pub mod winograd;

pub use conv::{ConvParams, PadMode};
