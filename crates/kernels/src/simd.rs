//! Runtime-detected SIMD kernel backends: AVX2/FMA on x86_64, NEON on aarch64.
//!
//! The paper's single-op speed claims (Section 3.2) rest on hand-vectorized
//! micro-kernels; this module supplies them behind a tiny dispatch enum,
//! [`KernelBackend`], with the existing scalar code as the guaranteed
//! fallback on every platform.
//!
//! Three design rules keep the rest of the crate simple:
//!
//! 1. **Explicit dispatch.** Kernels take a [`KernelBackend`] value via their
//!    `_with` entry points; the plain entry points (`gemm`, `conv2d_im2col`,
//!    …) stay scalar so existing callers — and the scalar tuning candidates —
//!    are bit-for-bit unchanged.
//! 2. **Runtime detection, env override.** [`KernelBackend::active`] returns
//!    the best backend the host supports, unless the `MNN_SIMD` environment
//!    variable is set to `scalar`/`off`/`0`, which forces the scalar path
//!    (useful for CI and conformance baselines).
//! 3. **Exact where exactness is free.** Integer kernels ([`i8_axpy_i32`])
//!    are bit-identical to scalar because i32 addition is associative. Float
//!    kernels use FMA and lane-parallel accumulation, so they differ from
//!    scalar by a documented, tested tolerance (see `tests/simd_conformance.rs`).

use std::sync::OnceLock;

/// A kernel implementation family. `Scalar` is always available; the SIMD
/// variants exist only on their architecture *and* only run when the host
/// supports the required features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar Rust (the reference implementation).
    Scalar,
    /// x86_64 AVX2 + FMA (256-bit lanes, fused multiply-add).
    Avx2Fma,
    /// aarch64 NEON (128-bit lanes; baseline on all aarch64 targets).
    Neon,
}

impl KernelBackend {
    /// Whether the *hardware this process runs on* can execute this backend,
    /// ignoring the `MNN_SIMD` policy override. Conformance tests use this to
    /// decide whether a SIMD-vs-scalar comparison is possible at all.
    pub fn hw_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelBackend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The backend SIMD kernels actually dispatch to on this host: the best
    /// hardware-supported backend, unless `MNN_SIMD` is set to
    /// `scalar`/`off`/`0`, which pins it to [`KernelBackend::Scalar`].
    ///
    /// The decision (including the environment read) is made once per process
    /// and cached.
    pub fn active() -> KernelBackend {
        static ACTIVE: OnceLock<KernelBackend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if let Ok(v) = std::env::var("MNN_SIMD") {
                let v = v.to_ascii_lowercase();
                if v == "scalar" || v == "off" || v == "0" {
                    return KernelBackend::Scalar;
                }
            }
            if KernelBackend::Avx2Fma.hw_supported() {
                KernelBackend::Avx2Fma
            } else if KernelBackend::Neon.hw_supported() {
                KernelBackend::Neon
            } else {
                KernelBackend::Scalar
            }
        })
    }

    /// Stable short name, used in device fingerprints and reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2Fma => "avx2fma",
            KernelBackend::Neon => "neon",
        }
    }

    /// Whether this is a vectorized (non-scalar) backend.
    pub fn is_simd(self) -> bool {
        self != KernelBackend::Scalar
    }
}

/// Whether any SIMD backend is active on this host (hardware support and the
/// `MNN_SIMD` policy both permitting). Candidate pools consult this before
/// offering SIMD schemes to the tuner.
pub fn simd_available() -> bool {
    KernelBackend::active().is_simd()
}

/// Name of the active kernel backend (`"scalar"`, `"avx2fma"`, `"neon"`),
/// recorded in `DeviceFingerprint` so persisted tuning caches can never
/// install a kernel the loading host lacks.
pub fn active_kernel_set() -> &'static str {
    KernelBackend::active().name()
}

// ---------------------------------------------------------------------------
// f32 axpy: dst[i] += a * src[i]
// ---------------------------------------------------------------------------

/// `dst[i] += a * src[i]` over the common length of the slices.
///
/// Scalar backend matches the naive loop exactly; SIMD backends use FMA and
/// may differ from scalar in the last ulp per element (no reassociation —
/// each output lane is still a single chain of adds in the same order).
pub fn axpy_f32(kb: KernelBackend, dst: &mut [f32], src: &[f32], a: f32) {
    let len = dst.len().min(src.len());
    match kb {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2Fma if KernelBackend::Avx2Fma.hw_supported() => unsafe {
            x86::axpy_f32_avx2(&mut dst[..len], &src[..len], a);
        },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe {
            neon::axpy_f32_neon(&mut dst[..len], &src[..len], a);
        },
        _ => {
            for (d, s) in dst[..len].iter_mut().zip(&src[..len]) {
                *d += a * s;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 dot product
// ---------------------------------------------------------------------------

/// Dot product of the common prefix of `a` and `b`.
///
/// SIMD backends accumulate lane-parallel (then reduce), so the summation
/// order differs from scalar; results agree within a relative tolerance
/// proportional to the vector length times machine epsilon.
pub fn dot_f32(kb: KernelBackend, a: &[f32], b: &[f32]) -> f32 {
    let len = a.len().min(b.len());
    match kb {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2Fma if KernelBackend::Avx2Fma.hw_supported() => unsafe {
            x86::dot_f32_avx2(&a[..len], &b[..len])
        },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::dot_f32_neon(&a[..len], &b[..len]) },
        _ => a[..len].iter().zip(&b[..len]).map(|(x, y)| x * y).sum(),
    }
}

// ---------------------------------------------------------------------------
// int8 axpy into i32 accumulators: acc[i] += w * x[i] as i32
// ---------------------------------------------------------------------------

/// `acc[i] += w * (x[i] as i32)` over the common length.
///
/// Bit-identical across all backends: every product is exact in i32 and i32
/// addition is associative, so vectorization cannot change the result.
pub fn i8_axpy_i32(kb: KernelBackend, acc: &mut [i32], x: &[i8], w: i32) {
    let len = acc.len().min(x.len());
    match kb {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2Fma if KernelBackend::Avx2Fma.hw_supported() => unsafe {
            x86::i8_axpy_i32_avx2(&mut acc[..len], &x[..len], w);
        },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe {
            neon::i8_axpy_i32_neon(&mut acc[..len], &x[..len], w);
        },
        _ => {
            for (a, &c) in acc[..len].iter_mut().zip(&x[..len]) {
                *a += w * c as i32;
            }
        }
    }
}

/// Paired int8 axpy: `acc[i] += w1 * x1[i] + w2 * x2[i]` over the common length.
///
/// Processing two weight rows per pass lets the AVX2 path multiply in i16 —
/// `|w| <= 127, |x| <= 128` bounds each product at 16256 and the pair sum at
/// 32512, both exact in i16 — which doubles the lanes per instruction vs
/// widening each row to i32. Bit-identical to two [`i8_axpy_i32`] calls:
/// every intermediate is exact and i32 addition is associative. Weights
/// outside `[-127, 127]` (where the i16 bound would not hold) take the
/// one-row path instead, staying exact.
pub fn i8_axpy2_i32(kb: KernelBackend, acc: &mut [i32], x1: &[i8], w1: i32, x2: &[i8], w2: i32) {
    let len = acc.len().min(x1.len()).min(x2.len());
    if w1.abs() > 127 || w2.abs() > 127 {
        i8_axpy_i32(kb, &mut acc[..len], &x1[..len], w1);
        i8_axpy_i32(kb, acc, &x2[..len], w2);
        return;
    }
    match kb {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2Fma if KernelBackend::Avx2Fma.hw_supported() => unsafe {
            x86::i8_axpy2_i32_avx2(&mut acc[..len], &x1[..len], w1, &x2[..len], w2);
        },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe {
            neon::i8_axpy_i32_neon(&mut acc[..len], &x1[..len], w1);
            neon::i8_axpy_i32_neon(&mut acc[..len], &x2[..len], w2);
        },
        _ => {
            for ((a, &c1), &c2) in acc[..len].iter_mut().zip(&x1[..len]).zip(&x2[..len]) {
                *a += w1 * c1 as i32 + w2 * c2 as i32;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 GEMM accumulate: C += A * B (row-major, no zero-fill)
// ---------------------------------------------------------------------------

/// SIMD `c += a * b` for row-major `a` (`m x k`), `b` (`k x n`), `c` (`m x n`),
/// restricted to the row range `[row_start, row_end)` of `a`/`c`.
///
/// Returns `false` when `kb` has no SIMD implementation on this host, in
/// which case the caller must run its scalar path. Register-tiled: AVX2 uses
/// 4x16 tiles (8 YMM accumulators, FMA), NEON uses 4x8 tiles.
pub fn gemm_accumulate_simd(
    kb: KernelBackend,
    row_start: usize,
    row_end: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) -> bool {
    debug_assert!(row_end <= c.len() / n.max(1));
    match kb {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2Fma if KernelBackend::Avx2Fma.hw_supported() => {
            unsafe { x86::gemm_accumulate_avx2(row_start, row_end, k, n, a, b, c) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => {
            unsafe { neon::gemm_accumulate_neon(row_start, row_end, k, n, a, b, c) };
            true
        }
        _ => false,
    }
}

/// K-dimension blocking shared with the scalar GEMM (`crate::gemm::BLOCK_K`):
/// bounds how much of `b` is streamed per C-tile load/store round trip.
const BLOCK_K: usize = 256;

/// N-dimension blocking: the row tiles sweep a `BLOCK_K x BLOCK_N` panel of
/// `b` (1 MiB) that stays L2-resident across the whole m-sweep. Without it,
/// wide GEMMs (im2col of early conv layers has `n = out_h*out_w` in the
/// thousands) re-stream `b` from DRAM once per row tile and the FMA units
/// starve — measured on a 2 MiB-L2 Xeon, 64x576x3600 goes from 12 to >30
/// GFLOP/s with this split.
const BLOCK_N: usize = 1024;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{BLOCK_K, BLOCK_N};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f32_avx2(dst: &mut [f32], src: &[f32], a: f32) {
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let av = _mm256_set1_ps(a);
        let mut i = 0usize;
        while i + 8 <= len {
            let acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(s.add(i)), _mm256_loadu_ps(d.add(i)));
            _mm256_storeu_ps(d.add(i), acc);
            i += 8;
        }
        if i + 4 <= len {
            let av4 = _mm_set1_ps(a);
            let acc = _mm_fmadd_ps(av4, _mm_loadu_ps(s.add(i)), _mm_loadu_ps(d.add(i)));
            _mm_storeu_ps(d.add(i), acc);
            i += 4;
        }
        while i < len {
            *d.add(i) += a * *s.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
        let len = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= len {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc);
            i += 8;
        }
        // Horizontal reduce the 8 lanes.
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let sum4 = _mm_add_ps(lo, hi);
        let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
        let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 1));
        let mut total = _mm_cvtss_f32(sum1);
        while i < len {
            total += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn i8_axpy_i32_avx2(acc: &mut [i32], x: &[i8], w: i32) {
        let len = acc.len();
        let ap = acc.as_mut_ptr();
        let xp = x.as_ptr();
        let wv = _mm256_set1_epi32(w);
        let mut i = 0usize;
        while i + 8 <= len {
            // 8 bytes of i8 -> 8 lanes of i32, exact multiply-add in i32.
            let bytes = _mm_loadl_epi64(xp.add(i) as *const __m128i);
            let x32 = _mm256_cvtepi8_epi32(bytes);
            let prod = _mm256_mullo_epi32(x32, wv);
            let cur = _mm256_loadu_si256(ap.add(i) as *const __m256i);
            _mm256_storeu_si256(ap.add(i) as *mut __m256i, _mm256_add_epi32(cur, prod));
            i += 8;
        }
        while i < len {
            *ap.add(i) += w * *xp.add(i) as i32;
            i += 1;
        }
    }

    /// Paired int8 axpy: `acc += w1 * x1 + w2 * x2` with exact i16 products.
    ///
    /// With `|w| <= 127` each product is at most 16256 and the pair sum at
    /// most 32512 — both exact in i16 — so multiplying 16 lanes in i16 and
    /// widening the sum once is exact: twice the throughput of
    /// [`i8_axpy_i32_avx2`] per weight row.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2; `acc`, `x1` and `x2` must
    /// have equal lengths and `|w1|, |w2| <= 127`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn i8_axpy2_i32_avx2(
        acc: &mut [i32],
        x1: &[i8],
        w1: i32,
        x2: &[i8],
        w2: i32,
    ) {
        let len = acc.len();
        let ap = acc.as_mut_ptr();
        let p1 = x1.as_ptr();
        let p2 = x2.as_ptr();
        let w1v = _mm256_set1_epi16(w1 as i16);
        let w2v = _mm256_set1_epi16(w2 as i16);
        let mut i = 0usize;
        while i + 16 <= len {
            // 16 bytes of each row -> 16 lanes of i16, exact products and sum.
            let a16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p1.add(i) as *const __m128i));
            let b16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p2.add(i) as *const __m128i));
            let sum16 =
                _mm256_add_epi16(_mm256_mullo_epi16(a16, w1v), _mm256_mullo_epi16(b16, w2v));
            // Widen the i16 pair-sums to i32 and accumulate.
            let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(sum16));
            let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(sum16, 1));
            let cur_lo = _mm256_loadu_si256(ap.add(i) as *const __m256i);
            let cur_hi = _mm256_loadu_si256(ap.add(i + 8) as *const __m256i);
            _mm256_storeu_si256(ap.add(i) as *mut __m256i, _mm256_add_epi32(cur_lo, lo));
            _mm256_storeu_si256(ap.add(i + 8) as *mut __m256i, _mm256_add_epi32(cur_hi, hi));
            i += 16;
        }
        while i < len {
            *ap.add(i) += w1 * *p1.add(i) as i32 + w2 * *p2.add(i) as i32;
            i += 1;
        }
    }

    /// Register-tiled `c += a * b` over rows `[row_start, row_end)`.
    ///
    /// 4x16 main tile: 8 YMM accumulators, per k-step 2 B loads + 4 A
    /// broadcasts + 8 FMAs. Row remainder uses a 1x16 kernel; column
    /// remainders fall to an 8-wide kernel and then scalar. Loop nest is
    /// k-block -> j-block -> row tiles, so each `BLOCK_K x BLOCK_N` panel of
    /// `b` is reused from L2 by every row tile instead of being re-streamed
    /// from DRAM.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA, and that
    /// `a` is at least `row_end * k`, `b` at least `k * n`, `c` at least
    /// `row_end * n` elements.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_accumulate_avx2(
        row_start: usize,
        row_end: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut pb = 0usize;
        while pb < k {
            let pe = (pb + BLOCK_K).min(k);
            let mut jb = 0usize;
            while jb < n {
                let je = (jb + BLOCK_N).min(n);
                let mut i = row_start;
                while i + 4 <= row_end {
                    tile_4(ap, bp, cp, i, pb, pe, jb, je, k, n);
                    i += 4;
                }
                while i < row_end {
                    tile_1(ap, bp, cp, i, pb, pe, jb, je, k, n);
                    i += 1;
                }
                jb = je;
            }
            pb = pe;
        }
    }

    /// 4-row register tile over columns `[jb, je)`. See
    /// [`gemm_accumulate_avx2`].
    ///
    /// # Safety
    /// Same bounds contract as [`gemm_accumulate_avx2`], with `i + 4 <= row_end`
    /// and `je <= n`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_4(
        ap: *const f32,
        bp: *const f32,
        cp: *mut f32,
        i: usize,
        pb: usize,
        pe: usize,
        jb: usize,
        je: usize,
        k: usize,
        n: usize,
    ) {
        let a0 = ap.add(i * k);
        let a1 = ap.add((i + 1) * k);
        let a2 = ap.add((i + 2) * k);
        let a3 = ap.add((i + 3) * k);
        let c0 = cp.add(i * n);
        let c1 = cp.add((i + 1) * n);
        let c2 = cp.add((i + 2) * n);
        let c3 = cp.add((i + 3) * n);
        let mut j = jb;
        while j + 16 <= je {
            let mut acc00 = _mm256_loadu_ps(c0.add(j));
            let mut acc01 = _mm256_loadu_ps(c0.add(j + 8));
            let mut acc10 = _mm256_loadu_ps(c1.add(j));
            let mut acc11 = _mm256_loadu_ps(c1.add(j + 8));
            let mut acc20 = _mm256_loadu_ps(c2.add(j));
            let mut acc21 = _mm256_loadu_ps(c2.add(j + 8));
            let mut acc30 = _mm256_loadu_ps(c3.add(j));
            let mut acc31 = _mm256_loadu_ps(c3.add(j + 8));
            for p in pb..pe {
                let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                let b1 = _mm256_loadu_ps(bp.add(p * n + j + 8));
                let v0 = _mm256_set1_ps(*a0.add(p));
                acc00 = _mm256_fmadd_ps(v0, b0, acc00);
                acc01 = _mm256_fmadd_ps(v0, b1, acc01);
                let v1 = _mm256_set1_ps(*a1.add(p));
                acc10 = _mm256_fmadd_ps(v1, b0, acc10);
                acc11 = _mm256_fmadd_ps(v1, b1, acc11);
                let v2 = _mm256_set1_ps(*a2.add(p));
                acc20 = _mm256_fmadd_ps(v2, b0, acc20);
                acc21 = _mm256_fmadd_ps(v2, b1, acc21);
                let v3 = _mm256_set1_ps(*a3.add(p));
                acc30 = _mm256_fmadd_ps(v3, b0, acc30);
                acc31 = _mm256_fmadd_ps(v3, b1, acc31);
            }
            _mm256_storeu_ps(c0.add(j), acc00);
            _mm256_storeu_ps(c0.add(j + 8), acc01);
            _mm256_storeu_ps(c1.add(j), acc10);
            _mm256_storeu_ps(c1.add(j + 8), acc11);
            _mm256_storeu_ps(c2.add(j), acc20);
            _mm256_storeu_ps(c2.add(j + 8), acc21);
            _mm256_storeu_ps(c3.add(j), acc30);
            _mm256_storeu_ps(c3.add(j + 8), acc31);
            j += 16;
        }
        while j + 8 <= je {
            let mut acc0 = _mm256_loadu_ps(c0.add(j));
            let mut acc1 = _mm256_loadu_ps(c1.add(j));
            let mut acc2 = _mm256_loadu_ps(c2.add(j));
            let mut acc3 = _mm256_loadu_ps(c3.add(j));
            for p in pb..pe {
                let bv = _mm256_loadu_ps(bp.add(p * n + j));
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(p)), bv, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(p)), bv, acc1);
                acc2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.add(p)), bv, acc2);
                acc3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.add(p)), bv, acc3);
            }
            _mm256_storeu_ps(c0.add(j), acc0);
            _mm256_storeu_ps(c1.add(j), acc1);
            _mm256_storeu_ps(c2.add(j), acc2);
            _mm256_storeu_ps(c3.add(j), acc3);
            j += 8;
        }
        while j < je {
            let mut s0 = *c0.add(j);
            let mut s1 = *c1.add(j);
            let mut s2 = *c2.add(j);
            let mut s3 = *c3.add(j);
            for p in pb..pe {
                let bv = *bp.add(p * n + j);
                s0 = (*a0.add(p)).mul_add(bv, s0);
                s1 = (*a1.add(p)).mul_add(bv, s1);
                s2 = (*a2.add(p)).mul_add(bv, s2);
                s3 = (*a3.add(p)).mul_add(bv, s3);
            }
            *c0.add(j) = s0;
            *c1.add(j) = s1;
            *c2.add(j) = s2;
            *c3.add(j) = s3;
            j += 1;
        }
    }

    /// Single-row remainder kernel over columns `[jb, je)`. See
    /// [`gemm_accumulate_avx2`].
    ///
    /// # Safety
    /// Same bounds contract as [`gemm_accumulate_avx2`], with `i < row_end`
    /// and `je <= n`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_1(
        ap: *const f32,
        bp: *const f32,
        cp: *mut f32,
        i: usize,
        pb: usize,
        pe: usize,
        jb: usize,
        je: usize,
        k: usize,
        n: usize,
    ) {
        let arow = ap.add(i * k);
        let crow = cp.add(i * n);
        let mut j = jb;
        while j + 16 <= je {
            let mut acc0 = _mm256_loadu_ps(crow.add(j));
            let mut acc1 = _mm256_loadu_ps(crow.add(j + 8));
            for p in pb..pe {
                let av = _mm256_set1_ps(*arow.add(p));
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(p * n + j)), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(p * n + j + 8)), acc1);
            }
            _mm256_storeu_ps(crow.add(j), acc0);
            _mm256_storeu_ps(crow.add(j + 8), acc1);
            j += 16;
        }
        while j + 8 <= je {
            let mut acc = _mm256_loadu_ps(crow.add(j));
            for p in pb..pe {
                acc = _mm256_fmadd_ps(
                    _mm256_set1_ps(*arow.add(p)),
                    _mm256_loadu_ps(bp.add(p * n + j)),
                    acc,
                );
            }
            _mm256_storeu_ps(crow.add(j), acc);
            j += 8;
        }
        while j < je {
            let mut s = *crow.add(j);
            for p in pb..pe {
                s = (*arow.add(p)).mul_add(*bp.add(p * n + j), s);
            }
            *crow.add(j) = s;
            j += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{BLOCK_K, BLOCK_N};
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// # Safety
    /// NEON is baseline on aarch64; slices must cover the accessed ranges.
    pub(super) unsafe fn axpy_f32_neon(dst: &mut [f32], src: &[f32], a: f32) {
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let av = vdupq_n_f32(a);
        let mut i = 0usize;
        while i + 4 <= len {
            let acc = vfmaq_f32(vld1q_f32(d.add(i)), av, vld1q_f32(s.add(i)));
            vst1q_f32(d.add(i), acc);
            i += 4;
        }
        while i < len {
            *d.add(i) += a * *s.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// NEON is baseline on aarch64; slices must cover the accessed ranges.
    pub(super) unsafe fn dot_f32_neon(a: &[f32], b: &[f32]) -> f32 {
        let len = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= len {
            acc = vfmaq_f32(acc, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            i += 4;
        }
        let mut total = vaddvq_f32(acc);
        while i < len {
            total += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        total
    }

    /// # Safety
    /// NEON is baseline on aarch64; slices must cover the accessed ranges.
    pub(super) unsafe fn i8_axpy_i32_neon(acc: &mut [i32], x: &[i8], w: i32) {
        let len = acc.len();
        let ap = acc.as_mut_ptr();
        let xp = x.as_ptr();
        let mut i = 0usize;
        while i + 8 <= len {
            let bytes = vld1_s8(xp.add(i));
            let x16 = vmovl_s8(bytes);
            let lo = vmovl_s16(vget_low_s16(x16));
            let hi = vmovl_s16(vget_high_s16(x16));
            let cur_lo = vld1q_s32(ap.add(i));
            let cur_hi = vld1q_s32(ap.add(i + 4));
            vst1q_s32(ap.add(i), vmlaq_n_s32(cur_lo, lo, w));
            vst1q_s32(ap.add(i + 4), vmlaq_n_s32(cur_hi, hi, w));
            i += 8;
        }
        while i < len {
            *ap.add(i) += w * *xp.add(i) as i32;
            i += 1;
        }
    }

    /// Register-tiled `c += a * b` over rows `[row_start, row_end)`: 4x8 main
    /// tile (8 q-register accumulators), 1-row remainder, 4-wide and scalar
    /// column tails. Loop nest is k-block -> j-block -> row tiles so each
    /// `BLOCK_K x BLOCK_N` panel of `b` stays cache-resident across the
    /// m-sweep (see [`BLOCK_N`]).
    ///
    /// # Safety
    /// `a` must be at least `row_end * k`, `b` at least `k * n`, `c` at least
    /// `row_end * n` elements.
    pub(super) unsafe fn gemm_accumulate_neon(
        row_start: usize,
        row_end: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut pb = 0usize;
        while pb < k {
            let pe = (pb + BLOCK_K).min(k);
            let mut jb = 0usize;
            while jb < n {
                let je = (jb + BLOCK_N).min(n);
                let mut i = row_start;
                while i + 4 <= row_end {
                    tile_4(ap, bp, cp, i, pb, pe, jb, je, k, n);
                    i += 4;
                }
                while i < row_end {
                    tile_1(ap, bp, cp, i, pb, pe, jb, je, k, n);
                    i += 1;
                }
                jb = je;
            }
            pb = pe;
        }
    }

    /// # Safety
    /// Same contract as [`gemm_accumulate_neon`], with `i + 4 <= row_end` and
    /// `je <= n`.
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_4(
        ap: *const f32,
        bp: *const f32,
        cp: *mut f32,
        i: usize,
        pb: usize,
        pe: usize,
        jb: usize,
        je: usize,
        k: usize,
        n: usize,
    ) {
        let a0 = ap.add(i * k);
        let a1 = ap.add((i + 1) * k);
        let a2 = ap.add((i + 2) * k);
        let a3 = ap.add((i + 3) * k);
        let c0 = cp.add(i * n);
        let c1 = cp.add((i + 1) * n);
        let c2 = cp.add((i + 2) * n);
        let c3 = cp.add((i + 3) * n);
        let mut j = jb;
        while j + 8 <= je {
            let mut acc00 = vld1q_f32(c0.add(j));
            let mut acc01 = vld1q_f32(c0.add(j + 4));
            let mut acc10 = vld1q_f32(c1.add(j));
            let mut acc11 = vld1q_f32(c1.add(j + 4));
            let mut acc20 = vld1q_f32(c2.add(j));
            let mut acc21 = vld1q_f32(c2.add(j + 4));
            let mut acc30 = vld1q_f32(c3.add(j));
            let mut acc31 = vld1q_f32(c3.add(j + 4));
            for p in pb..pe {
                let b0 = vld1q_f32(bp.add(p * n + j));
                let b1 = vld1q_f32(bp.add(p * n + j + 4));
                acc00 = vfmaq_n_f32(acc00, b0, *a0.add(p));
                acc01 = vfmaq_n_f32(acc01, b1, *a0.add(p));
                acc10 = vfmaq_n_f32(acc10, b0, *a1.add(p));
                acc11 = vfmaq_n_f32(acc11, b1, *a1.add(p));
                acc20 = vfmaq_n_f32(acc20, b0, *a2.add(p));
                acc21 = vfmaq_n_f32(acc21, b1, *a2.add(p));
                acc30 = vfmaq_n_f32(acc30, b0, *a3.add(p));
                acc31 = vfmaq_n_f32(acc31, b1, *a3.add(p));
            }
            vst1q_f32(c0.add(j), acc00);
            vst1q_f32(c0.add(j + 4), acc01);
            vst1q_f32(c1.add(j), acc10);
            vst1q_f32(c1.add(j + 4), acc11);
            vst1q_f32(c2.add(j), acc20);
            vst1q_f32(c2.add(j + 4), acc21);
            vst1q_f32(c3.add(j), acc30);
            vst1q_f32(c3.add(j + 4), acc31);
            j += 8;
        }
        while j + 4 <= je {
            let mut acc0 = vld1q_f32(c0.add(j));
            let mut acc1 = vld1q_f32(c1.add(j));
            let mut acc2 = vld1q_f32(c2.add(j));
            let mut acc3 = vld1q_f32(c3.add(j));
            for p in pb..pe {
                let bv = vld1q_f32(bp.add(p * n + j));
                acc0 = vfmaq_n_f32(acc0, bv, *a0.add(p));
                acc1 = vfmaq_n_f32(acc1, bv, *a1.add(p));
                acc2 = vfmaq_n_f32(acc2, bv, *a2.add(p));
                acc3 = vfmaq_n_f32(acc3, bv, *a3.add(p));
            }
            vst1q_f32(c0.add(j), acc0);
            vst1q_f32(c1.add(j), acc1);
            vst1q_f32(c2.add(j), acc2);
            vst1q_f32(c3.add(j), acc3);
            j += 4;
        }
        while j < je {
            let mut s0 = *c0.add(j);
            let mut s1 = *c1.add(j);
            let mut s2 = *c2.add(j);
            let mut s3 = *c3.add(j);
            for p in pb..pe {
                let bv = *bp.add(p * n + j);
                s0 = (*a0.add(p)).mul_add(bv, s0);
                s1 = (*a1.add(p)).mul_add(bv, s1);
                s2 = (*a2.add(p)).mul_add(bv, s2);
                s3 = (*a3.add(p)).mul_add(bv, s3);
            }
            *c0.add(j) = s0;
            *c1.add(j) = s1;
            *c2.add(j) = s2;
            *c3.add(j) = s3;
            j += 1;
        }
    }

    /// # Safety
    /// Same contract as [`gemm_accumulate_neon`], with `i < row_end` and
    /// `je <= n`.
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_1(
        ap: *const f32,
        bp: *const f32,
        cp: *mut f32,
        i: usize,
        pb: usize,
        pe: usize,
        jb: usize,
        je: usize,
        k: usize,
        n: usize,
    ) {
        let arow = ap.add(i * k);
        let crow = cp.add(i * n);
        let mut j = jb;
        while j + 8 <= je {
            let mut acc0 = vld1q_f32(crow.add(j));
            let mut acc1 = vld1q_f32(crow.add(j + 4));
            for p in pb..pe {
                let av = *arow.add(p);
                acc0 = vfmaq_n_f32(acc0, vld1q_f32(bp.add(p * n + j)), av);
                acc1 = vfmaq_n_f32(acc1, vld1q_f32(bp.add(p * n + j + 4)), av);
            }
            vst1q_f32(crow.add(j), acc0);
            vst1q_f32(crow.add(j + 4), acc1);
            j += 8;
        }
        while j + 4 <= je {
            let mut acc = vld1q_f32(crow.add(j));
            for p in pb..pe {
                acc = vfmaq_n_f32(acc, vld1q_f32(bp.add(p * n + j)), *arow.add(p));
            }
            vst1q_f32(crow.add(j), acc);
            j += 4;
        }
        while j < je {
            let mut s = *crow.add(j);
            for p in pb..pe {
                s = (*arow.add(p)).mul_add(*bp.add(p * n + j), s);
            }
            *crow.add(j) = s;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> f32 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    }

    #[test]
    fn scalar_is_always_supported_and_named() {
        assert!(KernelBackend::Scalar.hw_supported());
        assert!(!KernelBackend::Scalar.is_simd());
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2Fma.name(), "avx2fma");
        assert_eq!(KernelBackend::Neon.name(), "neon");
    }

    #[test]
    fn active_backend_is_hardware_supported() {
        let kb = KernelBackend::active();
        assert!(kb.hw_supported());
        assert_eq!(simd_available(), kb.is_simd());
        assert_eq!(active_kernel_set(), kb.name());
    }

    #[test]
    fn axpy_matches_scalar_within_tolerance() {
        for kb in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if !kb.hw_supported() {
                continue;
            }
            for len in [0usize, 1, 3, 7, 8, 13, 64, 100] {
                let mut seed = 42 + len as u64;
                let src: Vec<f32> = (0..len).map(|_| lcg(&mut seed)).collect();
                let mut simd: Vec<f32> = (0..len).map(|_| lcg(&mut seed)).collect();
                let mut scalar = simd.clone();
                axpy_f32(kb, &mut simd, &src, 0.7);
                axpy_f32(KernelBackend::Scalar, &mut scalar, &src, 0.7);
                for (s, r) in simd.iter().zip(&scalar) {
                    assert!(
                        (s - r).abs() <= 1e-6,
                        "axpy mismatch at len {len}: {s} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_matches_scalar_within_tolerance() {
        for kb in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if !kb.hw_supported() {
                continue;
            }
            for len in [0usize, 1, 5, 8, 9, 31, 256] {
                let mut seed = 7 + len as u64;
                let a: Vec<f32> = (0..len).map(|_| lcg(&mut seed)).collect();
                let b: Vec<f32> = (0..len).map(|_| lcg(&mut seed)).collect();
                let simd = dot_f32(kb, &a, &b);
                let scalar = dot_f32(KernelBackend::Scalar, &a, &b);
                assert!(
                    (simd - scalar).abs() <= 1e-4 * (1.0 + scalar.abs()),
                    "dot mismatch at len {len}: {simd} vs {scalar}"
                );
            }
        }
    }

    #[test]
    fn i8_axpy_is_bit_identical() {
        for kb in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if !kb.hw_supported() {
                continue;
            }
            for len in [0usize, 1, 7, 8, 9, 17, 100] {
                let mut seed = 99 + len as u64;
                let x: Vec<i8> = (0..len).map(|_| (lcg(&mut seed) * 200.0) as i8).collect();
                let mut simd: Vec<i32> = (0..len).map(|_| (lcg(&mut seed) * 50.0) as i32).collect();
                let mut scalar = simd.clone();
                i8_axpy_i32(kb, &mut simd, &x, -113);
                i8_axpy_i32(KernelBackend::Scalar, &mut scalar, &x, -113);
                assert_eq!(simd, scalar, "i8 axpy must be exact (len {len})");
            }
        }
    }

    #[test]
    fn i8_axpy2_is_bit_identical() {
        // Extremes (-127 * -128 pairs) stress the i16 intermediate bound.
        for kb in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if !kb.hw_supported() {
                continue;
            }
            for len in [0usize, 1, 15, 16, 17, 33, 100] {
                let mut seed = 3 + len as u64;
                let mut x1: Vec<i8> = (0..len).map(|_| (lcg(&mut seed) * 250.0) as i8).collect();
                let mut x2: Vec<i8> = (0..len).map(|_| (lcg(&mut seed) * 250.0) as i8).collect();
                if len > 2 {
                    x1[0] = i8::MIN;
                    x2[0] = i8::MIN;
                    x1[1] = i8::MAX;
                    x2[1] = i8::MAX;
                }
                let mut simd: Vec<i32> = (0..len).map(|_| (lcg(&mut seed) * 50.0) as i32).collect();
                let mut scalar = simd.clone();
                for (w1, w2) in [(127, 127), (-127, -127), (-113, 89), (0, -1)] {
                    i8_axpy2_i32(kb, &mut simd, &x1, w1, &x2, w2);
                    i8_axpy2_i32(KernelBackend::Scalar, &mut scalar, &x1, w1, &x2, w2);
                    assert_eq!(simd, scalar, "paired i8 axpy must be exact (len {len})");
                }
            }
        }
    }

    #[test]
    fn gemm_tile_matches_scalar_reference() {
        for kb in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if !kb.hw_supported() {
                continue;
            }
            // Geometries exercising every tile path: 4-row main, 1-row
            // remainder, 16/8-wide and scalar column tails.
            for (m, k, n) in [(1, 1, 1), (4, 8, 16), (5, 3, 17), (7, 300, 23), (3, 5, 40)] {
                let mut seed = (m * 31 + k * 7 + n) as u64;
                let a: Vec<f32> = (0..m * k).map(|_| lcg(&mut seed)).collect();
                let b: Vec<f32> = (0..k * n).map(|_| lcg(&mut seed)).collect();
                let mut c_simd = vec![0.0f32; m * n];
                assert!(gemm_accumulate_simd(kb, 0, m, k, n, &a, &b, &mut c_simd));
                let mut c_ref = vec![0.0f32; m * n];
                for i in 0..m {
                    for p in 0..k {
                        for j in 0..n {
                            c_ref[i * n + j] += a[i * k + p] * b[p * n + j];
                        }
                    }
                }
                for (s, r) in c_simd.iter().zip(&c_ref) {
                    assert!(
                        (s - r).abs() <= 1e-4 * (1.0 + r.abs()),
                        "gemm tile mismatch ({m}x{k}x{n}): {s} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_backend_requests_fallback_from_gemm_tile() {
        let a = [1.0f32];
        let b = [2.0f32];
        let mut c = [0.0f32];
        assert!(!gemm_accumulate_simd(
            KernelBackend::Scalar,
            0,
            1,
            1,
            1,
            &a,
            &b,
            &mut c
        ));
        assert_eq!(c[0], 0.0);
    }
}
