//! Convolution kernels: reference, sliding-window, im2col and 1×1-as-GEMM paths.
//!
//! These are the algorithms that populate MNN's *convolution scheme pool*
//! (paper Section 3.2, Eq. 3): the pre-inference stage picks, per layer, between the
//! sliding-window kernel, a Winograd variant (see [`crate::winograd`]) and the
//! Strassen-backed 1×1 path, based on the arithmetic cost model.
//!
//! All kernels consume/produce NCHW `f32` buffers; `mnn-backend` handles packing.

use crate::gemm::gemm_mt_with;
use crate::simd::{axpy_f32, KernelBackend};
use crate::strassen::strassen;

/// Padding policy for convolution/pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadMode {
    /// Explicit symmetric padding given by `pad_h` / `pad_w`.
    #[default]
    Explicit,
    /// TensorFlow-style `SAME` padding: output spatial size = ceil(input / stride).
    Same,
    /// No padding (`VALID`).
    Valid,
}

/// Hyper-parameters of a 2-D convolution.
///
/// The tuple quoted in the paper's Table 1, `(k, ic, oc, size)`, maps to
/// `kernel_h = kernel_w = k`, `in_channels = ic`, `out_channels = oc` and a square
/// spatial input of side `size`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding (each side) when `pad_mode == Explicit`.
    pub pad_h: usize,
    /// Horizontal zero padding (each side) when `pad_mode == Explicit`.
    pub pad_w: usize,
    /// Vertical dilation.
    pub dilation_h: usize,
    /// Horizontal dilation.
    pub dilation_w: usize,
    /// Number of groups (`in_channels` for a depthwise convolution).
    pub groups: usize,
    /// Padding policy.
    pub pad_mode: PadMode,
    /// Whether a bias vector of length `out_channels` is added.
    pub has_bias: bool,
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams {
            in_channels: 1,
            out_channels: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
            dilation_h: 1,
            dilation_w: 1,
            groups: 1,
            pad_mode: PadMode::Explicit,
            has_bias: false,
        }
    }
}

impl ConvParams {
    /// Convenience constructor for a square-kernel convolution with explicit padding,
    /// stride 1 and dilation 1 (the common case in the paper's experiments).
    pub fn square(in_channels: usize, out_channels: usize, kernel: usize, pad: usize) -> Self {
        ConvParams {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            pad_h: pad,
            pad_w: pad,
            ..ConvParams::default()
        }
    }

    /// Set the stride on both axes (builder style).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride_h = stride;
        self.stride_w = stride;
        self
    }

    /// Set the dilation on both axes (builder style).
    pub fn with_dilation(mut self, dilation: usize) -> Self {
        self.dilation_h = dilation;
        self.dilation_w = dilation;
        self
    }

    /// Mark this convolution as depthwise (`groups == in_channels == out_channels`).
    pub fn depthwise(mut self) -> Self {
        self.groups = self.in_channels;
        self
    }

    /// Effective kernel extent along the height axis, accounting for dilation.
    pub fn effective_kernel_h(&self) -> usize {
        (self.kernel_h - 1) * self.dilation_h + 1
    }

    /// Effective kernel extent along the width axis, accounting for dilation.
    pub fn effective_kernel_w(&self) -> usize {
        (self.kernel_w - 1) * self.dilation_w + 1
    }

    /// Resolved padding `(pad_h, pad_w)` for an input of the given spatial size.
    pub fn resolve_padding(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        match self.pad_mode {
            PadMode::Explicit => (self.pad_h, self.pad_w),
            PadMode::Valid => (0, 0),
            PadMode::Same => {
                let out_h = in_h.div_ceil(self.stride_h);
                let out_w = in_w.div_ceil(self.stride_w);
                let needed_h =
                    ((out_h - 1) * self.stride_h + self.effective_kernel_h()).saturating_sub(in_h);
                let needed_w =
                    ((out_w - 1) * self.stride_w + self.effective_kernel_w()).saturating_sub(in_w);
                (needed_h / 2, needed_w / 2)
            }
        }
    }

    /// Output spatial size `(out_h, out_w)` for an input of size `(in_h, in_w)`.
    pub fn output_size(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        if self.pad_mode == PadMode::Same {
            return (in_h.div_ceil(self.stride_h), in_w.div_ceil(self.stride_w));
        }
        let (pad_h, pad_w) = self.resolve_padding(in_h, in_w);
        let out_h =
            (in_h + 2 * pad_h).saturating_sub(self.effective_kernel_h()) / self.stride_h + 1;
        let out_w =
            (in_w + 2 * pad_w).saturating_sub(self.effective_kernel_w()) / self.stride_w + 1;
        (out_h, out_w)
    }

    /// Number of scalar multiplications a direct convolution performs for an input
    /// of size `(in_h, in_w)`. This is the `MUL` term of the paper's cost model
    /// (Eq. 5).
    pub fn mul_count(&self, in_h: usize, in_w: usize) -> usize {
        let (out_h, out_w) = self.output_size(in_h, in_w);
        let ic_per_group = self.in_channels / self.groups;
        out_h * out_w * self.out_channels * ic_per_group * self.kernel_h * self.kernel_w
    }

    /// Whether this is a 1×1, stride-1, undilated convolution — the case MNN lowers
    /// to a large matrix multiplication accelerated by Strassen.
    pub fn is_pointwise(&self) -> bool {
        self.kernel_h == 1
            && self.kernel_w == 1
            && self.stride_h == 1
            && self.stride_w == 1
            && self.dilation_h == 1
            && self.dilation_w == 1
            && self.groups == 1
    }

    /// Whether this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.groups > 1 && self.groups == self.in_channels && self.groups == self.out_channels
    }

    /// Whether the Winograd family `F(n×n, k×k)` applies to this convolution:
    /// square kernel of size ≥ 2, unit stride and dilation, no grouping.
    ///
    /// This is the applicability rule shared by the cost model, the backend's
    /// default scheme choice and the auto-tuner's candidate enumeration.
    pub fn winograd_applicable(&self) -> bool {
        self.kernel_h == self.kernel_w
            && self.stride_h == 1
            && self.stride_w == 1
            && self.dilation_h == 1
            && self.dilation_w == 1
            && self.groups == 1
            && self.kernel_h >= 2
    }

    /// Whether the im2col + GEMM lowering applies (any ungrouped convolution).
    pub fn im2col_applicable(&self) -> bool {
        self.groups == 1
    }

    /// Length of the weight buffer: `oc * ic/groups * kh * kw`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * (self.in_channels / self.groups) * self.kernel_h * self.kernel_w
    }
}

/// Reference convolution: direct 7-deep loop over NCHW buffers. Slow but obviously
/// correct; every other convolution kernel is tested against it.
///
/// `input` is `[batch, ic, in_h, in_w]`, `weight` is `[oc, ic/groups, kh, kw]`,
/// `bias` is `[oc]` or empty, and the returned buffer is `[batch, oc, out_h, out_w]`.
///
/// # Panics
///
/// Panics if buffer lengths do not match the parameters.
pub fn conv2d_reference(
    params: &ConvParams,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    validate(params, batch, in_h, in_w, input, weight, bias);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let ic_per_group = params.in_channels / params.groups;
    let oc_per_group = params.out_channels / params.groups;
    let mut output = vec![0.0f32; batch * params.out_channels * out_h * out_w];

    for b in 0..batch {
        for oc in 0..params.out_channels {
            let group = oc / oc_per_group;
            let bias_v = if params.has_bias { bias[oc] } else { 0.0 };
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = bias_v;
                    for ic in 0..ic_per_group {
                        let in_c = group * ic_per_group + ic;
                        for ky in 0..params.kernel_h {
                            let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                                - pad_h as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            for kx in 0..params.kernel_w {
                                let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                    - pad_w as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                let in_idx = ((b * params.in_channels + in_c) * in_h + iy as usize)
                                    * in_w
                                    + ix as usize;
                                let w_idx = ((oc * ic_per_group + ic) * params.kernel_h + ky)
                                    * params.kernel_w
                                    + kx;
                                acc += input[in_idx] * weight[w_idx];
                            }
                        }
                    }
                    let out_idx = ((b * params.out_channels + oc) * out_h + oy) * out_w + ox;
                    output[out_idx] = acc;
                }
            }
        }
    }
    output
}

/// Sliding-window convolution: the "case-by-case" style direct kernel with the
/// spatial loops innermost and the multiply-accumulate over a contiguous input row,
/// multi-threaded over output channels.
///
/// This is the `Sliding` scheme of the paper's Table 1.
///
/// # Panics
///
/// Panics if buffer lengths do not match the parameters.
pub fn conv2d_sliding_window(
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    validate(params, batch, in_h, in_w, input, weight, bias);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let ic_per_group = params.in_channels / params.groups;
    let oc_per_group = params.out_channels / params.groups;
    let mut output = vec![0.0f32; batch * params.out_channels * out_h * out_w];
    let out_plane = out_h * out_w;

    crate::parallel::parallel_chunks_mut(threads, &mut output, out_plane, |plane_index, planes| {
        for (p, plane) in planes.chunks_mut(out_plane).enumerate() {
            let global = plane_index + p;
            let b = global / params.out_channels;
            let oc = global % params.out_channels;
            let group = oc / oc_per_group;
            let bias_v = if params.has_bias { bias[oc] } else { 0.0 };
            plane.fill(bias_v);
            for ic in 0..ic_per_group {
                let in_c = group * ic_per_group + ic;
                let in_plane =
                    &input[((b * params.in_channels + in_c) * in_h * in_w)..][..in_h * in_w];
                let w_base = (oc * ic_per_group + ic) * params.kernel_h * params.kernel_w;
                for ky in 0..params.kernel_h {
                    for kx in 0..params.kernel_w {
                        let wv = weight[w_base + ky * params.kernel_w + kx];
                        if wv == 0.0 {
                            continue;
                        }
                        for oy in 0..out_h {
                            let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                                - pad_h as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            let in_row = &in_plane[iy as usize * in_w..][..in_w];
                            let out_row = &mut plane[oy * out_w..][..out_w];
                            for ox in 0..out_w {
                                let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                    - pad_w as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                out_row[ox] += wv * in_row[ix as usize];
                            }
                        }
                    }
                }
            }
        }
    });
    output
}

/// im2col + GEMM convolution: unfolds input patches into a matrix and computes the
/// convolution as `[oc, ic*kh*kw] × [ic*kh*kw, out_h*out_w]`.
///
/// # Panics
///
/// Panics if buffer lengths do not match the parameters, or if `groups != 1`
/// (grouped convolutions take the sliding-window or depthwise path).
pub fn conv2d_im2col(
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    conv2d_im2col_with(
        KernelBackend::Scalar,
        params,
        threads,
        batch,
        in_h,
        in_w,
        input,
        weight,
        bias,
    )
}

/// [`conv2d_im2col`] with an explicit [`KernelBackend`] for the GEMM stage.
///
/// The unfold stage is identical across backends; only the `[oc, ic*kh*kw] ×
/// [ic*kh*kw, out_h*out_w]` product dispatches to the SIMD micro-kernels.
///
/// # Panics
///
/// Same contract as [`conv2d_im2col`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_im2col_with(
    kb: KernelBackend,
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert_eq!(params.groups, 1, "im2col path requires groups == 1");
    validate(params, batch, in_h, in_w, input, weight, bias);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let k_dim = params.in_channels * params.kernel_h * params.kernel_w;
    let n_dim = out_h * out_w;
    let mut output = vec![0.0f32; batch * params.out_channels * n_dim];
    let mut col = vec![0.0f32; k_dim * n_dim];

    for b in 0..batch {
        // im2col
        col.fill(0.0);
        for ic in 0..params.in_channels {
            let in_plane = &input[((b * params.in_channels + ic) * in_h * in_w)..][..in_h * in_w];
            for ky in 0..params.kernel_h {
                for kx in 0..params.kernel_w {
                    let row = (ic * params.kernel_h + ky) * params.kernel_w + kx;
                    let col_row = &mut col[row * n_dim..(row + 1) * n_dim];
                    for oy in 0..out_h {
                        let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                            - pad_h as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for ox in 0..out_w {
                            let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                - pad_w as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            col_row[oy * out_w + ox] = in_plane[iy as usize * in_w + ix as usize];
                        }
                    }
                }
            }
        }
        // GEMM: [oc, k_dim] x [k_dim, n_dim]
        let out_block =
            &mut output[b * params.out_channels * n_dim..][..params.out_channels * n_dim];
        gemm_mt_with(
            kb,
            threads,
            params.out_channels,
            k_dim,
            n_dim,
            weight,
            &col,
            out_block,
        );
        if params.has_bias {
            for oc in 0..params.out_channels {
                let bias_v = bias[oc];
                for v in &mut out_block[oc * n_dim..(oc + 1) * n_dim] {
                    *v += bias_v;
                }
            }
        }
    }
    output
}

/// 1×1 convolution lowered to a large matrix multiplication
/// `[oc, ic] × [ic, h*w]`, accelerated with the Strassen kernel when the paper's
/// Eq. 9 condition says the recursion pays off.
///
/// # Panics
///
/// Panics if the convolution is not pointwise or buffer lengths are wrong.
pub fn conv2d_1x1_strassen(
    params: &ConvParams,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert!(
        params.is_pointwise(),
        "conv2d_1x1_strassen requires a 1x1 s1 d1 convolution"
    );
    validate(params, batch, in_h, in_w, input, weight, bias);
    let spatial = in_h * in_w;
    let mut output = vec![0.0f32; batch * params.out_channels * spatial];
    for b in 0..batch {
        let in_block = &input[b * params.in_channels * spatial..][..params.in_channels * spatial];
        let out_block =
            &mut output[b * params.out_channels * spatial..][..params.out_channels * spatial];
        // weight is [oc, ic] (kh = kw = 1), input block is [ic, spatial].
        strassen(
            params.out_channels,
            params.in_channels,
            spatial,
            weight,
            in_block,
            out_block,
        );
        if params.has_bias {
            for oc in 0..params.out_channels {
                let bias_v = bias[oc];
                for v in &mut out_block[oc * spatial..(oc + 1) * spatial] {
                    *v += bias_v;
                }
            }
        }
    }
    output
}

/// Depthwise convolution (each channel convolved with its own kernel).
///
/// # Panics
///
/// Panics if the parameters do not describe a depthwise convolution.
pub fn conv2d_depthwise(
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert!(
        params.is_depthwise(),
        "conv2d_depthwise requires groups == in_channels == out_channels"
    );
    conv2d_sliding_window(params, threads, batch, in_h, in_w, input, weight, bias)
}

/// [`conv2d_depthwise`] with an explicit [`KernelBackend`].
///
/// With a SIMD backend and unit column stride/dilation, each kernel tap
/// becomes one vector axpy over the valid output row span (`out_row += wv *
/// in_row[..]`); strided/dilated taps keep the scalar gather. Results differ
/// from scalar only by FMA rounding per element.
///
/// # Panics
///
/// Panics if the parameters do not describe a depthwise convolution or buffer
/// lengths are wrong.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_depthwise_with(
    kb: KernelBackend,
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert!(
        params.is_depthwise(),
        "conv2d_depthwise requires groups == in_channels == out_channels"
    );
    if !kb.is_simd() {
        return conv2d_sliding_window(params, threads, batch, in_h, in_w, input, weight, bias);
    }
    validate(params, batch, in_h, in_w, input, weight, bias);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let out_plane = out_h * out_w;
    let mut output = vec![0.0f32; batch * params.out_channels * out_plane];
    let row_axpy = params.stride_w == 1 && params.dilation_w == 1;

    crate::parallel::parallel_chunks_mut(threads, &mut output, out_plane, |plane_index, planes| {
        for (p, plane) in planes.chunks_mut(out_plane).enumerate() {
            let global = plane_index + p;
            let b = global / params.out_channels;
            let c = global % params.out_channels;
            let bias_v = if params.has_bias { bias[c] } else { 0.0 };
            plane.fill(bias_v);
            let in_plane = &input[((b * params.in_channels + c) * in_h * in_w)..][..in_h * in_w];
            let w_base = c * params.kernel_h * params.kernel_w;
            for ky in 0..params.kernel_h {
                for kx in 0..params.kernel_w {
                    let wv = weight[w_base + ky * params.kernel_w + kx];
                    if wv == 0.0 {
                        continue;
                    }
                    for oy in 0..out_h {
                        let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                            - pad_h as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        let in_row = &in_plane[iy as usize * in_w..][..in_w];
                        let out_row = &mut plane[oy * out_w..][..out_w];
                        if row_axpy {
                            // ix = ox + kx - pad_w; restrict ox to where ix
                            // lands inside the row, then vector-axpy the span.
                            let shift = kx as isize - pad_w as isize;
                            let ox_start = (-shift).max(0) as usize;
                            let ox_end = out_w.min((in_w as isize - shift).max(0) as usize);
                            if ox_start < ox_end {
                                let ix0 = (ox_start as isize + shift) as usize;
                                axpy_f32(
                                    kb,
                                    &mut out_row[ox_start..ox_end],
                                    &in_row[ix0..ix0 + (ox_end - ox_start)],
                                    wv,
                                );
                            }
                        } else {
                            for ox in 0..out_w {
                                let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                    - pad_w as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                out_row[ox] += wv * in_row[ix as usize];
                            }
                        }
                    }
                }
            }
        }
    });
    output
}

fn validate(
    params: &ConvParams,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) {
    assert!(params.groups >= 1, "groups must be >= 1");
    assert_eq!(
        params.in_channels % params.groups,
        0,
        "in_channels must be divisible by groups"
    );
    assert_eq!(
        params.out_channels % params.groups,
        0,
        "out_channels must be divisible by groups"
    );
    assert_eq!(
        input.len(),
        batch * params.in_channels * in_h * in_w,
        "input buffer length mismatch"
    );
    assert_eq!(
        weight.len(),
        params.weight_len(),
        "weight buffer length mismatch"
    );
    if params.has_bias {
        assert_eq!(
            bias.len(),
            params.out_channels,
            "bias buffer length mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn output_size_basic() {
        let p = ConvParams::square(3, 8, 3, 1);
        assert_eq!(p.output_size(8, 8), (8, 8));
        let p = ConvParams::square(3, 8, 3, 0).with_stride(2);
        assert_eq!(p.output_size(9, 9), (4, 4));
    }

    #[test]
    fn same_padding_matches_tf_convention() {
        let mut p = ConvParams::square(3, 8, 3, 0).with_stride(2);
        p.pad_mode = PadMode::Same;
        assert_eq!(p.output_size(224, 224), (112, 112));
        assert_eq!(p.output_size(7, 7), (4, 4));
    }

    #[test]
    fn pointwise_and_depthwise_detection() {
        assert!(ConvParams::square(16, 32, 1, 0).is_pointwise());
        assert!(!ConvParams::square(16, 32, 3, 1).is_pointwise());
        assert!(ConvParams::square(16, 16, 3, 1).depthwise().is_depthwise());
    }

    #[test]
    fn mul_count_matches_formula() {
        let p = ConvParams::square(3, 16, 3, 1);
        // 224x224 output, 3*3*3 MACs per output element, 16 output channels
        assert_eq!(p.mul_count(224, 224), 224 * 224 * 16 * 3 * 3 * 3);
    }

    #[test]
    fn sliding_window_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(k, ic, oc, size, stride, pad, dil) in &[
            (3usize, 3usize, 8usize, 12usize, 1usize, 1usize, 1usize),
            (3, 4, 6, 11, 2, 1, 1),
            (5, 2, 4, 16, 1, 2, 1),
            (3, 2, 3, 14, 1, 2, 2),
            (1, 8, 16, 9, 1, 0, 1),
            (7, 1, 2, 15, 3, 3, 1),
        ] {
            let mut p = ConvParams::square(ic, oc, k, pad)
                .with_stride(stride)
                .with_dilation(dil);
            p.has_bias = true;
            let input = random(&mut rng, ic * size * size);
            let weight = random(&mut rng, p.weight_len());
            let bias = random(&mut rng, oc);
            let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
            let got = conv2d_sliding_window(&p, 2, 1, size, size, &input, &weight, &bias);
            assert!(max_diff(&expected, &got) < 1e-4, "k={k} ic={ic} oc={oc}");
        }
    }

    #[test]
    fn im2col_matches_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        for &(k, ic, oc, size, stride, pad) in &[
            (3usize, 3usize, 8usize, 10usize, 1usize, 1usize),
            (3, 5, 7, 13, 2, 1),
            (5, 4, 4, 12, 1, 2),
            (1, 6, 12, 8, 1, 0),
        ] {
            let mut p = ConvParams::square(ic, oc, k, pad).with_stride(stride);
            p.has_bias = true;
            let input = random(&mut rng, ic * size * size);
            let weight = random(&mut rng, p.weight_len());
            let bias = random(&mut rng, oc);
            let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
            let got = conv2d_im2col(&p, 2, 1, size, size, &input, &weight, &bias);
            assert!(max_diff(&expected, &got) < 1e-4, "k={k} ic={ic} oc={oc}");
        }
    }

    #[test]
    fn strassen_1x1_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = ConvParams::square(32, 64, 1, 0);
        p.has_bias = true;
        let size = 14;
        let input = random(&mut rng, 32 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let bias = random(&mut rng, 64);
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
        let got = conv2d_1x1_strassen(&p, 1, size, size, &input, &weight, &bias);
        assert!(max_diff(&expected, &got) < 1e-3);
    }

    #[test]
    fn depthwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = ConvParams::square(8, 8, 3, 1).depthwise().with_stride(2);
        p.has_bias = true;
        let size = 13;
        let input = random(&mut rng, 8 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let bias = random(&mut rng, 8);
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
        let got = conv2d_depthwise(&p, 3, 1, size, size, &input, &weight, &bias);
        assert!(max_diff(&expected, &got) < 1e-4);
    }

    #[test]
    fn batch_dimension_is_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = ConvParams::square(3, 4, 3, 1);
        let size = 8;
        let input = random(&mut rng, 2 * 3 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let expected = conv2d_reference(&p, 2, size, size, &input, &weight, &[]);
        let got = conv2d_im2col(&p, 2, 2, size, size, &input, &weight, &[]);
        assert!(max_diff(&expected, &got) < 1e-4);
        let got_sw = conv2d_sliding_window(&p, 2, 2, size, size, &input, &weight, &[]);
        assert!(max_diff(&expected, &got_sw) < 1e-4);
    }

    #[test]
    fn asymmetric_1x7_and_7x1_kernels() {
        // The Inception-v3 operators NCNN leaves unoptimized (paper Fig. 8).
        let mut rng = StdRng::seed_from_u64(10);
        for &(kh, kw) in &[(1usize, 7usize), (7, 1)] {
            let p = ConvParams {
                in_channels: 4,
                out_channels: 6,
                kernel_h: kh,
                kernel_w: kw,
                pad_h: kh / 2,
                pad_w: kw / 2,
                ..ConvParams::default()
            };
            let size = 12;
            let input = random(&mut rng, 4 * size * size);
            let weight = random(&mut rng, p.weight_len());
            let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
            let got = conv2d_sliding_window(&p, 2, 1, size, size, &input, &weight, &[]);
            assert!(max_diff(&expected, &got) < 1e-4, "{kh}x{kw}");
            let got2 = conv2d_im2col(&p, 2, 1, size, size, &input, &weight, &[]);
            assert!(max_diff(&expected, &got2) < 1e-4, "{kh}x{kw} im2col");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_all_paths_agree(
            k in 1usize..5,
            ic in 1usize..5,
            oc in 1usize..5,
            size in 4usize..12,
            stride in 1usize..3,
            seed in 0u64..1000,
        ) {
            let pad = k / 2;
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ConvParams::square(ic, oc, k, pad).with_stride(stride);
            let input = random(&mut rng, ic * size * size);
            let weight = random(&mut rng, p.weight_len());
            let reference = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
            let sliding = conv2d_sliding_window(&p, 2, 1, size, size, &input, &weight, &[]);
            let im2col = conv2d_im2col(&p, 1, 1, size, size, &input, &weight, &[]);
            prop_assert!(max_diff(&reference, &sliding) < 1e-3);
            prop_assert!(max_diff(&reference, &im2col) < 1e-3);
        }
    }
}
