//! Spatial pooling kernels (max / average, plus global pooling).

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolMode {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window (averaging only over in-bounds elements).
    Avg,
}

/// Hyper-parameters of a 2-D pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Pooling mode.
    pub mode: PoolMode,
    /// Window height.
    pub kernel_h: usize,
    /// Window width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical padding (each side).
    pub pad_h: usize,
    /// Horizontal padding (each side).
    pub pad_w: usize,
    /// When `true`, the window covers the whole spatial extent (global pooling) and
    /// `kernel_*`/`stride_*` are ignored.
    pub global: bool,
}

impl PoolParams {
    /// Max pooling with a square window, stride equal to the window, no padding.
    pub fn max(kernel: usize) -> Self {
        PoolParams {
            mode: PoolMode::Max,
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: kernel,
            stride_w: kernel,
            pad_h: 0,
            pad_w: 0,
            global: false,
        }
    }

    /// Average pooling with a square window, stride equal to the window, no padding.
    pub fn avg(kernel: usize) -> Self {
        PoolParams {
            mode: PoolMode::Avg,
            ..PoolParams::max(kernel)
        }
    }

    /// Global average pooling (used as the classifier head of most zoo networks).
    pub fn global_avg() -> Self {
        PoolParams {
            mode: PoolMode::Avg,
            global: true,
            ..PoolParams::max(1)
        }
    }

    /// Builder-style stride override (both axes).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride_h = stride;
        self.stride_w = stride;
        self
    }

    /// Builder-style padding override (both axes).
    pub fn with_pad(mut self, pad: usize) -> Self {
        self.pad_h = pad;
        self.pad_w = pad;
        self
    }

    /// Output spatial size for an input of size `(in_h, in_w)`.
    pub fn output_size(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        if self.global {
            return (1, 1);
        }
        let out_h = (in_h + 2 * self.pad_h).saturating_sub(self.kernel_h) / self.stride_h + 1;
        let out_w = (in_w + 2 * self.pad_w).saturating_sub(self.kernel_w) / self.stride_w + 1;
        (out_h, out_w)
    }
}

/// 2-D pooling over an NCHW buffer. Returns `[batch, channels, out_h, out_w]`.
///
/// # Panics
///
/// Panics if `input.len() != batch * channels * in_h * in_w`.
pub fn pool2d(
    params: &PoolParams,
    batch: usize,
    channels: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
) -> Vec<f32> {
    assert_eq!(
        input.len(),
        batch * channels * in_h * in_w,
        "input length mismatch"
    );
    let (kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w) = if params.global {
        (in_h, in_w, 1, 1, 0, 0)
    } else {
        (
            params.kernel_h,
            params.kernel_w,
            params.stride_h,
            params.stride_w,
            params.pad_h,
            params.pad_w,
        )
    };
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let mut output = vec![0.0f32; batch * channels * out_h * out_w];
    for b in 0..batch {
        for c in 0..channels {
            let plane = &input[(b * channels + c) * in_h * in_w..][..in_h * in_w];
            let out_plane = &mut output[(b * channels + c) * out_h * out_w..][..out_h * out_w];
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = match params.mode {
                        PoolMode::Max => f32::NEG_INFINITY,
                        PoolMode::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for ky in 0..kernel_h {
                        let iy = (oy * stride_h + ky) as isize - pad_h as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for kx in 0..kernel_w {
                            let ix = (ox * stride_w + kx) as isize - pad_w as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            let v = plane[iy as usize * in_w + ix as usize];
                            match params.mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    out_plane[oy * out_w + ox] = match params.mode {
                        PoolMode::Max => {
                            if count == 0 {
                                0.0
                            } else {
                                acc
                            }
                        }
                        PoolMode::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                acc / count as f32
                            }
                        }
                    };
                }
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_pool_2x2() {
        // 1x1x4x4 input
        let input: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let out = pool2d(&PoolParams::max(2), 1, 1, 4, 4, &input);
        assert_eq!(out, vec![6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let input: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let out = pool2d(&PoolParams::avg(2), 1, 1, 4, 4, &input);
        assert_eq!(out, vec![3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn global_avg_pool_reduces_to_one_value_per_channel() {
        let input: Vec<f32> = (0..2 * 3 * 4).map(|v| v as f32).collect();
        let out = pool2d(&PoolParams::global_avg(), 1, 2, 3, 4, &input);
        assert_eq!(out.len(), 2);
        let mean0: f32 = input[..12].iter().sum::<f32>() / 12.0;
        let mean1: f32 = input[12..].iter().sum::<f32>() / 12.0;
        assert!((out[0] - mean0).abs() < 1e-5);
        assert!((out[1] - mean1).abs() < 1e-5);
    }

    #[test]
    fn padded_avg_counts_only_valid_elements() {
        // 1x1x2x2 input with pad 1, window 3, stride 2: the corner windows cover
        // exactly the 2x2 valid area with different counts.
        let params = PoolParams::avg(3).with_stride(2).with_pad(1);
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let out = pool2d(&params, 1, 1, 2, 2, &input);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn strided_max_pool_with_padding() {
        let params = PoolParams::max(3).with_stride(2).with_pad(1);
        let input: Vec<f32> = (1..=25).map(|v| v as f32).collect(); // 5x5
        let out = pool2d(&params, 1, 1, 5, 5, &input);
        assert_eq!(params.output_size(5, 5), (3, 3));
        assert_eq!(
            out,
            vec![7.0, 9.0, 10.0, 17.0, 19.0, 20.0, 22.0, 24.0, 25.0]
        );
    }

    #[test]
    fn output_size_formula() {
        assert_eq!(PoolParams::max(2).output_size(224, 224), (112, 112));
        assert_eq!(
            PoolParams::max(3).with_stride(2).output_size(112, 112),
            (55, 55)
        );
        assert_eq!(PoolParams::global_avg().output_size(7, 7), (1, 1));
    }

    proptest! {
        #[test]
        fn prop_max_pool_never_exceeds_input_max(
            h in 2usize..10, w in 2usize..10, k in 1usize..4,
            values in proptest::collection::vec(-10.0f32..10.0, 100)
        ) {
            let k = k.min(h).min(w);
            let input = &values[..h * w];
            let params = PoolParams::max(k);
            let out = pool2d(&params, 1, 1, h, w, input);
            let max_in = input.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.iter().all(|&v| v <= max_in + 1e-6));
        }

        #[test]
        fn prop_global_avg_equals_mean(
            c in 1usize..4, h in 1usize..8, w in 1usize..8,
            seed in 0u64..100
        ) {
            let n = c * h * w;
            let input: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 17) as f32).collect();
            let out = pool2d(&PoolParams::global_avg(), 1, c, h, w, &input);
            for ci in 0..c {
                let mean: f32 = input[ci * h * w..(ci + 1) * h * w].iter().sum::<f32>() / (h * w) as f32;
                prop_assert!((out[ci] - mean).abs() < 1e-4);
            }
        }
    }
}
