//! Tiled Winograd convolution (`F(n×n, k×k)`), following Fig. 4 of the paper.
//!
//! The channel-wise Hadamard product of Eq. 6 is restructured into one
//! `[tiles, ic] × [ic, oc]` GEMM per transform position, which amortizes memory
//! access exactly as the NC4HW4 re-ordering does in the C++ implementation.

use super::generator::{generate, WinogradTransforms};
use crate::conv::ConvParams;
use crate::gemm::gemm_mt_with;
use crate::parallel::parallel_for;
use crate::simd::KernelBackend;

/// Winograd weights transformed once at preparation time (`W' = G·W·Gᵀ` for every
/// `(oc, ic)` kernel tile), together with the transform matrices they were built
/// with.
///
/// This is the *preparation* artifact of the paper's preparation–execution
/// decoupling: computing it once per session — and keeping it across
/// `resize_session` calls whose scheme selection is unchanged — removes the
/// transform from the inference loop entirely.
#[derive(Debug, Clone)]
pub struct PreparedWinogradWeights {
    /// The transform matrices for `F(n×n, k×k)`.
    pub transforms: WinogradTransforms,
    /// Transformed weights, laid out `[alpha*alpha][ic][oc]` row-major per position.
    pub transformed: Vec<f32>,
}

impl PreparedWinogradWeights {
    /// The output tile size `n` the weights were prepared for.
    pub fn tile(&self) -> usize {
        self.transforms.n
    }
}

fn check_winograd_params(params: &ConvParams, tile_n: usize) {
    assert!(
        params.kernel_h == params.kernel_w,
        "Winograd kernel requires a square kernel"
    );
    assert!(
        params.kernel_h >= 2,
        "Winograd kernel requires kernel size >= 2"
    );
    assert_eq!(params.stride_h, 1, "Winograd kernel requires stride 1");
    assert_eq!(params.stride_w, 1, "Winograd kernel requires stride 1");
    assert_eq!(params.dilation_h, 1, "Winograd kernel requires dilation 1");
    assert_eq!(params.dilation_w, 1, "Winograd kernel requires dilation 1");
    assert_eq!(params.groups, 1, "Winograd kernel requires groups == 1");
    assert!(tile_n >= 1, "tile size must be >= 1");
}

/// Run the preparation stage of Winograd convolution: generate the transform
/// matrices for `F(tile_n×tile_n, k×k)` and pre-transform `weight`
/// (`[oc, ic, k, k]`).
///
/// # Panics
///
/// Panics if the parameters are outside the Winograd-applicable set or the weight
/// buffer length does not match.
pub fn prepare_winograd_weights(
    params: &ConvParams,
    tile_n: usize,
    weight: &[f32],
) -> PreparedWinogradWeights {
    check_winograd_params(params, tile_n);
    assert_eq!(
        weight.len(),
        params.weight_len(),
        "weight buffer length mismatch"
    );
    let transforms = generate(tile_n, params.kernel_h);
    let transformed =
        transform_weights(&transforms, params.in_channels, params.out_channels, weight);
    PreparedWinogradWeights {
        transforms,
        transformed,
    }
}

/// Winograd convolution with output tile size `tile_n`.
///
/// Supports stride 1, dilation 1, `groups == 1` and square kernels with
/// `kernel >= 2` — exactly the cases for which the pre-inference scheme selection
/// (paper Eq. 3) may choose Winograd. Arbitrary explicit padding is supported.
///
/// `input` is NCHW `[batch, ic, in_h, in_w]`, `weight` is `[oc, ic, k, k]`, `bias`
/// is `[oc]` or empty; returns `[batch, oc, out_h, out_w]`.
///
/// The weight transform is performed on every call; sessions that run the same
/// convolution repeatedly should call [`prepare_winograd_weights`] once and
/// [`conv2d_winograd_prepared`] per inference instead.
///
/// # Panics
///
/// Panics if the parameters violate the restrictions above or buffer lengths do not
/// match.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_winograd(
    params: &ConvParams,
    tile_n: usize,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    let prepared = prepare_winograd_weights(params, tile_n, weight);
    conv2d_winograd_prepared(params, &prepared, threads, batch, in_h, in_w, input, bias)
}

/// Winograd convolution running against weights transformed ahead of time by
/// [`prepare_winograd_weights`] (the execution half of preparation–execution
/// decoupling).
///
/// # Panics
///
/// Panics on buffer-length mismatches (same contract as [`conv2d_winograd`]).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_winograd_prepared(
    params: &ConvParams,
    prepared: &PreparedWinogradWeights,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    conv2d_winograd_prepared_with(
        KernelBackend::Scalar,
        params,
        prepared,
        threads,
        batch,
        in_h,
        in_w,
        input,
        bias,
    )
}

/// [`conv2d_winograd_prepared`] with an explicit [`KernelBackend`]: the
/// input/output transforms and the per-position `[tiles, ic] × [ic, oc]`
/// GEMMs dispatch to the SIMD micro-kernels (tolerance, not bit-identity,
/// vs scalar).
///
/// # Panics
///
/// Same contract as [`conv2d_winograd_prepared`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_winograd_prepared_with(
    kb: KernelBackend,
    params: &ConvParams,
    prepared: &PreparedWinogradWeights,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    let tile_n = prepared.tile();
    check_winograd_params(params, tile_n);
    assert_eq!(
        input.len(),
        batch * params.in_channels * in_h * in_w,
        "input buffer length mismatch"
    );
    if params.has_bias {
        assert_eq!(bias.len(), params.out_channels, "bias length mismatch");
    }

    let transforms = &prepared.transforms;
    let alpha = transforms.alpha;
    let (ic, oc) = (params.in_channels, params.out_channels);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);

    // Tile grid over the output.
    let tiles_h = out_h.div_ceil(tile_n);
    let tiles_w = out_w.div_ceil(tile_n);
    let tiles = tiles_h * tiles_w;

    // Weights were pre-transformed: for each position, a [ic, oc] matrix.
    let transformed_weight = &prepared.transformed;
    assert_eq!(
        transformed_weight.len(),
        alpha * alpha * ic * oc,
        "prepared weights do not match the convolution parameters"
    );

    let mut output = vec![0.0f32; batch * oc * out_h * out_w];

    for b in 0..batch {
        // --- Input transform: src_t[pos][tile * ic + c]
        let mut src_t = vec![0.0f32; alpha * alpha * tiles * ic];
        {
            let in_batch = &input[b * ic * in_h * in_w..][..ic * in_h * in_w];
            // Parallelize over tiles; each tile writes a disjoint column set but the
            // buffer is indexed [pos][tile][c], so give each worker its own tile range
            // and use interior mutability via split writes per position.
            // Simpler: build per-tile local tiles then scatter single-threaded.
            // For performance we parallelize over tiles into a temporary buffer
            // organized [tile][pos][c] and transpose-scatter afterwards.
            let mut per_tile = vec![0.0f32; tiles * alpha * alpha * ic];
            {
                let per_tile_ref = &mut per_tile;
                let transforms_ref = &transforms;
                crate::parallel::parallel_chunks_mut(
                    threads,
                    per_tile_ref,
                    alpha * alpha * ic,
                    |tile_start, chunk| {
                        let mut patch = vec![0.0f32; alpha * alpha];
                        for (t_local, tile_buf) in chunk.chunks_mut(alpha * alpha * ic).enumerate()
                        {
                            let tile = tile_start + t_local;
                            let ty = tile / tiles_w;
                            let tx = tile % tiles_w;
                            let oy0 = ty * tile_n;
                            let ox0 = tx * tile_n;
                            for c in 0..ic {
                                let plane = &in_batch[c * in_h * in_w..][..in_h * in_w];
                                // Extract the alpha x alpha patch (with zero padding).
                                for py in 0..alpha {
                                    let iy = oy0 as isize + py as isize - pad_h as isize;
                                    for px in 0..alpha {
                                        let ix = ox0 as isize + px as isize - pad_w as isize;
                                        patch[py * alpha + px] = if iy >= 0
                                            && iy < in_h as isize
                                            && ix >= 0
                                            && ix < in_w as isize
                                        {
                                            plane[iy as usize * in_w + ix as usize]
                                        } else {
                                            0.0
                                        };
                                    }
                                }
                                let xt = transforms_ref.transform_input_with(kb, &patch);
                                for pos in 0..alpha * alpha {
                                    tile_buf[pos * ic + c] = xt[pos];
                                }
                            }
                        }
                    },
                );
            }
            // Scatter [tile][pos][c] -> [pos][tile][c]
            for tile in 0..tiles {
                for pos in 0..alpha * alpha {
                    let src = &per_tile[(tile * alpha * alpha + pos) * ic..][..ic];
                    let dst = &mut src_t[(pos * tiles + tile) * ic..][..ic];
                    dst.copy_from_slice(src);
                }
            }
        }

        // --- Per-position GEMM: dst_t[pos] = src_t[pos] (tiles x ic) * W'[pos] (ic x oc)
        let mut dst_t = vec![0.0f32; alpha * alpha * tiles * oc];
        {
            let src_ref = &src_t;
            let w_ref = &transformed_weight;
            let dst_ptr = ParallelOut(dst_t.as_mut_ptr());
            let positions = alpha * alpha;
            let per_pos_dst = tiles * oc;
            parallel_for(threads, positions, move |start, end| {
                // Capture the wrapper struct (not its raw-pointer field) so the
                // closure stays `Sync` under edition-2021 disjoint capture.
                let base = dst_ptr;
                for pos in start..end {
                    let src = &src_ref[pos * tiles * ic..][..tiles * ic];
                    let w = &w_ref[pos * ic * oc..][..ic * oc];
                    // SAFETY: each position writes a disjoint [tiles*oc] slice of dst_t.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(base.0.add(pos * per_pos_dst), per_pos_dst)
                    };
                    gemm_mt_with(kb, 1, tiles, ic, oc, src, w, dst);
                }
            });
        }

        // --- Output transform: gather per tile/oc, apply A^T . A, add bias, crop.
        let out_batch_offset = b * oc * out_h * out_w;
        let out_slice = &mut output[out_batch_offset..][..oc * out_h * out_w];
        {
            let dst_ref = &dst_t;
            let transforms_ref = &transforms;
            crate::parallel::parallel_chunks_mut(
                threads,
                out_slice,
                out_h * out_w,
                |oc_start, planes| {
                    let mut prod = vec![0.0f32; alpha * alpha];
                    for (o_local, plane) in planes.chunks_mut(out_h * out_w).enumerate() {
                        let o = oc_start + o_local;
                        let bias_v = if params.has_bias { bias[o] } else { 0.0 };
                        for tile in 0..tiles {
                            let ty = tile / tiles_w;
                            let tx = tile % tiles_w;
                            for pos in 0..alpha * alpha {
                                prod[pos] = dst_ref[(pos * tiles + tile) * oc + o];
                            }
                            let y = transforms_ref.transform_output_with(kb, &prod);
                            let oy0 = ty * tile_n;
                            let ox0 = tx * tile_n;
                            for dy in 0..tile_n {
                                let oy = oy0 + dy;
                                if oy >= out_h {
                                    break;
                                }
                                for dx in 0..tile_n {
                                    let ox = ox0 + dx;
                                    if ox >= out_w {
                                        break;
                                    }
                                    plane[oy * out_w + ox] = y[dy * tile_n + dx] + bias_v;
                                }
                            }
                        }
                    }
                },
            );
        }
    }
    output
}

/// Wrapper making a raw pointer `Send`/`Sync` for the disjoint-position writes above.
struct ParallelOut(*mut f32);
// SAFETY: every worker writes a disjoint region (indexed by transform position), so
// sharing the base pointer across threads is sound.
unsafe impl Send for ParallelOut {}
unsafe impl Sync for ParallelOut {}
impl Copy for ParallelOut {}
impl Clone for ParallelOut {
    fn clone(&self) -> Self {
        *self
    }
}

/// Pre-transform all kernels: returns `[alpha*alpha][ic][oc]` (row-major per position).
///
/// This is the preparation-time work MNN performs once per session; it is written
/// allocation-free (per-worker scratch buffers) and parallelized over output
/// channels because `ic · oc` transform calls dominate otherwise.
fn transform_weights(
    transforms: &WinogradTransforms,
    ic: usize,
    oc: usize,
    weight: &[f32],
) -> Vec<f32> {
    let alpha = transforms.alpha;
    let k = transforms.k;
    let mut out = vec![0.0f32; alpha * alpha * ic * oc];
    let out_ptr = ParallelOut(out.as_mut_ptr());
    let threads = crate::parallel::default_threads();
    parallel_for(threads, oc, move |o_start, o_end| {
        let base = out_ptr;
        let mut gw = vec![0.0f32; alpha * k];
        let mut wt = vec![0.0f32; alpha * alpha];
        for o in o_start..o_end {
            for c in 0..ic {
                let w_tile = &weight[(o * ic + c) * k * k..][..k * k];
                // gw = G (alpha x k) * W (k x k)
                gw.fill(0.0);
                for i in 0..alpha {
                    for p in 0..k {
                        let g_ip = transforms.g[i * k + p];
                        if g_ip == 0.0 {
                            continue;
                        }
                        for j in 0..k {
                            gw[i * k + j] += g_ip * w_tile[p * k + j];
                        }
                    }
                }
                // wt = gw (alpha x k) * G^T  (k x alpha)
                for i in 0..alpha {
                    for j in 0..alpha {
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            acc += gw[i * k + p] * transforms.g[j * k + p];
                        }
                        wt[i * alpha + j] = acc;
                    }
                }
                // SAFETY: each (pos, c, o) index is written exactly once, and the
                // parallel loop partitions `o`, so writes are disjoint.
                for (pos, &value) in wt.iter().enumerate() {
                    unsafe {
                        *base.0.add((pos * ic + c) * oc + o) = value;
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_reference;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn rel_max_diff(a: &[f32], b: &[f32]) -> f32 {
        let scale = a.iter().fold(1.0f32, |m, v| m.max(v.abs()));
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
            / scale
    }

    #[test]
    fn winograd_f2_3x3_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = ConvParams::square(4, 8, 3, 1);
        p.has_bias = true;
        let size = 12;
        let input = random(&mut rng, 4 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let bias = random(&mut rng, 8);
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
        let got = conv2d_winograd(&p, 2, 2, 1, size, size, &input, &weight, &bias);
        assert!(rel_max_diff(&expected, &got) < 1e-3);
    }

    #[test]
    fn winograd_larger_tiles_match_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ConvParams::square(3, 5, 3, 1);
        let size = 17; // not a multiple of the tile size: exercises edge cropping
        let input = random(&mut rng, 3 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
        for tile in [2usize, 3, 4, 6] {
            let got = conv2d_winograd(&p, tile, 3, 1, size, size, &input, &weight, &[]);
            assert!(
                rel_max_diff(&expected, &got) < 2e-3,
                "tile size {tile} diverged"
            );
        }
    }

    #[test]
    fn winograd_5x5_kernel_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ConvParams::square(2, 3, 5, 2);
        let size = 14;
        let input = random(&mut rng, 2 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
        let got = conv2d_winograd(&p, 2, 2, 1, size, size, &input, &weight, &[]);
        assert!(rel_max_diff(&expected, &got) < 2e-3);
    }

    #[test]
    fn winograd_without_padding_and_batched() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ConvParams::square(3, 4, 3, 0);
        let size = 10;
        let input = random(&mut rng, 2 * 3 * size * size);
        let weight = random(&mut rng, p.weight_len());
        let expected = conv2d_reference(&p, 2, size, size, &input, &weight, &[]);
        let got = conv2d_winograd(&p, 4, 2, 2, size, size, &input, &weight, &[]);
        assert!(rel_max_diff(&expected, &got) < 2e-3);
    }

    #[test]
    #[should_panic(expected = "stride 1")]
    fn winograd_rejects_strided_convolution() {
        let p = ConvParams::square(3, 4, 3, 1).with_stride(2);
        conv2d_winograd(
            &p,
            2,
            1,
            1,
            8,
            8,
            &vec![0.0; 3 * 64],
            &vec![0.0; p.weight_len()],
            &[],
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_winograd_matches_reference(
            ic in 1usize..4,
            oc in 1usize..4,
            size in 6usize..14,
            tile in 2usize..5,
            k in 2usize..4,
            seed in 0u64..200,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ConvParams::square(ic, oc, k, k / 2);
            let input = random(&mut rng, ic * size * size);
            let weight = random(&mut rng, p.weight_len());
            let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
            let got = conv2d_winograd(&p, tile, 2, 1, size, size, &input, &weight, &[]);
            prop_assert!(rel_max_diff(&expected, &got) < 5e-3);
        }
    }
}
