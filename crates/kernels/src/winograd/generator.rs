//! The Winograd transform generator.
//!
//! Given an output tile size `n` and kernel size `k`, the generator derives the
//! transform matrices of the bilinear algorithm
//!
//! ```text
//! Y = Aᵀ [ (G·W·Gᵀ) ⊙ (Bᵀ·X·B) ] A          (paper Eq. 6)
//! ```
//!
//! from the interpolation points of the paper's Eq. 8: `0, ±f, ±2f, …` with
//! `f = 0.5`, plus the point at infinity. The construction is the classical
//! Toom–Cook/Winograd one:
//!
//! * `G` evaluates the kernel polynomial at each point (the ∞ row picks its leading
//!   coefficient),
//! * `Bᵀ` dots the input with the coefficients of the Lagrange basis polynomials
//!   (the ∞ row with the coefficients of `M(x) = ∏ (x − pᵢ)`),
//! * `Aᵀ` re-evaluates the interpolated product at the points (∞ column selects the
//!   top output coefficient),
//!
//! which yields an exact algorithm using `(n + k − 1)²` multiplications per 2-D tile.

use crate::simd::{axpy_f32, dot_f32, KernelBackend};

/// Scalar used to spread the interpolation points and minimize numerical error
/// (paper Eq. 8 sets `f = 0.5`).
pub const POINT_SCALE: f64 = 0.5;

/// The Winograd transform matrices for `F(n×n, k×k)`.
///
/// All matrices are stored row-major in `f32`:
/// `a_t` is `n×α`, `g` is `α×k`, `b_t` is `α×α`, with `α = n + k − 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct WinogradTransforms {
    /// Output tile size `n`.
    pub n: usize,
    /// Kernel size `k`.
    pub k: usize,
    /// Input tile size `α = n + k − 1`.
    pub alpha: usize,
    /// Output transform `Aᵀ` (`n × α`).
    pub a_t: Vec<f32>,
    /// Kernel transform `G` (`α × k`).
    pub g: Vec<f32>,
    /// Input transform `Bᵀ` (`α × α`).
    pub b_t: Vec<f32>,
}

impl WinogradTransforms {
    /// Transform a `k×k` kernel tile: `W' = G · W · Gᵀ`, returning an `α×α` tile.
    pub fn transform_kernel(&self, w: &[f32]) -> Vec<f32> {
        assert_eq!(w.len(), self.k * self.k, "kernel tile must be k*k");
        let gw = mat_mul(
            KernelBackend::Scalar,
            self.alpha,
            self.k,
            self.k,
            &self.g,
            w,
        );
        mat_mul_bt(
            KernelBackend::Scalar,
            self.alpha,
            self.k,
            self.alpha,
            &gw,
            &self.g,
        )
    }

    /// Transform an `α×α` input tile: `X' = Bᵀ · X · B`.
    pub fn transform_input(&self, x: &[f32]) -> Vec<f32> {
        self.transform_input_with(KernelBackend::Scalar, x)
    }

    /// [`WinogradTransforms::transform_input`] with an explicit
    /// [`KernelBackend`]: the two small matrix products use the SIMD
    /// axpy/dot primitives (tolerance, not bit-identity, vs scalar).
    pub fn transform_input_with(&self, kb: KernelBackend, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.alpha * self.alpha,
            "input tile must be alpha*alpha"
        );
        let bx = mat_mul(kb, self.alpha, self.alpha, self.alpha, &self.b_t, x);
        mat_mul_bt(kb, self.alpha, self.alpha, self.alpha, &bx, &self.b_t)
    }

    /// Inverse-transform an `α×α` product tile: `Y = Aᵀ · Y' · A`, returning `n×n`.
    pub fn transform_output(&self, y: &[f32]) -> Vec<f32> {
        self.transform_output_with(KernelBackend::Scalar, y)
    }

    /// [`WinogradTransforms::transform_output`] with an explicit
    /// [`KernelBackend`] (see [`WinogradTransforms::transform_input_with`]).
    pub fn transform_output_with(&self, kb: KernelBackend, y: &[f32]) -> Vec<f32> {
        assert_eq!(
            y.len(),
            self.alpha * self.alpha,
            "product tile must be alpha*alpha"
        );
        let ay = mat_mul(kb, self.n, self.alpha, self.alpha, &self.a_t, y);
        mat_mul_bt(kb, self.n, self.alpha, self.n, &ay, &self.a_t)
    }
}

/// `C = A(m×k) · B(k×n)` for small row-major matrices.
fn mat_mul(kb: KernelBackend, m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            axpy_f32(kb, c_row, &b[p * n..(p + 1) * n], av);
        }
    }
    c
}

/// `C = A(m×k) · Bᵀ` where `B` is `n×k` row-major (so `Bᵀ` is `k×n`).
fn mat_mul_bt(kb: KernelBackend, m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            c[i * n + j] = dot_f32(kb, a_row, &b[j * k..(j + 1) * k]);
        }
    }
    c
}

/// The interpolation points of Eq. 8: `0, +f, −f, +2f, −2f, …` (`count` of them).
pub fn interpolation_points(count: usize) -> Vec<f64> {
    let mut points = Vec::with_capacity(count);
    if count == 0 {
        return points;
    }
    points.push(0.0);
    let mut step = 1usize;
    while points.len() < count {
        points.push(step as f64 * POINT_SCALE);
        if points.len() < count {
            points.push(-(step as f64) * POINT_SCALE);
        }
        step += 1;
    }
    points
}

/// Multiply two polynomials given by ascending-degree coefficient vectors.
fn poly_mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Generate the Winograd transforms for `F(n×n, k×k)`.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`. For `n == 1` the transforms degenerate to a
/// direct dot product; the scheme-selection logic never uses Winograd in that case
/// but the matrices are still mathematically valid.
pub fn generate(n: usize, k: usize) -> WinogradTransforms {
    assert!(n >= 1, "output tile size must be >= 1");
    assert!(k >= 1, "kernel size must be >= 1");
    let alpha = n + k - 1;
    let num_finite = alpha - 1;
    let points = interpolation_points(num_finite);

    // --- B^T: rows 0..alpha-1 hold Lagrange basis coefficients, last row holds M(x).
    let mut b_t = vec![0.0f64; alpha * alpha];
    for (r, &p_r) in points.iter().enumerate() {
        // numerator polynomial ∏_{s≠r} (x − p_s) and scalar denominator ∏ (p_r − p_s)
        let mut num = vec![1.0f64];
        let mut denom = 1.0f64;
        for (s, &p_s) in points.iter().enumerate() {
            if s == r {
                continue;
            }
            num = poly_mul(&num, &[-p_s, 1.0]);
            denom *= p_r - p_s;
        }
        for (t, &coeff) in num.iter().enumerate() {
            b_t[r * alpha + t] = coeff / denom;
        }
    }
    if num_finite > 0 || alpha == 1 {
        // M(x) = ∏ (x − p_s), degree alpha-1 (equals 1 when there are no points).
        let mut m_poly = vec![1.0f64];
        for &p_s in &points {
            m_poly = poly_mul(&m_poly, &[-p_s, 1.0]);
        }
        for (t, &coeff) in m_poly.iter().enumerate() {
            b_t[(alpha - 1) * alpha + t] = coeff;
        }
    }

    // --- G: rows are kernel-polynomial evaluations; last row selects the leading coeff.
    let mut g = vec![0.0f64; alpha * k];
    for (r, &p_r) in points.iter().enumerate() {
        let mut power = 1.0f64;
        for j in 0..k {
            g[r * k + j] = power;
            power *= p_r;
        }
    }
    g[(alpha - 1) * k + (k - 1)] = 1.0;

    // --- A^T: columns are output-polynomial evaluations; last column selects the top
    // output coefficient.
    let mut a_t = vec![0.0f64; n * alpha];
    for (r, &p_r) in points.iter().enumerate() {
        let mut power = 1.0f64;
        for i in 0..n {
            a_t[i * alpha + r] = power;
            power *= p_r;
        }
    }
    a_t[(n - 1) * alpha + (alpha - 1)] = 1.0;

    WinogradTransforms {
        n,
        k,
        alpha,
        a_t: a_t.into_iter().map(|v| v as f32).collect(),
        g: g.into_iter().map(|v| v as f32).collect(),
        b_t: b_t.into_iter().map(|v| v as f32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Direct 1-D correlation: y_i = Σ_j d_{i+j} g_j.
    fn correlate_1d(d: &[f32], g: &[f32], n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| g.iter().enumerate().map(|(j, &gv)| gv * d[i + j]).sum())
            .collect()
    }

    /// 1-D Winograd: y = A^T [(G g) ⊙ (B^T d)].
    fn winograd_1d(t: &WinogradTransforms, d: &[f32], g: &[f32]) -> Vec<f32> {
        let alpha = t.alpha;
        let gg: Vec<f32> = (0..alpha)
            .map(|r| (0..t.k).map(|j| t.g[r * t.k + j] * g[j]).sum())
            .collect();
        let bd: Vec<f32> = (0..alpha)
            .map(|r| (0..alpha).map(|c| t.b_t[r * alpha + c] * d[c]).sum())
            .collect();
        let had: Vec<f32> = gg.iter().zip(&bd).map(|(a, b)| a * b).collect();
        (0..t.n)
            .map(|i| (0..alpha).map(|r| t.a_t[i * alpha + r] * had[r]).sum())
            .collect()
    }

    #[test]
    fn points_follow_eq8_pattern() {
        assert_eq!(interpolation_points(0), Vec::<f64>::new());
        assert_eq!(interpolation_points(1), vec![0.0]);
        assert_eq!(interpolation_points(3), vec![0.0, 0.5, -0.5]);
        assert_eq!(interpolation_points(5), vec![0.0, 0.5, -0.5, 1.0, -1.0]);
    }

    #[test]
    fn matrices_have_expected_shapes() {
        let t = generate(2, 3);
        assert_eq!(t.alpha, 4);
        assert_eq!(t.a_t.len(), 2 * 4);
        assert_eq!(t.g.len(), 4 * 3);
        assert_eq!(t.b_t.len(), 4 * 4);
    }

    #[test]
    fn f23_matches_direct_correlation() {
        let t = generate(2, 3);
        let d = [1.0, 2.0, -3.0, 4.0];
        let g = [0.5, -1.0, 2.0];
        let expected = correlate_1d(&d, &g, 2);
        let got = winograd_1d(&t, &d, &g);
        for (e, o) in expected.iter().zip(&got) {
            assert!((e - o).abs() < 1e-4, "{expected:?} vs {got:?}");
        }
    }

    #[test]
    fn many_tile_and_kernel_sizes_are_exact() {
        let mut rng = StdRng::seed_from_u64(42);
        for k in 2..=7usize {
            for n in 1..=6usize {
                let t = generate(n, k);
                let alpha = n + k - 1;
                let d: Vec<f32> = (0..alpha).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let g: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let expected = correlate_1d(&d, &g, n);
                let got = winograd_1d(&t, &d, &g);
                let max_mag = expected.iter().fold(1.0f32, |m, v| m.max(v.abs()));
                for (e, o) in expected.iter().zip(&got) {
                    assert!(
                        (e - o).abs() / max_mag < 1e-2,
                        "F({n},{k}): {expected:?} vs {got:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_dimensional_identity_on_small_tile() {
        // Y = A^T [(G W G^T) ⊙ (B^T X B)] A must equal direct 2-D correlation.
        let mut rng = StdRng::seed_from_u64(7);
        let (n, k) = (2usize, 3usize);
        let t = generate(n, k);
        let alpha = t.alpha;
        let x: Vec<f32> = (0..alpha * alpha)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let w: Vec<f32> = (0..k * k).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let wt = t.transform_kernel(&w);
        let xt = t.transform_input(&x);
        let had: Vec<f32> = wt.iter().zip(&xt).map(|(a, b)| a * b).collect();
        let y = t.transform_output(&had);

        for oy in 0..n {
            for ox in 0..n {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += x[(oy + ky) * alpha + ox + kx] * w[ky * k + kx];
                    }
                }
                assert!((acc - y[oy * n + ox]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn kernel_transform_shape() {
        let t = generate(4, 3);
        let w = vec![1.0f32; 9];
        assert_eq!(t.transform_kernel(&w).len(), t.alpha * t.alpha);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_1d_winograd_equals_direct(
            n in 1usize..6, k in 2usize..6, seed in 0u64..500
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = generate(n, k);
            let alpha = n + k - 1;
            let d: Vec<f32> = (0..alpha).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let g: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = correlate_1d(&d, &g, n);
            let got = winograd_1d(&t, &d, &g);
            let max_mag = expected.iter().fold(1.0f32, |m, v| m.max(v.abs()));
            for (e, o) in expected.iter().zip(&got) {
                prop_assert!((e - o).abs() / max_mag < 2e-2);
            }
        }
    }
}
