//! Winograd convolution: transform-matrix generator and tiled kernel.
//!
//! Most mobile engines hard-code the Winograd `A`, `B`, `G` matrices for a handful of
//! kernel/tile sizes. MNN instead ships a **Winograd generator** (paper Section
//! 3.3.1 (3), Eq. 8) that derives the transforms for *any* output tile size `n` and
//! kernel size `k`, which is what lets the cost model of Eq. 2 freely choose the
//! optimal tile size `n̂` at pre-inference time.
//!
//! * [`WinogradTransforms`] / [`generate`] — the generator itself.
//! * [`conv2d_winograd`] — the tiled `F(n×n, k×k)` convolution of Fig. 4, with the
//!   channel-wise Hadamard product restructured as one GEMM per transform position.

mod generator;
mod kernel;

pub use generator::{generate, WinogradTransforms};
pub use kernel::{
    conv2d_winograd, conv2d_winograd_prepared, conv2d_winograd_prepared_with,
    prepare_winograd_weights, PreparedWinogradWeights,
};

/// Arithmetic cost `C(n)` of Winograd convolution with output tile size `n`,
/// kernel size `k`, `ic` input and `oc` output channels (paper Eq. 2):
///
/// ```text
/// C(n) = 2·ic·(n+k−1)³ + ic·oc·(n+k−1)² + n·(n+k−1)·(2n+k−1)
/// ```
///
/// The first term models the input transform, the second the per-position
/// multiplication (Hadamard-as-GEMM) stage, the third the output transform. The
/// pre-inference stage minimizes this cost over `n` to pick `n̂`.
pub fn winograd_tile_cost(n: usize, k: usize, ic: usize, oc: usize) -> f64 {
    let alpha = (n + k - 1) as f64;
    let (nf, kf, icf, ocf) = (n as f64, k as f64, ic as f64, oc as f64);
    2.0 * icf * alpha * alpha * alpha
        + icf * ocf * alpha * alpha
        + nf * alpha * (2.0 * nf + kf - 1.0)
}

/// The optimal Winograd output tile size `n̂ = argmin_n C(n)` for a `k×k`
/// convolution with `ic`/`oc` channels, searched over `n ∈ [1, max_n]`
/// (paper Eq. 2).
///
/// `C(n)` is a *per-tile* cost while a tile covers `n²` output pixels, so the
/// minimization is over the amortized cost `C(n) / n²` — equivalent to minimizing
/// the total cost `⌊ow·oh/n²⌋ · C(n)` of Eq. 7 for a fixed output size.
///
/// Returning `n̂ = 1` means Winograd degenerates and the sliding-window scheme
/// should be used instead (paper Eq. 3).
pub fn optimal_tile_size(k: usize, ic: usize, oc: usize, max_n: usize) -> usize {
    let max_n = max_n.max(1);
    let amortized = |n: usize| winograd_tile_cost(n, k, ic, oc) / (n * n) as f64;
    (1..=max_n)
        .min_by(|&a, &b| amortized(a).partial_cmp(&amortized(b)).unwrap())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_cost_matches_formula_by_hand() {
        // n = 2, k = 3, ic = 1, oc = 1: alpha = 4
        // C = 2*1*64 + 1*1*16 + 2*4*(4+3-1=6) = 128 + 16 + 48 = 192
        assert_eq!(winograd_tile_cost(2, 3, 1, 1), 192.0);
    }

    #[test]
    fn optimal_tile_grows_with_channel_count() {
        // With many channels the GEMM term dominates and larger tiles win.
        let small = optimal_tile_size(3, 4, 4, 6);
        let large = optimal_tile_size(3, 512, 512, 6);
        assert!(large >= small);
        assert!(large >= 2, "large channel counts should favor Winograd");
    }

    #[test]
    fn optimal_tile_is_within_bounds() {
        for k in [2, 3, 5, 7] {
            for ic in [1, 16, 256] {
                let n = optimal_tile_size(k, ic, ic, 6);
                assert!((1..=6).contains(&n));
            }
        }
    }
}
