//! Normalization kernels: batch normalization (inference mode) and channel scale.

/// Inference-time batch normalization over an NCHW buffer, in place:
///
/// ```text
/// y = gamma * (x - mean) / sqrt(var + eps) + beta
/// ```
///
/// All per-channel parameter slices have `channels` entries.
///
/// # Panics
///
/// Panics if any slice length is inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn batch_norm_inplace(
    data: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    mean: &[f32],
    variance: &[f32],
    gamma: &[f32],
    beta: &[f32],
    epsilon: f32,
) {
    assert_eq!(data.len(), batch * channels * plane, "data length mismatch");
    assert_eq!(mean.len(), channels, "mean length mismatch");
    assert_eq!(variance.len(), channels, "variance length mismatch");
    assert_eq!(gamma.len(), channels, "gamma length mismatch");
    assert_eq!(beta.len(), channels, "beta length mismatch");
    for b in 0..batch {
        for c in 0..channels {
            let scale = gamma[c] / (variance[c] + epsilon).sqrt();
            let shift = beta[c] - mean[c] * scale;
            let start = (b * channels + c) * plane;
            for v in &mut data[start..start + plane] {
                *v = *v * scale + shift;
            }
        }
    }
}

/// Fold batch-norm parameters into an equivalent per-channel `(scale, shift)` pair,
/// the transformation used by the offline Conv+BN fusion pass.
pub fn batch_norm_to_scale_shift(
    mean: &[f32],
    variance: &[f32],
    gamma: &[f32],
    beta: &[f32],
    epsilon: f32,
) -> (Vec<f32>, Vec<f32>) {
    let scale: Vec<f32> = gamma
        .iter()
        .zip(variance)
        .map(|(&g, &v)| g / (v + epsilon).sqrt())
        .collect();
    let shift: Vec<f32> = beta
        .iter()
        .zip(mean)
        .zip(&scale)
        .map(|((&b, &m), &s)| b - m * s)
        .collect();
    (scale, shift)
}

/// Per-channel affine transform over an NCHW buffer, in place: `y = x * scale + shift`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent.
pub fn scale_inplace(
    data: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    scale: &[f32],
    shift: &[f32],
) {
    assert_eq!(data.len(), batch * channels * plane, "data length mismatch");
    assert_eq!(scale.len(), channels, "scale length mismatch");
    assert_eq!(shift.len(), channels, "shift length mismatch");
    for b in 0..batch {
        for c in 0..channels {
            let (s, sh) = (scale[c], shift[c]);
            let start = (b * channels + c) * plane;
            for v in &mut data[start..start + plane] {
                *v = *v * s + sh;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn batch_norm_normalizes_constant_channel() {
        // channel filled with its mean -> output is beta
        let mut data = vec![3.0; 4];
        batch_norm_inplace(&mut data, 1, 1, 4, &[3.0], &[1.0], &[2.0], &[0.5], 1e-5);
        assert!(data.iter().all(|&v| (v - 0.5).abs() < 1e-4));
    }

    #[test]
    fn batch_norm_matches_direct_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let (c, plane) = (3usize, 5usize);
        let data: Vec<f32> = (0..c * plane).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mean: Vec<f32> = (0..c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let var: Vec<f32> = (0..c).map(|_| rng.gen_range(0.1..2.0)).collect();
        let gamma: Vec<f32> = (0..c).map(|_| rng.gen_range(0.5..1.5)).collect();
        let beta: Vec<f32> = (0..c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut got = data.clone();
        batch_norm_inplace(&mut got, 1, c, plane, &mean, &var, &gamma, &beta, 1e-5);
        for ci in 0..c {
            for p in 0..plane {
                let x = data[ci * plane + p];
                let expected = gamma[ci] * (x - mean[ci]) / (var[ci] + 1e-5).sqrt() + beta[ci];
                assert!((got[ci * plane + p] - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn scale_shift_fold_is_equivalent_to_batch_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let (c, plane) = (4usize, 6usize);
        let data: Vec<f32> = (0..c * plane).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mean: Vec<f32> = (0..c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let var: Vec<f32> = (0..c).map(|_| rng.gen_range(0.1..2.0)).collect();
        let gamma: Vec<f32> = (0..c).map(|_| rng.gen_range(0.5..1.5)).collect();
        let beta: Vec<f32> = (0..c).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let mut via_bn = data.clone();
        batch_norm_inplace(&mut via_bn, 1, c, plane, &mean, &var, &gamma, &beta, 1e-5);

        let (scale, shift) = batch_norm_to_scale_shift(&mean, &var, &gamma, &beta, 1e-5);
        let mut via_scale = data;
        scale_inplace(&mut via_scale, 1, c, plane, &scale, &shift);

        for (a, b) in via_bn.iter().zip(&via_scale) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_scale_is_noop() {
        let mut data = vec![1.0, -2.0, 3.0, 4.0];
        let orig = data.clone();
        scale_inplace(&mut data, 1, 2, 2, &[1.0, 1.0], &[0.0, 0.0]);
        assert_eq!(data, orig);
    }

    proptest! {
        #[test]
        fn prop_bn_then_inverse_is_identity(
            plane in 1usize..16, seed in 0u64..200
        ) {
            // applying BN with gamma = sqrt(var), beta = mean recovers the input
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<f32> = (0..plane).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            let mean = rng.gen_range(-2.0f32..2.0);
            let var = rng.gen_range(0.5f32..2.0);
            let mut out = data.clone();
            batch_norm_inplace(&mut out, 1, 1, plane, &[mean], &[var], &[(var + 1e-9).sqrt()], &[mean], 1e-9);
            for (a, b) in data.iter().zip(&out) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
