//! Fully-connected (inner product) kernel.

use crate::gemm::gemm_mt;

/// Fully-connected layer: `y = x · Wᵀ + b`.
///
/// `input` is `[batch, in_features]`, `weight` is `[out_features, in_features]`
/// (the Caffe/ONNX convention), `bias` is `[out_features]` or empty; the result is
/// `[batch, out_features]`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent.
pub fn fully_connected(
    threads: usize,
    batch: usize,
    in_features: usize,
    out_features: usize,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert_eq!(input.len(), batch * in_features, "input length mismatch");
    assert_eq!(
        weight.len(),
        out_features * in_features,
        "weight length mismatch"
    );
    if !bias.is_empty() {
        assert_eq!(bias.len(), out_features, "bias length mismatch");
    }
    // y[b][o] = sum_i x[b][i] * w[o][i]  ==  X (batch x in) * W^T (in x out)
    let weight_t = crate::gemm::transpose(out_features, in_features, weight);
    let mut output = vec![0.0f32; batch * out_features];
    gemm_mt(
        threads,
        batch,
        in_features,
        out_features,
        input,
        &weight_t,
        &mut output,
    );
    if !bias.is_empty() {
        for row in output.chunks_mut(out_features) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_manual_dot_products() {
        // 1 batch, 3 -> 2
        let input = vec![1.0, 2.0, 3.0];
        let weight = vec![
            1.0, 0.0, -1.0, // out 0
            0.5, 0.5, 0.5, // out 1
        ];
        let bias = vec![10.0, -1.0];
        let out = fully_connected(1, 1, 3, 2, &input, &weight, &bias);
        assert_eq!(out, vec![1.0 - 3.0 + 10.0, 3.0 - 1.0]);
    }

    #[test]
    fn works_without_bias_and_with_batches() {
        let mut rng = StdRng::seed_from_u64(1);
        let (batch, inf, outf) = (3usize, 8usize, 5usize);
        let input: Vec<f32> = (0..batch * inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let weight: Vec<f32> = (0..outf * inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let out = fully_connected(2, batch, inf, outf, &input, &weight, &[]);
        for b in 0..batch {
            for o in 0..outf {
                let expected: f32 = (0..inf)
                    .map(|i| input[b * inf + i] * weight[o * inf + i])
                    .sum();
                assert!((out[b * outf + o] - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight length mismatch")]
    fn rejects_bad_weight_shape() {
        fully_connected(1, 1, 3, 2, &[0.0; 3], &[0.0; 5], &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_linear_in_input(
            inf in 1usize..10, outf in 1usize..10, seed in 0u64..100
        ) {
            // f(2x) == 2 f(x) when bias is zero
            let mut rng = StdRng::seed_from_u64(seed);
            let input: Vec<f32> = (0..inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let doubled: Vec<f32> = input.iter().map(|v| v * 2.0).collect();
            let weight: Vec<f32> = (0..outf * inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y1 = fully_connected(1, 1, inf, outf, &input, &weight, &[]);
            let y2 = fully_connected(1, 1, inf, outf, &doubled, &weight, &[]);
            for (a, b) in y1.iter().zip(&y2) {
                prop_assert!((2.0 * a - b).abs() < 1e-4);
            }
        }
    }
}
