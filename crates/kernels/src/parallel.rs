//! Minimal scoped-thread parallelism helpers.
//!
//! MNN's kernels use multi-threading as one of the "schedule" optimizations
//! (Section 3.3). We deliberately avoid a heavyweight runtime: a scoped
//! `std::thread` fan-out over contiguous index ranges is enough for the data-parallel
//! loops in GEMM, Winograd tiling and convolution, and keeps the engine lightweight
//! (one of the paper's stated goals).

/// Split `count` items into at most `threads` contiguous chunks and run `body` on
/// each chunk, in parallel when `threads > 1`.
///
/// `body` receives the half-open range `[start, end)` it is responsible for. The
/// function blocks until all chunks complete. When `threads <= 1` or `count` is
/// small the body is run inline on the calling thread, avoiding spawn overhead.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let total = AtomicUsize::new(0);
/// mnn_kernels::parallel::parallel_for(4, 1000, |start, end| {
///     total.fetch_add(end - start, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(threads: usize, count: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if count == 0 {
        return;
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        body(0, count);
        return;
    }
    // Balanced partitioning: the first `count % threads` chunks get one extra
    // item, so chunk sizes differ by at most 1 and every thread gets work.
    // (A `div_ceil`-sized chunk would leave threads idle: count=9, threads=8
    // used to produce five chunks of 2,2,2,2,1 with three threads unused.)
    let base = count / threads;
    let rem = count % threads;
    std::thread::scope(|scope| {
        let mut start = 0usize;
        for t in 0..threads {
            let end = start + base + usize::from(t < rem);
            let body = &body;
            scope.spawn(move || body(start, end));
            start = end;
        }
    });
}

/// Like [`parallel_for`], but hands each worker a disjoint mutable slice of `data`
/// split along the first axis in chunks of `stride` elements.
///
/// This is the pattern used by kernels that write disjoint output rows/blocks
/// concurrently (e.g. one output row of a GEMM per task).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `stride`.
pub fn parallel_chunks_mut<T, F>(threads: usize, data: &mut [T], stride: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        data.len() % stride,
        0,
        "data length must be a multiple of stride"
    );
    let count = data.len() / stride;
    if count == 0 {
        return;
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        body(0, data);
        return;
    }
    // Same balanced split as `parallel_for`: row counts differ by at most 1
    // across workers, so no thread idles while another carries a double load.
    let base = count / threads;
    let rem = count % threads;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row = 0usize;
        for t in 0..threads {
            let take_rows = base + usize::from(t < rem);
            let (head, tail) = rest.split_at_mut(take_rows * stride);
            let body = &body;
            let start_row = row;
            scope.spawn(move || body(start_row, head));
            row += take_rows;
            rest = tail;
        }
    });
}

/// Number of worker threads to use by default: the number of available CPUs, capped
/// at 4 to mirror the mobile-CPU settings used throughout the paper's evaluation
/// (2- and 4-thread configurations).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 3, 7] {
            for count in [0, 1, 5, 64, 1001] {
                let hits = (0..count).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                parallel_for(threads, count, |s, e| {
                    for i in s..e {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn partitioning_is_balanced_and_uses_every_thread() {
        // Adversarial (count, threads) pairs, including the div_ceil failure
        // case count=9, threads=8 (formerly 5 chunks with 3 threads idle).
        for (count, threads) in [
            (9, 8),
            (10, 4),
            (5, 7),
            (7, 7),
            (1000, 3),
            (3, 2),
            (17, 4),
            (64, 5),
        ] {
            let chunks = std::sync::Mutex::new(Vec::new());
            parallel_for(threads, count, |s, e| {
                chunks.lock().unwrap().push((s, e));
            });
            let mut chunks = chunks.into_inner().unwrap();
            chunks.sort_unstable();
            let expected_chunks = threads.min(count);
            assert_eq!(
                chunks.len(),
                expected_chunks,
                "count={count} threads={threads}: expected {expected_chunks} chunks, got {chunks:?}"
            );
            // Exact, contiguous coverage.
            let mut next = 0;
            for &(s, e) in &chunks {
                assert_eq!(
                    s, next,
                    "gap/overlap at {s} (count={count} threads={threads})"
                );
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, count);
            // Balanced: sizes differ by at most 1.
            let sizes: Vec<usize> = chunks.iter().map(|&(s, e)| e - s).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(
                max - min <= 1,
                "unbalanced sizes {sizes:?} for count={count} threads={threads}"
            );
        }
    }

    #[test]
    fn chunks_mut_partitioning_is_balanced() {
        for (rows, threads, stride) in [(9, 8, 3), (10, 4, 2), (5, 7, 1), (1000, 3, 4)] {
            let mut data = vec![0usize; rows * stride];
            let chunks = std::sync::Mutex::new(Vec::new());
            parallel_chunks_mut(threads, &mut data, stride, |start_row, slice| {
                chunks
                    .lock()
                    .unwrap()
                    .push((start_row, slice.len() / stride));
            });
            let mut chunks = chunks.into_inner().unwrap();
            chunks.sort_unstable();
            assert_eq!(chunks.len(), threads.min(rows));
            let mut next = 0;
            for &(start, len) in &chunks {
                assert_eq!(start, next);
                assert!(len > 0);
                next += len;
            }
            assert_eq!(next, rows);
            let sizes: Vec<usize> = chunks.iter().map(|&(_, len)| len).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn chunks_mut_writes_disjoint_rows() {
        let mut data = vec![0usize; 12 * 3];
        parallel_chunks_mut(4, &mut data, 3, |start_row, rows| {
            for (i, chunk) in rows.chunks_mut(3).enumerate() {
                for v in chunk.iter_mut() {
                    *v = start_row + i;
                }
            }
        });
        for (row, chunk) in data.chunks(3).enumerate() {
            assert!(chunk.iter().all(|&v| v == row));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of stride")]
    fn chunks_mut_rejects_misaligned_data() {
        let mut data = vec![0u8; 10];
        parallel_chunks_mut(2, &mut data, 3, |_, _| {});
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!(t >= 1);
        assert!(t <= 4);
    }

    #[test]
    fn single_thread_runs_inline() {
        let touched = AtomicUsize::new(0);
        parallel_for(1, 10, |s, e| {
            assert_eq!((s, e), (0, 10));
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 1);
    }
}
