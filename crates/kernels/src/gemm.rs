//! Dense matrix multiplication kernels.
//!
//! MNN's design philosophy (paper Section 3.5) is to spot the compute-intensive unit
//! of smallest granularity — the basic matrix multiplication — and optimize it once,
//! so every operator built on top of it (1×1 convolution, the Winograd Hadamard
//! stage, fully-connected layers, im2col convolution) benefits automatically.
//!
//! Three float GEMM variants are provided:
//!
//! * [`gemm_naive`] — the textbook triple loop, used as the correctness reference.
//! * [`gemm`] — a cache-blocked, register-tiled single-threaded kernel.
//! * [`gemm_mt`] — the blocked kernel parallelized over output row blocks.
//!
//! All compute `C = A × B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, row-major.

use crate::parallel::parallel_chunks_mut;
use crate::simd::{gemm_accumulate_simd, KernelBackend};

/// Blocking factor along the `k` (reduction) dimension.
const BLOCK_K: usize = 256;
/// Blocking factor along the `n` (output column) dimension.
const BLOCK_N: usize = 256;

/// Reference GEMM: `c = a × b` using the naive `O(mnk)` triple loop.
///
/// `a` is `[m, k]`, `b` is `[k, n]` and `c` is `[m, n]`, all row-major. `c` is
/// overwritten.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked single-threaded GEMM: `c = a × b`.
///
/// The loop order (`i`, `p`, `j` inside blocks) streams rows of `B` and accumulates
/// into a row of `C`, which lets the compiler auto-vectorize the innermost loop over
/// `j` — the scalar analogue of the SIMD register blocking the paper performs with
/// NEON intrinsics.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_with(KernelBackend::Scalar, m, k, n, a, b, c);
}

/// [`gemm`] with an explicit [`KernelBackend`]: SIMD backends use the
/// register-tiled AVX2/NEON micro-kernels, `Scalar` is bit-identical to the
/// plain [`gemm`].
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_with(
    kb: KernelBackend,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    c.fill(0.0);
    gemm_accumulate_with(kb, m, k, n, a, b, c);
}

/// Blocked GEMM that *accumulates* into `c` (`c += a × b`).
///
/// Used by Strassen recombination and by kernels that sum partial products over
/// input-channel blocks.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_accumulate(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    gemm_accumulate_scalar(m, k, n, a, b, c);
}

/// [`gemm_accumulate`] with an explicit [`KernelBackend`]. SIMD results differ
/// from scalar only by FMA rounding (same reduction order over `k`); see
/// `tests/simd_conformance.rs` for the documented tolerance.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_accumulate_with(
    kb: KernelBackend,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    if !gemm_accumulate_simd(kb, 0, m, k, n, a, b, c) {
        gemm_accumulate_scalar(m, k, n, a, b, c);
    }
}

fn gemm_accumulate_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p0 in (0..k).step_by(BLOCK_K) {
        let p1 = (p0 + BLOCK_K).min(k);
        for j0 in (0..n).step_by(BLOCK_N) {
            let j1 = (j0 + BLOCK_N).min(n);
            for i in 0..m {
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let a_ip = a[i * k + p];
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    // Innermost loop: c_row[j] += a_ip * b_row[j]; auto-vectorizes.
                    for j in j0..j1 {
                        c_row[j] += a_ip * b_row[j];
                    }
                }
            }
        }
    }
}

/// Multi-threaded blocked GEMM: `c = a × b` using `threads` workers, parallelized
/// over disjoint blocks of output rows.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_mt(threads: usize, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_mt_with(KernelBackend::Scalar, threads, m, k, n, a, b, c);
}

/// [`gemm_mt`] with an explicit [`KernelBackend`] for the per-thread kernel.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_mt_with(
    kb: KernelBackend,
    threads: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    if threads <= 1 || m == 1 {
        gemm_with(kb, m, k, n, a, b, c);
        return;
    }
    parallel_chunks_mut(threads, c, n, |start_row, c_rows| {
        let rows = c_rows.len() / n;
        let a_block = &a[start_row * k..(start_row + rows) * k];
        c_rows.fill(0.0);
        gemm_accumulate_with(kb, rows, k, n, a_block, b, c_rows);
    });
}

/// `c += alpha * a × b + beta * c_prev` convenience used by fused operators.
/// `c` must already hold `c_prev`.
///
/// # Panics
///
/// Panics if any slice length does not match its dimensions.
pub fn gemm_scaled(
    m: usize,
    k: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, k, n, a, b, c);
    let mut tmp = vec![0.0f32; m * n];
    gemm_accumulate(m, k, n, a, b, &mut tmp);
    for (dst, src) in c.iter_mut().zip(tmp.iter()) {
        *dst = alpha * src + beta * *dst;
    }
}

/// Number of scalar multiplications a direct `[m,k]×[k,n]` product performs.
///
/// This is the `MUL` term of the paper's backend cost model (Eq. 5).
pub const fn gemm_mul_count(m: usize, k: usize, n: usize) -> usize {
    m * k * n
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k = {} elements", m * k);
    assert_eq!(b.len(), k * n, "B must be k*n = {} elements", k * n);
    assert_eq!(c.len(), m * n, "C must be m*n = {} elements", m * n);
}

/// Transpose a row-major `[rows, cols]` matrix into a new `[cols, rows]` buffer.
pub fn transpose(rows: usize, cols: usize, src: &[f32]) -> Vec<f32> {
    assert_eq!(src.len(), rows * cols);
    let mut dst = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 33, 9),
            (64, 64, 64),
            (100, 3, 50),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_ref);
            gemm(m, k, n, &a, &b, &mut c);
            assert!(max_diff(&c, &c_ref) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn multithreaded_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(8, 16, 8), (33, 65, 17), (128, 32, 64)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_ref);
            gemm_mt(4, m, k, n, &a, &b, &mut c);
            assert!(max_diff(&c, &c_ref) < 1e-4, "({m},{k},{n})");
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        gemm_accumulate(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn scaled_gemm_applies_alpha_beta() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0, 1.0, 1.0, 1.0];
        gemm_scaled(2, 2, 2, 0.5, &a, &b, 2.0, &mut c);
        assert_eq!(c, vec![3.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let t = transpose(2, 3, &m);
        assert_eq!(t, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose(3, 2, &t), m);
    }

    #[test]
    fn mul_count_is_product() {
        assert_eq!(gemm_mul_count(2, 3, 4), 24);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn identity_multiplication() {
        let n = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, n * n);
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        gemm(n, n, n, &a, &eye, &mut c);
        assert!(max_diff(&c, &a) < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_blocked_and_mt_match_naive(
            m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_ref);
            gemm(m, k, n, &a, &b, &mut c1);
            gemm_mt(3, m, k, n, &a, &b, &mut c2);
            prop_assert!(max_diff(&c1, &c_ref) < 1e-4);
            prop_assert!(max_diff(&c2, &c_ref) < 1e-4);
        }

        #[test]
        fn prop_gemm_distributes_over_addition(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000
        ) {
            // (A1 + A2) * B == A1*B + A2*B
            let mut rng = StdRng::seed_from_u64(seed);
            let a1 = random_matrix(&mut rng, m * k);
            let a2 = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let a_sum: Vec<f32> = a1.iter().zip(&a2).map(|(x, y)| x + y).collect();
            let mut lhs = vec![0.0; m * n];
            gemm(m, k, n, &a_sum, &b, &mut lhs);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm(m, k, n, &a1, &b, &mut c1);
            gemm(m, k, n, &a2, &b, &mut c2);
            let rhs: Vec<f32> = c1.iter().zip(&c2).map(|(x, y)| x + y).collect();
            prop_assert!(max_diff(&lhs, &rhs) < 1e-4);
        }
    }
}
