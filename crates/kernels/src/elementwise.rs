//! Binary element-wise kernels and channel concatenation.

/// Binary element-wise operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Element-wise addition (e.g. residual connections in ResNet).
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl BinaryOp {
    /// Apply the operation to a pair of scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }
}

/// Apply `op` element-wise over two equal-length buffers into a new buffer.
///
/// # Panics
///
/// Panics if the buffer lengths differ.
pub fn binary(op: BinaryOp, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(
        a.len(),
        b.len(),
        "element-wise operands must have equal length"
    );
    a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect()
}

/// Apply `op` element-wise, writing into `a` (`a = op(a, b)`).
///
/// # Panics
///
/// Panics if the buffer lengths differ.
pub fn binary_inplace(op: BinaryOp, a: &mut [f32], b: &[f32]) {
    assert_eq!(
        a.len(),
        b.len(),
        "element-wise operands must have equal length"
    );
    for (x, &y) in a.iter_mut().zip(b) {
        *x = op.apply(*x, y);
    }
}

/// Broadcast-apply `op` with a per-channel scalar over an NCHW buffer.
///
/// `per_channel` has `channels` entries; each is combined with every element of the
/// corresponding channel plane.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent.
pub fn binary_broadcast_channel(
    op: BinaryOp,
    data: &mut [f32],
    per_channel: &[f32],
    batch: usize,
    channels: usize,
    plane: usize,
) {
    assert_eq!(
        per_channel.len(),
        channels,
        "per-channel operand length mismatch"
    );
    assert_eq!(data.len(), batch * channels * plane, "data length mismatch");
    for b in 0..batch {
        for c in 0..channels {
            let v = per_channel[c];
            let start = (b * channels + c) * plane;
            for x in &mut data[start..start + plane] {
                *x = op.apply(*x, v);
            }
        }
    }
}

/// Concatenate NCHW tensors along the channel axis.
///
/// Every input is `[batch, c_i, h, w]`; the output is `[batch, Σc_i, h, w]`.
///
/// # Panics
///
/// Panics if the inputs disagree on `batch`/`h`/`w` (detected via buffer lengths).
pub fn concat_channels(
    inputs: &[(&[f32], usize)],
    batch: usize,
    plane: usize,
) -> (Vec<f32>, usize) {
    let total_c: usize = inputs.iter().map(|(_, c)| c).sum();
    let mut out = vec![0.0f32; batch * total_c * plane];
    for (data, c) in inputs {
        assert_eq!(
            data.len(),
            batch * c * plane,
            "concat input length mismatch"
        );
    }
    for b in 0..batch {
        let mut c_offset = 0usize;
        for (data, c) in inputs {
            let src = &data[b * c * plane..][..c * plane];
            let dst = &mut out[(b * total_c + c_offset) * plane..][..c * plane];
            dst.copy_from_slice(src);
            c_offset += c;
        }
    }
    (out, total_c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_ops_scalar_semantics() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::Min.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn binary_and_inplace_agree() {
        let a = vec![1.0, -2.0, 3.0];
        let b = vec![0.5, 2.0, -1.0];
        let out = binary(BinaryOp::Mul, &a, &b);
        let mut a2 = a.clone();
        binary_inplace(BinaryOp::Mul, &mut a2, &b);
        assert_eq!(out, a2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn binary_rejects_length_mismatch() {
        binary(BinaryOp::Add, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn broadcast_channel_adds_bias_per_channel() {
        // 1 batch, 2 channels, 2 elements per plane
        let mut data = vec![1.0, 1.0, 2.0, 2.0];
        binary_broadcast_channel(BinaryOp::Add, &mut data, &[10.0, 20.0], 1, 2, 2);
        assert_eq!(data, vec![11.0, 11.0, 22.0, 22.0]);
    }

    #[test]
    fn concat_joins_channel_planes() {
        // two inputs with 1 and 2 channels, plane = 2
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0, 5.0, 6.0];
        let (out, c) = concat_channels(&[(&a, 1), (&b, 2)], 1, 2);
        assert_eq!(c, 3);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_respects_batches() {
        // batch 2, plane 1: input A has 1 channel, input B has 1 channel
        let a = vec![1.0, 3.0]; // batches: [1], [3]
        let b = vec![2.0, 4.0];
        let (out, c) = concat_channels(&[(&a, 1), (&b, 1)], 2, 1);
        assert_eq!(c, 2);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in proptest::collection::vec(-10.0f32..10.0, 1..32),
                             seed in 0u64..100) {
            let b: Vec<f32> = a.iter().map(|v| v * (seed as f32 % 7.0 - 3.0)).collect();
            prop_assert_eq!(binary(BinaryOp::Add, &a, &b), binary(BinaryOp::Add, &b, &a));
            prop_assert_eq!(binary(BinaryOp::Mul, &a, &b), binary(BinaryOp::Mul, &b, &a));
            prop_assert_eq!(binary(BinaryOp::Max, &a, &b), binary(BinaryOp::Max, &b, &a));
        }

        #[test]
        fn prop_concat_preserves_total_elements(
            c1 in 1usize..5, c2 in 1usize..5, plane in 1usize..9, batch in 1usize..3
        ) {
            let a = vec![1.0f32; batch * c1 * plane];
            let b = vec![2.0f32; batch * c2 * plane];
            let (out, c) = concat_channels(&[(&a, c1), (&b, c2)], batch, plane);
            prop_assert_eq!(c, c1 + c2);
            prop_assert_eq!(out.len(), a.len() + b.len());
        }
    }
}
