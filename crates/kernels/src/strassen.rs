//! Strassen matrix multiplication with MNN's cost-based recursion control.
//!
//! MNN is, per the paper (Section 3.3.2), the first mobile inference engine to adopt
//! the Strassen algorithm for the large matrix multiplications produced by 1×1
//! convolutions. Strassen trades one expensive multiplication for cheap additions:
//! a `[n, k] × [k, m]` product costs `m·n·k` scalar multiplications directly, but
//! only `7 · (m/2)(n/2)(k/2)` with one level of Strassen plus
//! `4·(m/2)(k/2) + 4·(n/2)(k/2) + 7·(m/2)(n/2)` extra additions.
//!
//! The recursion therefore continues only while the saved multiplications exceed the
//! added additions (paper Eq. 9):
//!
//! ```text
//! m·n·k − 7·(m/2)(n/2)(k/2) > 4·(m/2)(k/2) + 4·(n/2)(k/2) + 7·(m/2)(n/2)
//! ```
//!
//! Matrices with odd dimensions are padded by one zero row/column at the recursion
//! level where the split happens; the padding is stripped when recombining.

use crate::gemm::gemm;

/// Minimum size the half-matrices must keep for another recursion level.
///
/// Eq. 9 compares multiplications against additions only; on a real machine the
/// quadrant extraction / recombination also costs memory traffic, so recursing all
/// the way down to tiny blocks (which Eq. 9 alone would allow) destroys locality.
/// Like the production implementation, recursion stops once the sub-problem drops
/// below the block size at which the base GEMM reaches peak throughput. The
/// threshold is larger than in the NEON-based original because this crate's safe
/// scalar GEMM has a lower FLOP rate, so the O(n²) add/copy overhead of one Strassen
/// level only amortizes on very large products.
pub const MIN_STRASSEN_BLOCK: usize = 512;

/// Decide whether one more level of Strassen recursion pays off for a
/// `[m, k] × [k, n]` product: the saved multiplications must exceed the extra
/// additions (paper Eq. 9) *and* the resulting sub-problem must stay at least
/// [`MIN_STRASSEN_BLOCK`] in every dimension.
///
/// ```
/// use mnn_kernels::strassen::should_recurse;
/// assert!(should_recurse(1024, 1024, 1024));
/// assert!(!should_recurse(16, 16, 16));
/// ```
pub fn should_recurse(m: usize, k: usize, n: usize) -> bool {
    if m / 2 < MIN_STRASSEN_BLOCK || k / 2 < MIN_STRASSEN_BLOCK || n / 2 < MIN_STRASSEN_BLOCK {
        return false;
    }
    let (mh, kh, nh) = ((m / 2) as f64, (k / 2) as f64, (n / 2) as f64);
    let saved = (m * k * n) as f64 - 7.0 * mh * nh * kh;
    let extra = 4.0 * mh * kh + 4.0 * nh * kh + 7.0 * mh * nh;
    saved > extra
}

/// Maximum recursion depth the cost condition will allow for a given problem size.
///
/// Exposed so the pre-inference cost model can estimate Strassen's multiplication
/// count without running the kernel.
pub fn planned_depth(mut m: usize, mut k: usize, mut n: usize) -> usize {
    let mut depth = 0;
    while should_recurse(m, k, n) {
        m = m.div_ceil(2);
        k = k.div_ceil(2);
        n = n.div_ceil(2);
        depth += 1;
    }
    depth
}

/// Number of scalar multiplications Strassen will perform for a `[m,k]×[k,n]`
/// product under the Eq. 9 recursion policy.
pub fn strassen_mul_count(m: usize, k: usize, n: usize) -> usize {
    if !should_recurse(m, k, n) {
        return m * k * n;
    }
    let (mh, kh, nh) = (m.div_ceil(2), k.div_ceil(2), n.div_ceil(2));
    7 * strassen_mul_count(mh, kh, nh)
}

/// Strassen matrix multiplication: `c = a × b` with `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`, all row-major.
///
/// Recursion depth is governed by [`should_recurse`] (paper Eq. 9); the base case
/// falls back to the blocked [`gemm`] kernel.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn strassen(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k elements");
    assert_eq!(b.len(), k * n, "B must be k*n elements");
    assert_eq!(c.len(), m * n, "C must be m*n elements");
    strassen_impl(m, k, n, a, b, c);
}

fn strassen_impl(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if !should_recurse(m, k, n) {
        gemm(m, k, n, a, b, c);
        return;
    }

    // Pad odd dimensions up to even so the four quadrants are equal-sized.
    let mp = m.div_ceil(2) * 2;
    let kp = k.div_ceil(2) * 2;
    let np = n.div_ceil(2) * 2;
    let (mh, kh, nh) = (mp / 2, kp / 2, np / 2);

    // Quadrant extraction (with implicit zero padding), row-wise block copies.
    let sub = |src: &[f32], rows: usize, cols: usize, r0: usize, c0: usize, h: usize, w: usize| {
        let mut out = vec![0.0f32; h * w];
        for r in 0..h {
            let sr = r0 + r;
            if sr >= rows {
                break;
            }
            let copy_w = w.min(cols.saturating_sub(c0));
            if copy_w > 0 {
                out[r * w..r * w + copy_w]
                    .copy_from_slice(&src[sr * cols + c0..sr * cols + c0 + copy_w]);
            }
        }
        out
    };

    let a11 = sub(a, m, k, 0, 0, mh, kh);
    let a12 = sub(a, m, k, 0, kh, mh, kh);
    let a21 = sub(a, m, k, mh, 0, mh, kh);
    let a22 = sub(a, m, k, mh, kh, mh, kh);
    let b11 = sub(b, k, n, 0, 0, kh, nh);
    let b12 = sub(b, k, n, 0, nh, kh, nh);
    let b21 = sub(b, k, n, kh, 0, kh, nh);
    let b22 = sub(b, k, n, kh, nh, kh, nh);

    let add = |x: &[f32], y: &[f32]| -> Vec<f32> { x.iter().zip(y).map(|(p, q)| p + q).collect() };
    let subm = |x: &[f32], y: &[f32]| -> Vec<f32> { x.iter().zip(y).map(|(p, q)| p - q).collect() };

    // The seven Strassen products.
    let mut m1 = vec![0.0f32; mh * nh];
    let mut m2 = vec![0.0f32; mh * nh];
    let mut m3 = vec![0.0f32; mh * nh];
    let mut m4 = vec![0.0f32; mh * nh];
    let mut m5 = vec![0.0f32; mh * nh];
    let mut m6 = vec![0.0f32; mh * nh];
    let mut m7 = vec![0.0f32; mh * nh];

    strassen_impl(mh, kh, nh, &add(&a11, &a22), &add(&b11, &b22), &mut m1);
    strassen_impl(mh, kh, nh, &add(&a21, &a22), &b11, &mut m2);
    strassen_impl(mh, kh, nh, &a11, &subm(&b12, &b22), &mut m3);
    strassen_impl(mh, kh, nh, &a22, &subm(&b21, &b11), &mut m4);
    strassen_impl(mh, kh, nh, &add(&a11, &a12), &b22, &mut m5);
    strassen_impl(mh, kh, nh, &subm(&a21, &a11), &add(&b11, &b12), &mut m6);
    strassen_impl(mh, kh, nh, &subm(&a12, &a22), &add(&b21, &b22), &mut m7);

    // Recombine: C11 = M1 + M4 - M5 + M7, C12 = M3 + M5, C21 = M2 + M4,
    //            C22 = M1 - M2 + M3 + M6 — written row-wise so the inner loops
    //            vectorize and padding rows/columns are simply dropped.
    for qi in 0..mh {
        let m1r = &m1[qi * nh..(qi + 1) * nh];
        let m2r = &m2[qi * nh..(qi + 1) * nh];
        let m3r = &m3[qi * nh..(qi + 1) * nh];
        let m4r = &m4[qi * nh..(qi + 1) * nh];
        let m5r = &m5[qi * nh..(qi + 1) * nh];
        let m6r = &m6[qi * nh..(qi + 1) * nh];
        let m7r = &m7[qi * nh..(qi + 1) * nh];

        if qi < m {
            let c_row = &mut c[qi * n..(qi + 1) * n];
            let left = nh.min(n);
            for j in 0..left {
                c_row[j] = m1r[j] + m4r[j] - m5r[j] + m7r[j];
            }
            for j in nh..n {
                c_row[j] = m3r[j - nh] + m5r[j - nh];
            }
        }
        let bot = mh + qi;
        if bot < m {
            let c_row = &mut c[bot * n..(bot + 1) * n];
            let left = nh.min(n);
            for j in 0..left {
                c_row[j] = m2r[j] + m4r[j];
            }
            for j in nh..n {
                c_row[j] = m1r[j - nh] - m2r[j - nh] + m3r[j - nh] + m6r[j - nh];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn small_matrices_do_not_recurse() {
        assert!(!should_recurse(8, 8, 8));
        assert!(!should_recurse(1, 1024, 1024));
        assert_eq!(planned_depth(16, 16, 16), 0);
    }

    #[test]
    fn large_matrices_recurse_multiple_levels() {
        assert!(should_recurse(1024, 1024, 1024));
        assert!(planned_depth(2048, 2048, 2048) >= 2);
        // Deeper problems plan at least as many levels as shallower ones.
        assert!(planned_depth(2048, 2048, 2048) >= planned_depth(1024, 1024, 1024));
        // Below the block threshold Eq. 9 is not even consulted.
        assert!(!should_recurse(256, 256, 256));
    }

    #[test]
    fn mul_count_is_reduced_for_large_sizes() {
        let direct = 2048usize * 2048 * 2048;
        let strassen_muls = strassen_mul_count(2048, 2048, 2048);
        assert!(strassen_muls < direct);
        // And equals the direct count when no recursion happens.
        assert_eq!(strassen_mul_count(16, 16, 16), 16 * 16 * 16);
    }

    #[test]
    fn strassen_matches_naive_on_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, k, n) = (64, 64, 64);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        let mut c = vec![0.0; m * n];
        gemm_naive(m, k, n, &a, &b, &mut c_ref);
        strassen(m, k, n, &a, &b, &mut c);
        assert!(max_diff(&c, &c_ref) < 1e-3);
    }

    #[test]
    fn strassen_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(65, 33, 47), (127, 64, 65), (100, 101, 99)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_ref);
            strassen(m, k, n, &a, &b, &mut c);
            assert!(max_diff(&c, &c_ref) < 1e-3, "({m},{k},{n})");
        }
    }

    /// Exercises a real recursion level (requires ≥1024-sized operands); only run in
    /// release builds because the naive reference is far too slow unoptimized.
    #[cfg(not(debug_assertions))]
    #[test]
    fn forced_recursion_on_large_size_is_correct() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (1040, 1024, 1056);
        assert!(should_recurse(m, k, n));
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut c_ref = vec![0.0; m * n];
        let mut c = vec![0.0; m * n];
        gemm_naive(m, k, n, &a, &b, &mut c_ref);
        strassen(m, k, n, &a, &b, &mut c);
        assert!(max_diff(&c, &c_ref) < 1e-2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_strassen_equals_naive(
            m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..100
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_ref);
            strassen(m, k, n, &a, &b, &mut c);
            prop_assert!(max_diff(&c, &c_ref) < 1e-3);
        }

        #[test]
        fn prop_recursion_condition_matches_formula(
            m in 2usize..2000, k in 2usize..2000, n in 2usize..2000
        ) {
            let (mh, kh, nh) = ((m / 2) as f64, (k / 2) as f64, (n / 2) as f64);
            let eq9 = (m * k * n) as f64 - 7.0 * mh * nh * kh
                > 4.0 * mh * kh + 4.0 * nh * kh + 7.0 * mh * nh;
            let large_enough = m / 2 >= MIN_STRASSEN_BLOCK
                && k / 2 >= MIN_STRASSEN_BLOCK
                && n / 2 >= MIN_STRASSEN_BLOCK;
            prop_assert_eq!(should_recurse(m, k, n), eq9 && large_enough);
        }
    }
}
