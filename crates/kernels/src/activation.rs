//! Element-wise activation kernels and softmax.

/// Rectified linear unit, in place: `x = max(x, 0)`.
pub fn relu_inplace(data: &mut [f32]) {
    for v in data {
        *v = v.max(0.0);
    }
}

/// ReLU6, in place: `x = min(max(x, 0), 6)` — used by MobileNet-v2.
pub fn relu6_inplace(data: &mut [f32]) {
    for v in data {
        *v = v.clamp(0.0, 6.0);
    }
}

/// Leaky/parametric ReLU, in place: negative inputs are multiplied by `slope`.
pub fn prelu_inplace(data: &mut [f32], slope: f32) {
    for v in data {
        if *v < 0.0 {
            *v *= slope;
        }
    }
}

/// Logistic sigmoid, in place.
pub fn sigmoid_inplace(data: &mut [f32]) {
    for v in data {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// Hyperbolic tangent, in place.
pub fn tanh_inplace(data: &mut [f32]) {
    for v in data {
        *v = v.tanh();
    }
}

/// Numerically-stable softmax over contiguous rows of length `axis_len`, in place.
///
/// The buffer is interpreted as `[rows, axis_len]` row-major.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `axis_len` or `axis_len == 0`.
pub fn softmax_inplace(data: &mut [f32], axis_len: usize) {
    assert!(axis_len > 0, "softmax axis length must be positive");
    assert_eq!(
        data.len() % axis_len,
        0,
        "buffer length must be a multiple of the softmax axis length"
    );
    for row in data.chunks_mut(axis_len) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// The activation applied (possibly fused) after an operator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    None,
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)`.
    Relu6,
    /// Sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
}

impl Activation {
    /// Apply this activation to `data` in place.
    pub fn apply(self, data: &mut [f32]) {
        match self {
            Activation::None => {}
            Activation::Relu => relu_inplace(data),
            Activation::Relu6 => relu6_inplace(data),
            Activation::Sigmoid => sigmoid_inplace(data),
            Activation::Tanh => tanh_inplace(data),
            Activation::LeakyRelu(slope) => prelu_inplace(data, slope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut d = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut d);
        assert_eq!(d, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let mut d = vec![-1.0, 3.0, 9.0];
        relu6_inplace(&mut d);
        assert_eq!(d, vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn prelu_scales_negatives_only() {
        let mut d = vec![-2.0, 4.0];
        prelu_inplace(&mut d, 0.5);
        assert_eq!(d, vec![-1.0, 4.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotonic() {
        let mut d = vec![-10.0, -1.0, 0.0, 1.0, 10.0];
        sigmoid_inplace(&mut d);
        assert!((d[2] - 0.5).abs() < 1e-6);
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut d = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_inplace(&mut d, 3);
        let s1: f32 = d[..3].iter().sum();
        let s2: f32 = d[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!((s2 - 1.0).abs() < 1e-5);
        // larger logit -> larger probability
        assert!(d[2] > d[1] && d[1] > d[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![101.0, 102.0, 103.0];
        softmax_inplace(&mut a, 3);
        softmax_inplace(&mut b, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn activation_enum_dispatch() {
        let mut d = vec![-1.0f32, 1.0];
        Activation::Relu.apply(&mut d);
        assert_eq!(d, vec![0.0, 1.0]);
        let mut d = vec![-1.0f32, 1.0];
        Activation::None.apply(&mut d);
        assert_eq!(d, vec![-1.0, 1.0]);
        let mut d = vec![-2.0f32];
        Activation::LeakyRelu(0.1).apply(&mut d);
        assert!((d[0] + 0.2).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_softmax_outputs_are_probabilities(
            values in proptest::collection::vec(-50.0f32..50.0, 1..64)
        ) {
            let len = values.len();
            let mut data = values;
            softmax_inplace(&mut data, len);
            let sum: f32 = data.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn prop_relu_idempotent(values in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let mut once = values.clone();
            relu_inplace(&mut once);
            let mut twice = once.clone();
            relu_inplace(&mut twice);
            prop_assert_eq!(once, twice);
        }
    }
}
