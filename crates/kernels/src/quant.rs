//! Symmetric int8 quantization and quantized compute kernels.
//!
//! The offline converter (paper Fig. 2, "model compressor") quantizes weights to
//! int8 with **per-output-channel** symmetric scales; these kernels provide the
//! quantize/dequantize transforms and the int8 GEMM / convolution /
//! fully-connected paths that the session executor dispatches for quantized
//! graphs. All integer paths accumulate in `i32` and rescale back to `f32`.
//!
//! Activations are quantized on the fly, **per sample** (and per group for a
//! grouped convolution): each batch item's scale is derived from that item's data
//! alone, so a micro-batched inference is bit-identical to running the samples
//! one by one — the property `mnn-serve`'s dynamic batcher relies on.

use crate::conv::ConvParams;
use crate::parallel::parallel_chunks_mut;
use crate::simd::{i8_axpy2_i32, i8_axpy_i32, KernelBackend};

/// Quantization parameters for a symmetric int8 scheme: `real = scale * quantized`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor mapping int8 values back to reals.
    pub scale: f32,
}

impl QuantParams {
    /// Derive the symmetric scale covering `[-max_abs, max_abs]` over the int8 range.
    ///
    /// A zero `max_abs` (all-zero tensor) yields scale 1.0 so dequantization is a
    /// no-op.
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        QuantParams { scale }
    }

    /// Derive quantization parameters from the data itself.
    pub fn from_data(data: &[f32]) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self::from_max_abs(max_abs)
    }
}

/// Quantize one value with the given scale: the single rounding/clamping recipe
/// every int8 path in this module shares — batched-vs-unbatched bit-identity
/// depends on all call sites agreeing on it.
#[inline]
fn quantize_value(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantize an `f32` buffer to int8 with the given parameters.
pub fn quantize(data: &[f32], params: QuantParams) -> Vec<i8> {
    data.iter()
        .map(|&v| quantize_value(v, params.scale))
        .collect()
}

/// Dequantize an int8 buffer back to `f32`.
pub fn dequantize(data: &[i8], params: QuantParams) -> Vec<f32> {
    data.iter().map(|&v| v as f32 * params.scale).collect()
}

/// Worst-case absolute quantization error for the given parameters (half a step).
pub fn quantization_error_bound(params: QuantParams) -> f32 {
    params.scale * 0.5
}

/// Derive one symmetric scale per output channel.
///
/// `data` is laid out `[channels, per_channel...]` (the weight layouts used by
/// convolution, `[oc, ic/g, kh, kw]`, and fully-connected, `[out, in]`, both
/// qualify). Channels that are entirely zero get scale 1.0.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `channels`.
pub fn per_channel_scales(data: &[f32], channels: usize) -> Vec<f32> {
    assert!(channels > 0, "channel count must be positive");
    assert!(
        data.len().is_multiple_of(channels),
        "data length {} is not a multiple of {channels} channels",
        data.len()
    );
    let per = data.len() / channels;
    data.chunks_exact(per)
        .map(|chunk| QuantParams::from_data(chunk).scale)
        .collect()
}

/// Quantize a `[channels, per_channel...]` buffer with one scale per channel.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `scales.len()`.
pub fn quantize_per_channel(data: &[f32], scales: &[f32]) -> Vec<i8> {
    assert!(
        !scales.is_empty() && data.len().is_multiple_of(scales.len()),
        "data length {} does not match {} channel scales",
        data.len(),
        scales.len()
    );
    let per = data.len() / scales.len();
    let mut out = Vec::with_capacity(data.len());
    for (chunk, &scale) in data.chunks_exact(per).zip(scales) {
        out.extend(chunk.iter().map(|&v| quantize_value(v, scale)));
    }
    out
}

/// Dequantize a `[channels, per_channel...]` int8 buffer with one scale per channel.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `scales.len()`.
pub fn dequantize_per_channel(data: &[i8], scales: &[f32]) -> Vec<f32> {
    assert!(
        !scales.is_empty() && data.len().is_multiple_of(scales.len()),
        "data length {} does not match {} channel scales",
        data.len(),
        scales.len()
    );
    let per = data.len() / scales.len();
    let mut out = Vec::with_capacity(data.len());
    for (chunk, &scale) in data.chunks_exact(per).zip(scales) {
        out.extend(chunk.iter().map(|&v| v as f32 * scale));
    }
    out
}

/// Int8 GEMM with i32 accumulation: `c_f32 = (a_i8 × b_i8) * a_scale * b_scale`.
///
/// `a` is `[m, k]`, `b` is `[k, n]`, result is `[m, n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_i8(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    a_params: QuantParams,
    b: &[i8],
    b_params: QuantParams,
) -> Vec<f32> {
    gemm_i8_with(KernelBackend::Scalar, m, k, n, a, a_params, b, b_params)
}

/// [`gemm_i8`] with an explicit [`KernelBackend`].
///
/// All backends are bit-identical: every partial product is exact in `i32`
/// and integer addition is associative, so vectorization cannot change bits.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_i8_with(
    kb: KernelBackend,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    a_params: QuantParams,
    b: &[i8],
    b_params: QuantParams,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    let rescale = a_params.scale * b_params.scale;
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        // accumulate in i32 per the standard int8 inference recipe
        accumulate_rows_i8(kb, c_row, b, &a[i * k..(i + 1) * k]);
    }
    c.into_iter().map(|acc| acc as f32 * rescale).collect()
}

/// `acc += Σ_p w[p] · mat[p·len .. (p+1)·len]` with `len = acc.len()`,
/// skipping zero weights and feeding nonzero rows to the paired axpy kernel
/// two at a time (bit-identical to one-at-a-time: integer addition is exact
/// and associative).
fn accumulate_rows_i8(kb: KernelBackend, acc: &mut [i32], mat: &[i8], w: &[i8]) {
    let len = acc.len();
    let mut pending: Option<(usize, i32)> = None;
    for (p, &wp) in w.iter().enumerate() {
        if wp == 0 {
            continue;
        }
        match pending.take() {
            None => pending = Some((p, wp as i32)),
            Some((q, wq)) => i8_axpy2_i32(
                kb,
                acc,
                &mat[q * len..(q + 1) * len],
                wq,
                &mat[p * len..(p + 1) * len],
                wp as i32,
            ),
        }
    }
    if let Some((q, wq)) = pending {
        i8_axpy_i32(kb, acc, &mat[q * len..(q + 1) * len], wq);
    }
}

/// Quantized 2-D convolution with per-output-channel weight scales and full
/// `groups` support (depthwise and grouped convolutions included).
///
/// Weights are int8 in the `[oc, ic/g, kh, kw]` layout with one scale per output
/// channel; activations are quantized on the fly with one symmetric scale per
/// `(sample, group)` — derived from that sample's data alone, so batched runs
/// stay bit-identical to per-sample runs. Accumulation is exact in `i32`; the
/// output is rescaled to `f32` and the (f32) bias added.
///
/// Layout conventions match [`crate::conv::conv2d_reference`].
///
/// # Panics
///
/// Panics if buffer lengths do not match the parameters, `weight_scales.len() !=
/// out_channels`, or channel counts are not divisible by `groups`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_quantized(
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight_q: &[i8],
    weight_scales: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    conv2d_quantized_with(
        KernelBackend::Scalar,
        params,
        threads,
        batch,
        in_h,
        in_w,
        input,
        weight_q,
        weight_scales,
        bias,
    )
}

/// [`conv2d_quantized`] with an explicit [`KernelBackend`] for the integer
/// GEMM stage. Bit-identical across backends (exact `i32` accumulation).
///
/// # Panics
///
/// Same contract as [`conv2d_quantized`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_quantized_with(
    kb: KernelBackend,
    params: &ConvParams,
    threads: usize,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight_q: &[i8],
    weight_scales: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    let groups = params.groups.max(1);
    assert!(
        params.in_channels.is_multiple_of(groups) && params.out_channels.is_multiple_of(groups),
        "channel counts ({}, {}) must divide by groups {groups}",
        params.in_channels,
        params.out_channels
    );
    assert_eq!(
        input.len(),
        batch * params.in_channels * in_h * in_w,
        "input length mismatch"
    );
    assert_eq!(
        weight_q.len(),
        params.weight_len(),
        "weight length mismatch"
    );
    assert_eq!(
        weight_scales.len(),
        params.out_channels,
        "one weight scale per output channel required"
    );
    if params.has_bias {
        assert_eq!(bias.len(), params.out_channels, "bias length mismatch");
    }
    let icg = params.in_channels / groups;
    let ocg = params.out_channels / groups;
    let group_block = icg * in_h * in_w;

    // Quantize activations once, per (sample, group): each scale is a function of
    // that sample's group slice only (batch-invariance for micro-batching).
    let mut input_scales = vec![0.0f32; batch * groups];
    let mut input_q = vec![0i8; input.len()];
    for b in 0..batch {
        for g in 0..groups {
            let start = (b * groups + g) * group_block;
            let slice = &input[start..start + group_block];
            let p = QuantParams::from_data(slice);
            input_scales[b * groups + g] = p.scale;
            for (dst, &v) in input_q[start..start + group_block].iter_mut().zip(slice) {
                *dst = quantize_value(v, p.scale);
            }
        }
    }

    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let out_plane = out_h * out_w;
    let k_dim = icg * params.kernel_h * params.kernel_w;
    let mut output = vec![0.0f32; batch * params.out_channels * out_plane];

    // im2col + integer GEMM, one (sample, group) at a time: the unfolded int8
    // patch matrix `col` is `[k_dim, out_plane]`, and every output channel of
    // the group is a `[k_dim]` weight row dotted against it with contiguous
    // inner loops and exact i32 accumulation. The accumulation order does not
    // affect the result (integer adds are associative), so thread count and
    // batching never change output bits.
    let mut col = vec![0i8; k_dim * out_plane];
    for b in 0..batch {
        for g in 0..groups {
            col.fill(0);
            for ic in 0..icg {
                let in_c = g * icg + ic;
                let in_plane =
                    &input_q[(b * params.in_channels + in_c) * in_h * in_w..][..in_h * in_w];
                for ky in 0..params.kernel_h {
                    for kx in 0..params.kernel_w {
                        let p = (ic * params.kernel_h + ky) * params.kernel_w + kx;
                        let col_row = &mut col[p * out_plane..(p + 1) * out_plane];
                        for oy in 0..out_h {
                            let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                                - pad_h as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            let in_row = &in_plane[iy as usize * in_w..][..in_w];
                            let out_row = &mut col_row[oy * out_w..][..out_w];
                            for (ox, slot) in out_row.iter_mut().enumerate() {
                                let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                    - pad_w as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                *slot = in_row[ix as usize];
                            }
                        }
                    }
                }
            }
            let group_out_start = (b * params.out_channels + g * ocg) * out_plane;
            let group_out = &mut output[group_out_start..group_out_start + ocg * out_plane];
            let col_ref = &col;
            parallel_chunks_mut(threads, group_out, out_plane, |first_oc, planes| {
                let mut acc = vec![0i32; out_plane];
                for (o, plane) in planes.chunks_mut(out_plane).enumerate() {
                    let oc = g * ocg + first_oc + o;
                    acc.fill(0);
                    let w_row = &weight_q[oc * k_dim..(oc + 1) * k_dim];
                    accumulate_rows_i8(kb, &mut acc, col_ref, w_row);
                    let rescale = input_scales[b * groups + g] * weight_scales[oc];
                    let bias_v = if params.has_bias { bias[oc] } else { 0.0 };
                    for (slot, &a) in plane.iter_mut().zip(&acc) {
                        *slot = a as f32 * rescale + bias_v;
                    }
                }
            });
        }
    }
    output
}

/// Quantized fully-connected layer: `y = x · Wᵀ + b` with int8 weights.
///
/// `weight_q` is `[out_features, in_features]` with one scale per output feature;
/// each input row (sample) is quantized with its own symmetric scale, keeping
/// batched runs bit-identical to per-sample runs. Accumulation is in `i32`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn fully_connected_quantized(
    threads: usize,
    batch: usize,
    in_features: usize,
    out_features: usize,
    input: &[f32],
    weight_q: &[i8],
    weight_scales: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    assert_eq!(input.len(), batch * in_features, "input length mismatch");
    assert_eq!(
        weight_q.len(),
        out_features * in_features,
        "weight length mismatch"
    );
    assert_eq!(
        weight_scales.len(),
        out_features,
        "one weight scale per output feature required"
    );
    if !bias.is_empty() {
        assert_eq!(bias.len(), out_features, "bias length mismatch");
    }
    let mut output = vec![0.0f32; batch * out_features];
    parallel_chunks_mut(threads, &mut output, out_features, |first_row, rows| {
        for (r, row_out) in rows.chunks_mut(out_features).enumerate() {
            let b = first_row + r;
            let row = &input[b * in_features..(b + 1) * in_features];
            let p = QuantParams::from_data(row);
            let row_q: Vec<i8> = row.iter().map(|&v| quantize_value(v, p.scale)).collect();
            for (o, out) in row_out.iter_mut().enumerate() {
                let w_row = &weight_q[o * in_features..(o + 1) * in_features];
                let mut acc: i32 = 0;
                for (&x, &w) in row_q.iter().zip(w_row) {
                    acc += x as i32 * w as i32;
                }
                *out = acc as f32 * (p.scale * weight_scales[o]);
                if !bias.is_empty() {
                    *out += bias[o];
                }
            }
        }
    });
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_reference;
    use crate::gemm::gemm_naive;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantize_dequantize_roundtrip_error_is_bounded() {
        let data = vec![-1.0, -0.5, 0.0, 0.25, 0.9, 1.0];
        let params = QuantParams::from_data(&data);
        let q = quantize(&data, params);
        let back = dequantize(&q, params);
        let bound = quantization_error_bound(params);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound + 1e-6);
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let data = vec![0.0; 8];
        let params = QuantParams::from_data(&data);
        assert_eq!(params.scale, 1.0);
        assert!(quantize(&data, params).iter().all(|&v| v == 0));
    }

    #[test]
    fn extreme_values_map_to_127() {
        let data = vec![-2.0, 2.0];
        let params = QuantParams::from_data(&data);
        let q = quantize(&data, params);
        assert_eq!(q, vec![-127, 127]);
    }

    #[test]
    fn per_channel_scales_follow_each_channel_magnitude() {
        // Two channels with very different ranges: per-channel scales keep the
        // small channel precise where one per-tensor scale would crush it.
        let data = vec![100.0, -50.0, 0.5, -0.25];
        let scales = per_channel_scales(&data, 2);
        assert!((scales[0] - 100.0 / 127.0).abs() < 1e-6);
        assert!((scales[1] - 0.5 / 127.0).abs() < 1e-6);
        let q = quantize_per_channel(&data, &scales);
        let back = dequantize_per_channel(&q, &scales);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= 100.0 / 254.0 + 1e-6);
        }
        // The small channel round-trips with its own (tiny) half-step bound.
        assert!((data[2] - back[2]).abs() <= 0.5 / 254.0 + 1e-7);
        assert!((data[3] - back[3]).abs() <= 0.5 / 254.0 + 1e-7);
    }

    #[test]
    fn all_zero_channel_gets_identity_scale() {
        let data = vec![0.0, 0.0, 3.0, -1.0];
        let scales = per_channel_scales(&data, 2);
        assert_eq!(scales[0], 1.0);
        let q = quantize_per_channel(&data, &scales);
        assert_eq!(&q[..2], &[0, 0]);
    }

    #[test]
    fn int8_gemm_approximates_float_gemm() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, k, n) = (4usize, 8usize, 5usize);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ap = QuantParams::from_data(&a);
        let bp = QuantParams::from_data(&b);
        let aq = quantize(&a, ap);
        let bq = quantize(&b, bp);
        let got = gemm_i8(m, k, n, &aq, ap, &bq, bp);
        let mut expected = vec![0.0f32; m * n];
        gemm_naive(m, k, n, &a, &b, &mut expected);
        // error grows with k; the bound below is loose but catches systematic bugs
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 0.1, "{g} vs {e}");
        }
    }

    #[test]
    fn quantized_conv_tracks_float_conv() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = ConvParams::square(3, 4, 3, 1);
        p.has_bias = true;
        let size = 8;
        let input: Vec<f32> = (0..3 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let bias: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
        let scales = per_channel_scales(&weight, p.out_channels);
        let wq = quantize_per_channel(&weight, &scales);
        let got = conv2d_quantized(&p, 1, 1, size, size, &input, &wq, &scales, &bias);
        let mean_abs_err: f32 = got
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / got.len() as f32;
        assert!(mean_abs_err < 0.05, "mean abs error {mean_abs_err}");
    }

    #[test]
    fn quantized_depthwise_conv_tracks_float_conv() {
        // Regression: `conv2d_quantized` used to panic on `groups != 1`.
        let mut rng = StdRng::seed_from_u64(3);
        let p = ConvParams::square(6, 6, 3, 1).depthwise();
        let size = 7;
        let input: Vec<f32> = (0..6 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
        let scales = per_channel_scales(&weight, p.out_channels);
        let wq = quantize_per_channel(&weight, &scales);
        let got = conv2d_quantized(&p, 2, 1, size, size, &input, &wq, &scales, &[]);
        let max_err = got
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "max abs error {max_err}");
    }

    #[test]
    fn quantized_grouped_conv_tracks_float_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = ConvParams::square(8, 4, 3, 1);
        p.groups = 2;
        let size = 6;
        let input: Vec<f32> = (0..8 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &[]);
        let scales = per_channel_scales(&weight, p.out_channels);
        let wq = quantize_per_channel(&weight, &scales);
        let got = conv2d_quantized(&p, 1, 1, size, size, &input, &wq, &scales, &[]);
        let max_err = got
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "max abs error {max_err}");
    }

    #[test]
    fn quantized_conv_is_batch_invariant() {
        // Per-(sample, group) activation scales: running two different samples as
        // one batch must reproduce the per-sample outputs bit for bit.
        let mut rng = StdRng::seed_from_u64(5);
        let p = ConvParams::square(3, 4, 3, 1);
        let size = 6;
        let a: Vec<f32> = (0..3 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let b: Vec<f32> = (0..3 * size * size)
            .map(|_| rng.gen_range(-10.0..10.0)) // very different dynamic range
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let scales = per_channel_scales(&weight, p.out_channels);
        let wq = quantize_per_channel(&weight, &scales);
        let out_a = conv2d_quantized(&p, 1, 1, size, size, &a, &wq, &scales, &[]);
        let out_b = conv2d_quantized(&p, 1, 1, size, size, &b, &wq, &scales, &[]);
        let mut batched_in = a.clone();
        batched_in.extend_from_slice(&b);
        let batched = conv2d_quantized(&p, 2, 2, size, size, &batched_in, &wq, &scales, &[]);
        assert_eq!(&batched[..out_a.len()], &out_a[..]);
        assert_eq!(&batched[out_a.len()..], &out_b[..]);
    }

    #[test]
    fn quantized_fc_tracks_float_fc_and_is_batch_invariant() {
        let mut rng = StdRng::seed_from_u64(6);
        let (inf, outf) = (16usize, 5usize);
        let x0: Vec<f32> = (0..inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x1: Vec<f32> = (0..inf).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let weight: Vec<f32> = (0..outf * inf).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bias: Vec<f32> = (0..outf).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let scales = per_channel_scales(&weight, outf);
        let wq = quantize_per_channel(&weight, &scales);

        let got0 = fully_connected_quantized(1, 1, inf, outf, &x0, &wq, &scales, &bias);
        let expected0 = crate::fc::fully_connected(1, 1, inf, outf, &x0, &weight, &bias);
        for (g, e) in got0.iter().zip(&expected0) {
            assert!((g - e).abs() < 0.05, "{g} vs {e}");
        }

        let got1 = fully_connected_quantized(1, 1, inf, outf, &x1, &wq, &scales, &bias);
        let mut batched_in = x0.clone();
        batched_in.extend_from_slice(&x1);
        let batched = fully_connected_quantized(2, 2, inf, outf, &batched_in, &wq, &scales, &bias);
        assert_eq!(&batched[..outf], &got0[..]);
        assert_eq!(&batched[outf..], &got1[..]);
    }

    #[test]
    fn quantized_conv_thread_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = ConvParams::square(4, 8, 3, 1);
        let size = 9;
        let input: Vec<f32> = (0..4 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let scales = per_channel_scales(&weight, p.out_channels);
        let wq = quantize_per_channel(&weight, &scales);
        let one = conv2d_quantized(&p, 1, 1, size, size, &input, &wq, &scales, &[]);
        let four = conv2d_quantized(&p, 4, 1, size, size, &input, &wq, &scales, &[]);
        assert_eq!(one, four);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_error_within_half_step(
            values in proptest::collection::vec(-100.0f32..100.0, 1..64)
        ) {
            let params = QuantParams::from_data(&values);
            let q = quantize(&values, params);
            let back = dequantize(&q, params);
            let bound = quantization_error_bound(params) + 1e-4;
            for (a, b) in values.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_roundtrip_error_within_bound_for_arbitrary_finite_inputs(
            values in proptest::collection::vec(
                prop_oneof![
                    -1e6f32..1e6,          // wide dynamic range
                    -1e-3f32..1e-3,        // tiny magnitudes
                    Just(0.0f32),          // exact zeros (guards the max_abs == 0 scale)
                ],
                1..96
            )
        ) {
            let params = QuantParams::from_data(&values);
            let q = quantize(&values, params);
            let back = dequantize(&q, params);
            // Relative slack covers the f32 rounding of (v / scale) * scale.
            let bound = quantization_error_bound(params) * (1.0 + 1e-4) + 1e-9;
            for (a, b) in values.iter().zip(&back) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "value {a} came back as {b} (scale {})", params.scale
                );
            }
        }

        #[test]
        fn prop_quantized_values_in_range(
            values in proptest::collection::vec(-1000.0f32..1000.0, 1..64)
        ) {
            let params = QuantParams::from_data(&values);
            let q = quantize(&values, params);
            prop_assert!(q.iter().all(|&v| (-127..=127).contains(&v)));
        }

        #[test]
        fn prop_gemm_i8_matches_float_gemm_within_accumulated_bound(
            m in 1usize..5, k in 1usize..24, n in 1usize..5, seed in 0u64..50
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let ap = QuantParams::from_data(&a);
            let bp = QuantParams::from_data(&b);
            let aq = quantize(&a, ap);
            let bq = quantize(&b, bp);
            let got = gemm_i8(m, k, n, &aq, ap, &bq, bp);
            let mut expected = vec![0.0f32; m * n];
            gemm_naive(m, k, n, &a, &b, &mut expected);
            // Per product: |ã·b̃ − a·b| ≤ |a|·εb + |b|·εa + εa·εb with εx = half a
            // step; summed over the k-long reduction.
            let a_max = a.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let b_max = b.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let (ea, eb) = (
                quantization_error_bound(ap),
                quantization_error_bound(bp),
            );
            let bound = k as f32 * (a_max * eb + b_max * ea + ea * eb) + 1e-5;
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!((g - e).abs() <= bound, "{g} vs {e} (bound {bound})");
            }
        }
    }

    #[test]
    fn gemm_i8_all_zero_operands_are_exact() {
        // The max_abs == 0 path must yield scale 1.0 and an exactly-zero product.
        let a = vec![0.0f32; 6];
        let b = vec![0.0f32; 8];
        let ap = QuantParams::from_data(&a);
        let bp = QuantParams::from_data(&b);
        assert_eq!(ap.scale, 1.0);
        let got = gemm_i8(3, 2, 4, &quantize(&a, ap), ap, &quantize(&b, bp), bp);
        assert!(got.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemm_i8_single_max_value_is_exact() {
        // A lone ±max value quantizes to exactly ±127, so its products are exact
        // up to f32 rounding: single-element operands hit the extremes directly.
        let ap = QuantParams::from_data(&[3.5]);
        let bp = QuantParams::from_data(&[-2.0]);
        assert_eq!(quantize(&[3.5], ap), vec![127]);
        assert_eq!(quantize(&[-2.0], bp), vec![-127]);
        let got = gemm_i8(1, 1, 1, &[127], ap, &[-127], bp);
        assert!((got[0] - (3.5 * -2.0)).abs() < 1e-5);
        // A max value embedded among zeros keeps its exact representation too.
        let a = vec![0.0f32, 0.0, 3.5, 0.0];
        let b = vec![-2.0f32, 0.0, 1.0, 2.0];
        let ap = QuantParams::from_data(&a);
        let bp = QuantParams::from_data(&b);
        let got = gemm_i8(1, 4, 1, &quantize(&a, ap), ap, &quantize(&b, bp), bp);
        // Only a[2]·b[2] contributes; b[2] = 1.0 quantizes to round(63.5) = 64.
        let b2_dequant = 64.0 * bp.scale;
        assert!((got[0] - 3.5 * b2_dequant).abs() < 1e-5);
    }
}
