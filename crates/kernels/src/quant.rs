//! Symmetric int8 quantization and quantized compute kernels.
//!
//! The offline converter (paper Fig. 2, "model compressor") can quantize weights to
//! int8; these kernels provide the quantize/dequantize transforms and an int8 GEMM /
//! convolution path that accumulates in `i32` and rescales back to `f32`.

use crate::conv::ConvParams;

/// Quantization parameters for a symmetric int8 scheme: `real = scale * quantized`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor mapping int8 values back to reals.
    pub scale: f32,
}

impl QuantParams {
    /// Derive the symmetric scale covering `[-max_abs, max_abs]` over the int8 range.
    ///
    /// A zero `max_abs` (all-zero tensor) yields scale 1.0 so dequantization is a
    /// no-op.
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        QuantParams { scale }
    }

    /// Derive quantization parameters from the data itself.
    pub fn from_data(data: &[f32]) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self::from_max_abs(max_abs)
    }
}

/// Quantize an `f32` buffer to int8 with the given parameters.
pub fn quantize(data: &[f32], params: QuantParams) -> Vec<i8> {
    data.iter()
        .map(|&v| (v / params.scale).round().clamp(-127.0, 127.0) as i8)
        .collect()
}

/// Dequantize an int8 buffer back to `f32`.
pub fn dequantize(data: &[i8], params: QuantParams) -> Vec<f32> {
    data.iter().map(|&v| v as f32 * params.scale).collect()
}

/// Worst-case absolute quantization error for the given parameters (half a step).
pub fn quantization_error_bound(params: QuantParams) -> f32 {
    params.scale * 0.5
}

/// Int8 GEMM with i32 accumulation: `c_f32 = (a_i8 × b_i8) * a_scale * b_scale`.
///
/// `a` is `[m, k]`, `b` is `[k, n]`, result is `[m, n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_i8(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    a_params: QuantParams,
    b: &[i8],
    b_params: QuantParams,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    let rescale = a_params.scale * b_params.scale;
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p] as i32;
            if av == 0 {
                continue;
            }
            for j in 0..n {
                // accumulate in i32 per the standard int8 inference recipe
                let prod = av * b[p * n + j] as i32;
                c[i * n + j] += prod as f32 * rescale;
            }
        }
    }
    c
}

/// Quantized convolution: weights are int8 (per-tensor symmetric), activations are
/// quantized on the fly, accumulation is exact in `i32`, output is rescaled to f32.
///
/// Layout conventions match [`crate::conv::conv2d_reference`].
///
/// # Panics
///
/// Panics if buffer lengths do not match the parameters or `groups != 1`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_quantized(
    params: &ConvParams,
    batch: usize,
    in_h: usize,
    in_w: usize,
    input: &[f32],
    weight_q: &[i8],
    weight_params: QuantParams,
    bias: &[f32],
) -> Vec<f32> {
    assert_eq!(params.groups, 1, "quantized conv requires groups == 1");
    assert_eq!(
        input.len(),
        batch * params.in_channels * in_h * in_w,
        "input length mismatch"
    );
    assert_eq!(
        weight_q.len(),
        params.weight_len(),
        "weight length mismatch"
    );
    let input_params = QuantParams::from_data(input);
    let input_q = quantize(input, input_params);
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let (pad_h, pad_w) = params.resolve_padding(in_h, in_w);
    let rescale = input_params.scale * weight_params.scale;
    let mut output = vec![0.0f32; batch * params.out_channels * out_h * out_w];

    for b in 0..batch {
        for oc in 0..params.out_channels {
            let bias_v = if params.has_bias { bias[oc] } else { 0.0 };
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc: i32 = 0;
                    for ic in 0..params.in_channels {
                        for ky in 0..params.kernel_h {
                            let iy = (oy * params.stride_h + ky * params.dilation_h) as isize
                                - pad_h as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            for kx in 0..params.kernel_w {
                                let ix = (ox * params.stride_w + kx * params.dilation_w) as isize
                                    - pad_w as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                let in_idx = ((b * params.in_channels + ic) * in_h + iy as usize)
                                    * in_w
                                    + ix as usize;
                                let w_idx = ((oc * params.in_channels + ic) * params.kernel_h + ky)
                                    * params.kernel_w
                                    + kx;
                                acc += input_q[in_idx] as i32 * weight_q[w_idx] as i32;
                            }
                        }
                    }
                    let out_idx = ((b * params.out_channels + oc) * out_h + oy) * out_w + ox;
                    output[out_idx] = acc as f32 * rescale + bias_v;
                }
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_reference;
    use crate::gemm::gemm_naive;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantize_dequantize_roundtrip_error_is_bounded() {
        let data = vec![-1.0, -0.5, 0.0, 0.25, 0.9, 1.0];
        let params = QuantParams::from_data(&data);
        let q = quantize(&data, params);
        let back = dequantize(&q, params);
        let bound = quantization_error_bound(params);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound + 1e-6);
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let data = vec![0.0; 8];
        let params = QuantParams::from_data(&data);
        assert_eq!(params.scale, 1.0);
        assert!(quantize(&data, params).iter().all(|&v| v == 0));
    }

    #[test]
    fn extreme_values_map_to_127() {
        let data = vec![-2.0, 2.0];
        let params = QuantParams::from_data(&data);
        let q = quantize(&data, params);
        assert_eq!(q, vec![-127, 127]);
    }

    #[test]
    fn int8_gemm_approximates_float_gemm() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, k, n) = (4usize, 8usize, 5usize);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ap = QuantParams::from_data(&a);
        let bp = QuantParams::from_data(&b);
        let aq = quantize(&a, ap);
        let bq = quantize(&b, bp);
        let got = gemm_i8(m, k, n, &aq, ap, &bq, bp);
        let mut expected = vec![0.0f32; m * n];
        gemm_naive(m, k, n, &a, &b, &mut expected);
        // error grows with k; the bound below is loose but catches systematic bugs
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 0.1, "{g} vs {e}");
        }
    }

    #[test]
    fn quantized_conv_tracks_float_conv() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = ConvParams::square(3, 4, 3, 1);
        p.has_bias = true;
        let size = 8;
        let input: Vec<f32> = (0..3 * size * size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let weight: Vec<f32> = (0..p.weight_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let bias: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let expected = conv2d_reference(&p, 1, size, size, &input, &weight, &bias);
        let wp = QuantParams::from_data(&weight);
        let wq = quantize(&weight, wp);
        let got = conv2d_quantized(&p, 1, size, size, &input, &wq, wp, &bias);
        let mean_abs_err: f32 = got
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / got.len() as f32;
        assert!(mean_abs_err < 0.05, "mean abs error {mean_abs_err}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_error_within_half_step(
            values in proptest::collection::vec(-100.0f32..100.0, 1..64)
        ) {
            let params = QuantParams::from_data(&values);
            let q = quantize(&values, params);
            let back = dequantize(&q, params);
            let bound = quantization_error_bound(params) + 1e-4;
            for (a, b) in values.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_quantized_values_in_range(
            values in proptest::collection::vec(-1000.0f32..1000.0, 1..64)
        ) {
            let params = QuantParams::from_data(&values);
            let q = quantize(&values, params);
            prop_assert!(q.iter().all(|&v| (-127..=127).contains(&v)));
        }
    }
}
