//! The Interpreter / Session API and the pre-inference pipeline.
//!
//! Mirroring MNN's user-facing flow (paper Fig. 2, "on-device inference"):
//!
//! 1. An [`Interpreter`] is created from an (optimized) graph; it validates the
//!    graph, runs shape inference and stores the result behind an `Arc`.
//! 2. [`Interpreter::create_session`] runs **pre-inference**: computation scheme
//!    selection for every convolution (Eq. 2–3), backend cost evaluation and hybrid
//!    scheduling (Eq. 4–5), the static memory plan (Fig. 3), and — when
//!    preparation–execution decoupling is enabled — creation of every execution
//!    instance (including Winograd weight transforms and simulated GPU command
//!    encoding). The returned [`Session`] is **owned** (`'static` and [`Send`]): it
//!    shares the graph with the interpreter through the `Arc`, may outlive it, and
//!    can be moved onto worker threads.
//! 3. [`Session::run_with`] / [`Session::run`] then perform pure computation
//!    against the pre-selected schemes, placements and memory. I/O is addressed by
//!    name ([`Session::input_mut`], [`Session::output`]).
//! 4. When the input geometry changes, [`Session::resize_input`] +
//!    [`Session::resize_session`] re-run pre-inference for the new shapes —
//!    reusing unchanged execution instances and caching whole plans per shape
//!    signature, so alternating between known geometries never re-plans.

mod config;
mod exec;
mod plan;
mod resize;
#[cfg(test)]
mod tests;

pub use config::{SessionConfig, SessionConfigBuilder, DEFAULT_PLAN_CACHE_CAPACITY};
pub use exec::RunStats;
pub use plan::{NodePlacement, PreInferenceReport};

use crate::memory_plan::MemoryPlan;
use crate::CoreError;
use mnn_backend::{Backend, CpuBackend, ForwardType, SimGpuBackend};
use mnn_graph::{Graph, NodeId, TensorId};
use mnn_tensor::{Shape, Tensor};
use mnn_tune::{DeviceFingerprint, Tuner, TuningStats};
use plan::ExecutionPlan;
use std::collections::HashMap;
use std::sync::Arc;

/// The model holder: owns the validated, shape-inferred graph behind an `Arc` so
/// that every session shares (rather than copies) the model weights.
#[derive(Debug)]
pub struct Interpreter {
    graph: Arc<Graph>,
}

impl Interpreter {
    /// Create an interpreter, validating the graph and inferring every shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] when the graph is structurally invalid or shapes
    /// cannot be inferred.
    pub fn from_graph(mut graph: Graph) -> Result<Self, CoreError> {
        graph.validate()?;
        graph.infer_shapes()?;
        Ok(Interpreter {
            graph: Arc::new(graph),
        })
    }

    /// The underlying graph (shapes inferred).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the underlying graph.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Run pre-inference and build an owned [`Session`].
    ///
    /// The session holds its own handle to the graph: it remains fully usable if
    /// the interpreter is dropped, and it is [`Send`], so it can serve inferences
    /// from a worker thread.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for inconsistent configurations and
    /// propagates backend errors from execution creation.
    pub fn create_session(&self, config: SessionConfig) -> Result<Session, CoreError> {
        Session::create(Arc::clone(&self.graph), config)
    }
}

/// A cached pre-inference result: the geometry-specific graph plus its plan.
struct CachedPlan {
    graph: Arc<Graph>,
    plan: ExecutionPlan,
    /// The plan's arena size, remembered so cache eviction/restoration can
    /// move the figure between the `plan_cache` and `arena` accounts without
    /// touching the plan.
    arena_bytes: u64,
}

/// The session's handles into the `mnn_obs::resources` ledger: the active
/// plan's arena bytes and the parked plans' bytes, charged under the
/// session's scope ([`SessionConfig::resource_scope`], defaulting to the
/// graph name). Every charge/release is one relaxed atomic op.
struct SessionAccounts {
    arena: mnn_obs::AccountedBytes,
    plan_cache: mnn_obs::AccountedBytes,
}

/// An inference session: pre-inference results plus runtime state.
///
/// Sessions are **owned** and [`Send`]: they share the interpreter's graph via an
/// `Arc`, may outlive the interpreter, and can be moved across thread boundaries
/// (e.g. one session per worker thread, all sharing one set of weights).
pub struct Session {
    /// The graph at the session's *current* input geometry. Starts as the
    /// interpreter's graph; `resize_session` replaces it with a re-inferred copy
    /// (cheap — constants are shared through `Arc`s).
    graph: Arc<Graph>,
    config: SessionConfig,
    backends: Vec<Box<dyn Backend>>,
    cpu_index: usize,
    plan: ExecutionPlan,
    /// Named input tensors staged for the next run (see [`Session::input_mut`]).
    inputs: HashMap<TensorId, Tensor>,
    /// Outputs of the most recent run (see [`Session::output`]).
    outputs: HashMap<TensorId, Tensor>,
    /// Input shape changes staged by [`Session::resize_input`], applied by
    /// [`Session::resize_session`].
    pending_shapes: HashMap<TensorId, Shape>,
    /// Pre-inference results cached per input-shape signature.
    plan_cache: HashMap<Vec<Shape>, CachedPlan>,
    cache_hits: usize,
    last_stats: RunStats,
    /// Measured scheme selection over the process-shared, device-keyed tuning
    /// cache; `None` when tuning is off.
    tuner: Option<Tuner>,
    /// Resource-ledger accounts; `None` when accounting is disabled.
    accounts: Option<SessionAccounts>,
}

// Sessions must stay movable across threads; this fails to compile if a
// non-`Send` field sneaks in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

impl Session {
    fn create(graph: Arc<Graph>, config: SessionConfig) -> Result<Self, CoreError> {
        if config.threads == 0 {
            return Err(CoreError::InvalidConfig("thread count must be >= 1".into()));
        }

        // --- Backends -------------------------------------------------------
        let mut backends: Vec<Box<dyn Backend>> = Vec::new();
        let mut cpu_index = None;
        let mut forward_types = config.forward_types.clone();
        if !forward_types.contains(&ForwardType::Cpu) {
            forward_types.push(ForwardType::Cpu);
        }
        for ft in &forward_types {
            match ft {
                ForwardType::Cpu => {
                    let mut cpu = CpuBackend::new(config.threads);
                    if let Some(flops) = config.cpu_flops {
                        cpu = cpu.with_flops(flops);
                    }
                    cpu_index = Some(backends.len());
                    backends.push(Box::new(cpu));
                }
                gpu => {
                    let mut sim = SimGpuBackend::new(*gpu, config.gpu_profile);
                    sim.set_decoupled(config.decouple_preparation);
                    backends.push(Box::new(sim));
                }
            }
        }
        let cpu_index = cpu_index.expect("CPU backend is always present");

        // --- Tuning ---------------------------------------------------------
        // The shared cache is keyed by device fingerprint (+ path), so every
        // session of this process with the same configuration — e.g. all
        // workers of a SessionPool — shares one tuning pass.
        let tuner = if config.tuning.is_enabled() {
            let fingerprint =
                DeviceFingerprint::detect(config.threads, &backends[cpu_index].descriptor());
            let path = config
                .tune_cache_path
                .clone()
                .or_else(mnn_tune::default_cache_path);
            Some(Tuner::new(mnn_tune::shared_cache(fingerprint, path)))
        } else {
            None
        };

        let prepare_start = std::time::Instant::now();
        let plan = plan::build_plan(&graph, &config, &mut backends, None, tuner.as_ref())?;
        Self::persist_tuning(tuner.as_ref());
        let metrics = mnn_obs::global();
        metrics
            .counter(
                mnn_obs::metrics::names::SESSION_PREPARES,
                "Sessions prepared (full pre-inference passes).",
            )
            .inc();
        metrics
            .histogram(
                mnn_obs::metrics::names::SESSION_PREPARE_MS,
                "Session preparation wall time, milliseconds.",
                mnn_obs::metrics::LATENCY_MS_BUCKETS,
            )
            .observe(prepare_start.elapsed().as_secs_f64() * 1000.0);
        let inputs = Self::fresh_inputs(&graph)?;

        // Charge the freshly planned arena to the resource ledger. The hot
        // path is exactly one relaxed atomic add; roll-ups happen at
        // snapshot/render time.
        let accounts = if config.account_resources {
            let scope = config
                .resource_scope
                .clone()
                .unwrap_or_else(|| graph.name().to_string());
            let accounts = SessionAccounts {
                arena: mnn_obs::resources::account(&scope, "arena"),
                plan_cache: mnn_obs::resources::account(&scope, "plan_cache"),
            };
            accounts.arena.add(plan.memory_plan.planned_bytes() as u64);
            Some(accounts)
        } else {
            None
        };

        Ok(Session {
            graph,
            config,
            backends,
            cpu_index,
            plan,
            inputs,
            outputs: HashMap::new(),
            pending_shapes: HashMap::new(),
            plan_cache: HashMap::new(),
            cache_hits: 0,
            last_stats: RunStats::default(),
            tuner,
            accounts,
        })
    }

    /// Best-effort persistence of freshly measured tuning entries: a
    /// filesystem failure must never fail session preparation, but it should
    /// not be silent either.
    fn persist_tuning(tuner: Option<&Tuner>) {
        if let Some(tuner) = tuner {
            if let Err(e) = tuner.persist() {
                mnn_obs::warn!("mnn-tune", "failed to persist tuning cache: {e}");
            }
        }
    }

    /// Zero-filled staged input tensors matching the graph's current input shapes.
    fn fresh_inputs(graph: &Graph) -> Result<HashMap<TensorId, Tensor>, CoreError> {
        let mut inputs = HashMap::new();
        for id in graph.inputs() {
            let shape = graph.tensor_info(*id)?.shape.clone().ok_or_else(|| {
                CoreError::InvalidInput(format!("graph input {id} has no declared shape"))
            })?;
            inputs.insert(*id, Tensor::zeros(shape));
        }
        Ok(inputs)
    }

    /// The pre-inference report (schemes, placements, memory, estimated cost) for
    /// the session's current input geometry.
    pub fn report(&self) -> &PreInferenceReport {
        &self.plan.report
    }

    /// The static memory plan computed for the current input geometry.
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.plan.memory_plan
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The graph at the session's current input geometry.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Timing of the most recent run.
    pub fn last_stats(&self) -> RunStats {
        self.last_stats
    }

    /// Index of the CPU fallback backend in this session's backend list.
    pub fn cpu_backend_index(&self) -> usize {
        self.cpu_index
    }

    /// Counters of the process-shared tuning cache this session uses, or
    /// `None` when tuning is off ([`TuningMode::Off`](mnn_tune::TuningMode)).
    ///
    /// The counters are cumulative over every session sharing the cache —
    /// that is the point: a `SessionPool` of N workers shows **one** tuning
    /// pass, and a session warm-started from a persisted cache shows **zero**
    /// measured candidates.
    pub fn tuning_stats(&self) -> Option<TuningStats> {
        self.tuner.as_ref().map(Tuner::stats)
    }

    /// Execution order used by the session (topological).
    pub fn execution_order(&self) -> &[NodeId] {
        &self.plan.order
    }

    /// The declared input names, in positional order.
    pub fn input_names(&self) -> Vec<&str> {
        self.graph.input_names()
    }

    /// The output names, in positional order.
    pub fn output_names(&self) -> Vec<&str> {
        self.graph.output_names()
    }
}

impl Drop for Session {
    /// Release everything this session charged to the resource ledger: the
    /// active plan's arena plus every parked plan.
    fn drop(&mut self) {
        if let Some(accounts) = &self.accounts {
            accounts
                .arena
                .sub(self.plan.memory_plan.planned_bytes() as u64);
            let cached: u64 = self.plan_cache.values().map(|c| c.arena_bytes).sum();
            accounts.plan_cache.sub(cached);
        }
    }
}
