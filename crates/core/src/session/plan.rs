//! Pre-inference: scheme selection, hybrid scheduling, memory planning and
//! execution creation, bundled into a swappable [`ExecutionPlan`].
//!
//! Everything here is a pure function of (graph geometry, configuration): a
//! session re-runs it whenever its input shapes change (`resize_session`) and
//! caches the resulting plans per shape signature.

use super::config::SessionConfig;
use crate::cost::{hybrid_schedule, placement_cost_ms, Placement};
use crate::memory_plan::MemoryPlan;
use crate::scheme::{
    quantized_fc_decision, select_conv_scheme, select_quantized_conv_scheme, SchemeDecision,
};
use crate::CoreError;
use mnn_backend::{Backend, ConvScheme, Execution, ForwardType, SchemeHint};
use mnn_graph::{Graph, NodeId, Op};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// The per-node outcome of pre-inference.
#[derive(Debug, Clone)]
pub struct NodePlacement {
    /// The node.
    pub node: NodeId,
    /// Node name (for reporting).
    pub name: String,
    /// Operator name.
    pub op: &'static str,
    /// Backend chosen by hybrid scheduling.
    pub forward_type: ForwardType,
    /// Convolution scheme chosen by the cost model, when the node is a convolution.
    pub scheme: Option<ConvScheme>,
    /// Estimated cost on the chosen backend, in milliseconds.
    pub estimated_cost_ms: f64,
}

/// Summary of everything pre-inference decided, for inspection and experiments.
#[derive(Debug, Clone)]
pub struct PreInferenceReport {
    /// Per-node backend/scheme decisions.
    pub placements: Vec<NodePlacement>,
    /// Estimated total cost of the placement, in milliseconds (Eq. 4).
    pub estimated_total_ms: f64,
    /// Arena elements required with live-range reuse.
    pub planned_memory_elements: usize,
    /// Elements required without reuse.
    pub unplanned_memory_elements: usize,
    /// Milliseconds spent in pre-inference (scheme search + execution creation).
    pub pre_inference_ms: f64,
    /// Executions carried over from the previous geometry by `resize_session`
    /// (constant-weight captures — including Winograd weight transforms — whose
    /// scheme did not change). Zero for a freshly created session.
    pub reused_executions: usize,
    /// Whether this plan was restored from the per-shape-signature pre-inference
    /// cache instead of being recomputed.
    pub from_cache: bool,
}

impl PreInferenceReport {
    /// Fraction of intermediate memory saved by the plan.
    pub fn memory_savings_ratio(&self) -> f64 {
        if self.unplanned_memory_elements == 0 {
            return 0.0;
        }
        1.0 - self.planned_memory_elements as f64 / self.unplanned_memory_elements as f64
    }
}

impl fmt::Display for PreInferenceReport {
    /// Render the report as a per-node placement table, e.g.
    ///
    /// ```text
    /// pre-inference: 1.23 ms (computed), estimated run cost 0.456 ms
    /// memory: 12345 -> 2345 elements (81% saved)
    /// node              op              backend  scheme            est ms
    /// conv1             Conv2d          cpu      winograd-F(4x4)    0.123
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pre-inference: {:.2} ms ({}{}), estimated run cost {:.3} ms",
            self.pre_inference_ms,
            if self.from_cache {
                "cached plan"
            } else {
                "computed"
            },
            if self.reused_executions > 0 {
                format!(", {} executions reused", self.reused_executions)
            } else {
                String::new()
            },
            self.estimated_total_ms
        )?;
        writeln!(
            f,
            "memory: {} -> {} elements ({:.0}% saved)",
            self.unplanned_memory_elements,
            self.planned_memory_elements,
            self.memory_savings_ratio() * 100.0
        )?;
        writeln!(
            f,
            "{:<20} {:<16} {:<8} {:<18} {:>9}",
            "node", "op", "backend", "scheme", "est ms"
        )?;
        for p in &self.placements {
            writeln!(
                f,
                // `ForwardType`'s Display ignores width flags (write_str), so
                // render it to a string before padding.
                "{:<20} {:<16} {:<8} {:<18} {:>9.4}",
                p.name,
                p.op,
                p.forward_type.to_string(),
                p.scheme
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                p.estimated_cost_ms
            )?;
        }
        Ok(())
    }
}

/// One node scheduled for execution inside a session.
pub(super) struct ScheduledNode {
    pub(super) node: NodeId,
    pub(super) backend_index: usize,
    pub(super) hint: SchemeHint,
    /// Pre-created execution when preparation is decoupled from execution.
    pub(super) execution: Option<Box<dyn Execution>>,
}

/// Everything pre-inference produced for one input geometry: the execution order,
/// the scheduled nodes (placements + pre-created executions), the memory plan and
/// the report. Sessions swap whole plans on `resize_session`.
pub(super) struct ExecutionPlan {
    pub(super) order: Vec<NodeId>,
    pub(super) scheduled: Vec<ScheduledNode>,
    pub(super) report: PreInferenceReport,
    pub(super) memory_plan: MemoryPlan,
}

/// Run pre-inference for `graph` (shapes already inferred) against `backends`.
///
/// When `reuse` holds the plan of the previous geometry, executions whose
/// placement (backend) and scheme hint are unchanged are *moved* into the new
/// plan instead of being re-created — this carries constant-weight captures and
/// Winograd weight transforms across a resize.
pub(super) fn build_plan(
    graph: &Graph,
    config: &SessionConfig,
    backends: &mut [Box<dyn Backend>],
    reuse: Option<&mut ExecutionPlan>,
) -> Result<ExecutionPlan, CoreError> {
    let start = Instant::now();

    // --- Hybrid scheduling (Eq. 4–5) -------------------------------------
    let backend_refs: Vec<&dyn Backend> = backends.iter().map(|b| b.as_ref()).collect();
    let cpu_index = backend_refs
        .iter()
        .position(|b| b.forward_type() == ForwardType::Cpu)
        .expect("CPU backend is always present");
    let placements: Vec<Placement> = hybrid_schedule(graph, &backend_refs, cpu_index);
    let estimated_total_ms = placement_cost_ms(&placements);

    // --- Scheme selection (Eq. 2–3) --------------------------------------
    let order = graph.topological_order()?;
    let mut scheduled = Vec::with_capacity(order.len());
    let mut report_placements = Vec::with_capacity(order.len());
    for node_id in &order {
        let node = graph.node(*node_id)?;
        let placement = placements
            .iter()
            .find(|p| p.node == *node_id)
            .expect("placement exists for every node");
        let scheme_decision: Option<SchemeDecision> = match &node.op {
            Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => {
                let input_shape = graph
                    .tensor_info(node.inputs[0])?
                    .shape
                    .clone()
                    .ok_or_else(|| {
                        CoreError::InvalidInput(format!("no shape for input of {}", node.name))
                    })?;
                Some(select_conv_scheme(
                    &attrs.to_conv_params(),
                    input_shape.height(),
                    input_shape.width(),
                    config.max_winograd_tile,
                ))
            }
            Op::Conv2dQuantized { attrs, .. } => {
                let input_shape = graph
                    .tensor_info(node.inputs[0])?
                    .shape
                    .clone()
                    .ok_or_else(|| {
                        CoreError::InvalidInput(format!("no shape for input of {}", node.name))
                    })?;
                Some(select_quantized_conv_scheme(
                    &attrs.to_conv_params(),
                    input_shape.height(),
                    input_shape.width(),
                ))
            }
            Op::FullyConnectedQuantized { .. } => Some(quantized_fc_decision(
                graph.node_mul_count(node).unwrap_or(0),
            )),
            _ => None,
        };
        let hint = SchemeHint {
            conv_scheme: scheme_decision.as_ref().map(|d| d.selected),
            threads: Some(config.threads),
        };
        report_placements.push(NodePlacement {
            node: *node_id,
            name: node.name.clone(),
            op: node.op.name(),
            forward_type: backends[placement.backend_index].forward_type(),
            scheme: hint.conv_scheme,
            estimated_cost_ms: placement.cost_ms,
        });
        scheduled.push(ScheduledNode {
            node: *node_id,
            backend_index: placement.backend_index,
            hint,
            execution: None,
        });
    }

    // --- Memory plan (Fig. 3) --------------------------------------------
    let memory_plan = MemoryPlan::build(graph)?;

    // --- Preparation–execution decoupling ---------------------------------
    let mut reused_executions = 0usize;
    if config.decouple_preparation {
        // Index the previous plan's executions by node so unchanged ones move over.
        let mut previous: HashMap<NodeId, &mut ScheduledNode> = HashMap::new();
        if let Some(old) = reuse {
            for entry in &mut old.scheduled {
                previous.insert(entry.node, entry);
            }
        }
        for entry in &mut scheduled {
            if let Some(old) = previous.get_mut(&entry.node) {
                // Executions may only carry over when the placement and scheme are
                // unchanged AND the backend's executions are geometry-invariant —
                // simulated GPU executions bake shape-derived virtual costs in at
                // creation time and must be re-encoded for the new geometry.
                if old.backend_index == entry.backend_index
                    && old.hint == entry.hint
                    && old.execution.is_some()
                    && backends[entry.backend_index].executions_are_geometry_invariant()
                {
                    entry.execution = old.execution.take();
                    reused_executions += 1;
                    continue;
                }
            }
            let node = graph.node(entry.node)?;
            let execution = backends[entry.backend_index].on_create(node, graph, &entry.hint)?;
            entry.execution = Some(execution);
        }
    }

    let report = PreInferenceReport {
        placements: report_placements,
        estimated_total_ms,
        planned_memory_elements: memory_plan.planned_elements(),
        unplanned_memory_elements: memory_plan.unplanned_elements(),
        pre_inference_ms: start.elapsed().as_secs_f64() * 1000.0,
        reused_executions,
        from_cache: false,
    };

    Ok(ExecutionPlan {
        order,
        scheduled,
        report,
        memory_plan,
    })
}

/// Re-create any missing executions in `plan` (used when a plan is re-activated
/// from the shape-signature cache after some of its executions migrated to a
/// newer plan). Returns how many executions were retained as-is, so the
/// restored plan's report can describe *this* activation rather than the one
/// that originally built it.
pub(super) fn ensure_executions(
    plan: &mut ExecutionPlan,
    graph: &Graph,
    config: &SessionConfig,
    backends: &mut [Box<dyn Backend>],
) -> Result<usize, CoreError> {
    if !config.decouple_preparation {
        return Ok(0);
    }
    let mut retained = 0usize;
    for entry in &mut plan.scheduled {
        if entry.execution.is_none() {
            let node = graph.node(entry.node)?;
            entry.execution =
                Some(backends[entry.backend_index].on_create(node, graph, &entry.hint)?);
        } else {
            retained += 1;
        }
    }
    Ok(retained)
}
