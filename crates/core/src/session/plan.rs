//! Pre-inference: scheme selection, hybrid scheduling, memory planning and
//! execution creation, bundled into a swappable [`ExecutionPlan`].
//!
//! Everything here is a pure function of (graph geometry, configuration): a
//! session re-runs it whenever its input shapes change (`resize_session`) and
//! caches the resulting plans per shape signature.

use super::config::SessionConfig;
use crate::cost::{hybrid_schedule, placement_cost_ms, Placement};
use crate::memory_plan::MemoryPlan;
use crate::scheme::{
    quantized_fc_decision_with, select_conv_scheme_with, select_quantized_conv_scheme_with,
    SchemeDecision,
};
use crate::CoreError;
use mnn_backend::{Backend, ConvScheme, Execution, ForwardType, SchemeHint};
use mnn_graph::{Graph, NodeId, Op};
use mnn_tune::{candidates_for_node, OpSignature, Tuner};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// The per-node outcome of pre-inference.
#[derive(Debug, Clone)]
pub struct NodePlacement {
    /// The node.
    pub node: NodeId,
    /// Node name (for reporting).
    pub name: String,
    /// Operator name.
    pub op: &'static str,
    /// Backend chosen by hybrid scheduling.
    pub forward_type: ForwardType,
    /// Convolution scheme chosen by the cost model, when the node is a convolution.
    pub scheme: Option<ConvScheme>,
    /// Estimated cost on the chosen backend, in milliseconds.
    pub estimated_cost_ms: f64,
    /// Measured cost of the selected scheme, when the node was auto-tuned
    /// (fresh measurement or a tuning-cache hit). `None` for cost-model
    /// placements.
    pub measured_cost_ms: Option<f64>,
}

impl NodePlacement {
    /// Whether this node's scheme came from measurements rather than the cost
    /// model.
    pub fn is_tuned(&self) -> bool {
        self.measured_cost_ms.is_some()
    }
}

/// Summary of everything pre-inference decided, for inspection and experiments.
#[derive(Debug, Clone)]
pub struct PreInferenceReport {
    /// Per-node backend/scheme decisions.
    pub placements: Vec<NodePlacement>,
    /// Estimated total cost of the placement, in milliseconds (Eq. 4).
    pub estimated_total_ms: f64,
    /// Arena elements required with live-range reuse.
    pub planned_memory_elements: usize,
    /// Elements required without reuse.
    pub unplanned_memory_elements: usize,
    /// Milliseconds spent in pre-inference (scheme search + execution creation).
    pub pre_inference_ms: f64,
    /// Executions carried over from the previous geometry by `resize_session`
    /// (constant-weight captures — including Winograd weight transforms — whose
    /// scheme did not change). Zero for a freshly created session.
    pub reused_executions: usize,
    /// Whether this plan was restored from the per-shape-signature pre-inference
    /// cache instead of being recomputed.
    pub from_cache: bool,
    /// Nodes whose scheme was resolved from tuning measurements (fresh or from
    /// the device-keyed tuning cache).
    pub tuned_nodes: usize,
    /// Candidate kernels micro-benchmarked while building *this* plan (0 when
    /// every tuned node hit the cache — the warm-start guarantee).
    pub tuning_measured_candidates: usize,
    /// Nodes the backend cost estimate had to skip for unknown shapes. When
    /// non-zero, hybrid placement was decided on a partial cost sum (see
    /// [`graph_cost`](crate::cost::graph_cost)).
    pub cost_skipped_nodes: usize,
}

impl PreInferenceReport {
    /// Fraction of intermediate memory saved by the plan.
    pub fn memory_savings_ratio(&self) -> f64 {
        if self.unplanned_memory_elements == 0 {
            return 0.0;
        }
        1.0 - self.planned_memory_elements as f64 / self.unplanned_memory_elements as f64
    }
}

impl fmt::Display for PreInferenceReport {
    /// Render the report as a per-node placement table, e.g.
    ///
    /// ```text
    /// pre-inference: 1.23 ms (computed), estimated run cost 0.456 ms
    /// memory: 12345 -> 2345 elements (81% saved)
    /// node              op              backend  scheme            est ms
    /// conv1             Conv2d          cpu      winograd-F(4x4)    0.123
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pre-inference: {:.2} ms ({}{}{}), estimated run cost {:.3} ms",
            self.pre_inference_ms,
            if self.from_cache {
                "cached plan"
            } else {
                "computed"
            },
            if self.reused_executions > 0 {
                format!(", {} executions reused", self.reused_executions)
            } else {
                String::new()
            },
            if self.tuned_nodes > 0 {
                format!(
                    ", {} nodes tuned ({} candidates measured)",
                    self.tuned_nodes, self.tuning_measured_candidates
                )
            } else {
                String::new()
            },
            self.estimated_total_ms
        )?;
        if self.cost_skipped_nodes > 0 {
            writeln!(
                f,
                "warning: cost model skipped {} node(s) with unknown shapes; placement used a partial sum",
                self.cost_skipped_nodes
            )?;
        }
        writeln!(
            f,
            "memory: {} -> {} elements ({:.0}% saved)",
            self.unplanned_memory_elements,
            self.planned_memory_elements,
            self.memory_savings_ratio() * 100.0
        )?;
        writeln!(
            f,
            "{:<20} {:<16} {:<8} {:<18} {:>9} {:>9}",
            "node", "op", "backend", "scheme", "est ms", "meas ms"
        )?;
        for p in &self.placements {
            writeln!(
                f,
                // `ForwardType`'s Display ignores width flags (write_str), so
                // render it to a string before padding.
                "{:<20} {:<16} {:<8} {:<18} {:>9.4} {:>9}",
                p.name,
                p.op,
                p.forward_type.to_string(),
                p.scheme
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                p.estimated_cost_ms,
                p.measured_cost_ms
                    .map(|ms| format!("{ms:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
            )?;
        }
        Ok(())
    }
}

/// One node scheduled for execution inside a session.
pub(super) struct ScheduledNode {
    pub(super) node: NodeId,
    pub(super) backend_index: usize,
    pub(super) hint: SchemeHint,
    /// Pre-created execution when preparation is decoupled from execution.
    pub(super) execution: Option<Box<dyn Execution>>,
}

/// Everything pre-inference produced for one input geometry: the execution order,
/// the scheduled nodes (placements + pre-created executions), the memory plan and
/// the report. Sessions swap whole plans on `resize_session`.
pub(super) struct ExecutionPlan {
    pub(super) order: Vec<NodeId>,
    pub(super) scheduled: Vec<ScheduledNode>,
    pub(super) report: PreInferenceReport,
    pub(super) memory_plan: MemoryPlan,
}

/// Run pre-inference for `graph` (shapes already inferred) against `backends`.
///
/// When `reuse` holds the plan of the previous geometry, executions whose
/// placement (backend) and scheme hint are unchanged are *moved* into the new
/// plan instead of being re-created — this carries constant-weight captures and
/// Winograd weight transforms across a resize.
pub(super) fn build_plan(
    graph: &Graph,
    config: &SessionConfig,
    backends: &mut [Box<dyn Backend>],
    reuse: Option<&mut ExecutionPlan>,
    tuner: Option<&Tuner>,
) -> Result<ExecutionPlan, CoreError> {
    let start = Instant::now();
    let tuning_baseline = tuner.map(|t| t.stats().measured_candidates).unwrap_or(0);

    // --- Hybrid scheduling (Eq. 4–5) -------------------------------------
    let backend_refs: Vec<&dyn Backend> = backends.iter().map(|b| b.as_ref()).collect();
    let cpu_index = backend_refs
        .iter()
        .position(|b| b.forward_type() == ForwardType::Cpu)
        .expect("CPU backend is always present");
    let placements: Vec<Placement> = hybrid_schedule(graph, &backend_refs, cpu_index);
    let estimated_total_ms = placement_cost_ms(&placements);

    // --- Scheme selection (Eq. 2–3), with measured override ---------------
    let order = graph.topological_order()?;
    let mut scheduled = Vec::with_capacity(order.len());
    let mut report_placements = Vec::with_capacity(order.len());
    let mut tuned_nodes = 0usize;
    // Executions prepared as tuning winners, installed into the plan below so
    // the measured kernel (including its Winograd weight transform) is not
    // re-created.
    let mut tuned_executions: HashMap<NodeId, Box<dyn Execution>> = HashMap::new();
    for node_id in &order {
        let node = graph.node(*node_id)?;
        let placement = placements
            .iter()
            .find(|p| p.node == *node_id)
            .expect("placement exists for every node");
        let scheme_decision: Option<SchemeDecision> = match &node.op {
            Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => {
                let input_shape = graph
                    .tensor_info(node.inputs[0])?
                    .shape
                    .clone()
                    .ok_or_else(|| {
                        CoreError::InvalidInput(format!("no shape for input of {}", node.name))
                    })?;
                Some(select_conv_scheme_with(
                    &attrs.to_conv_params(),
                    input_shape.height(),
                    input_shape.width(),
                    config.max_winograd_tile,
                    &config.cost_model,
                ))
            }
            Op::Conv2dQuantized { attrs, .. } => {
                let input_shape = graph
                    .tensor_info(node.inputs[0])?
                    .shape
                    .clone()
                    .ok_or_else(|| {
                        CoreError::InvalidInput(format!("no shape for input of {}", node.name))
                    })?;
                Some(select_quantized_conv_scheme_with(
                    &attrs.to_conv_params(),
                    input_shape.height(),
                    input_shape.width(),
                    &config.cost_model,
                ))
            }
            Op::FullyConnectedQuantized { .. } => Some(quantized_fc_decision_with(
                graph.node_mul_count(node).unwrap_or(0),
                &config.cost_model,
            )),
            _ => None,
        };
        let mut selected_scheme = scheme_decision.as_ref().map(|d| d.selected);
        let mut measured_cost_ms = None;

        // Measured override: only meaningful where wall-clock time is real —
        // nodes placed on the CPU backend (simulated GPU executions tick a
        // virtual clock). The cost-model choice above stays the fallback for
        // non-tunable nodes, `Cached`-mode misses and measurement failures.
        if let Some(tuner) = tuner {
            let on_cpu = backends[placement.backend_index].forward_type() == ForwardType::Cpu;
            if on_cpu && selected_scheme.is_some() {
                let mut candidates = candidates_for_node(node, config.max_winograd_tile);
                if config.force_scalar {
                    // Session-scoped scalar pinning: SIMD variants leave the
                    // pool, and the candidate-membership guard below then also
                    // rejects cached SIMD winners. A pool reduced to a single
                    // kernel has nothing left to measure.
                    candidates.retain(|c| !c.is_simd());
                    if candidates.len() < 2 {
                        candidates.clear();
                    }
                }
                if !candidates.is_empty() {
                    if let Some(sig) = OpSignature::for_node(node, graph) {
                        // A cache hit is only usable when its scheme is in
                        // *this* session's candidate pool: a cache tuned under
                        // a larger `max_winograd_tile` (or a doctored file)
                        // must not smuggle in a scheme the current
                        // configuration forbids. An unusable hit degrades to a
                        // miss: re-measure in Full mode, cost model otherwise.
                        let cached = tuner.lookup(&sig).and_then(|entry| {
                            ConvScheme::parse(&entry.scheme)
                                .filter(|scheme| candidates.contains(scheme))
                                .map(|scheme| (scheme, entry.measured_ms))
                        });
                        let tuned = match cached {
                            Some(hit) => Some(hit),
                            None if config.tuning.measures() => {
                                match tuner.measure_node(
                                    backends[placement.backend_index].as_ref(),
                                    node,
                                    graph,
                                    &sig,
                                    &candidates,
                                    config.threads,
                                ) {
                                    Ok((entry, execution)) => {
                                        if config.decouple_preparation {
                                            tuned_executions.insert(*node_id, execution);
                                        }
                                        ConvScheme::parse(&entry.scheme)
                                            .map(|scheme| (scheme, entry.measured_ms))
                                    }
                                    // A failed measurement falls back to the
                                    // cost model; nothing is cached.
                                    Err(_) => None,
                                }
                            }
                            None => None,
                        };
                        if let Some((scheme, measured_ms)) = tuned {
                            selected_scheme = Some(scheme);
                            measured_cost_ms = Some(measured_ms);
                            tuned_nodes += 1;
                        }
                    }
                }
            }
        }

        let hint = SchemeHint {
            conv_scheme: selected_scheme,
            threads: Some(config.threads),
        };
        report_placements.push(NodePlacement {
            node: *node_id,
            name: node.name.clone(),
            op: node.op.name(),
            forward_type: backends[placement.backend_index].forward_type(),
            scheme: hint.conv_scheme,
            estimated_cost_ms: placement.cost_ms,
            measured_cost_ms,
        });
        scheduled.push(ScheduledNode {
            node: *node_id,
            backend_index: placement.backend_index,
            hint,
            execution: None,
        });
    }

    // --- Memory plan (Fig. 3) --------------------------------------------
    let memory_plan = MemoryPlan::build(graph)?;

    // --- Preparation–execution decoupling ---------------------------------
    let mut reused_executions = 0usize;
    if config.decouple_preparation {
        // Index the previous plan's executions by node so unchanged ones move over.
        let mut previous: HashMap<NodeId, &mut ScheduledNode> = HashMap::new();
        if let Some(old) = reuse {
            for entry in &mut old.scheduled {
                previous.insert(entry.node, entry);
            }
        }
        for entry in &mut scheduled {
            // The tuning winner was already prepared (and validated) by the
            // measurement pass; install it instead of re-creating it.
            if let Some(execution) = tuned_executions.remove(&entry.node) {
                entry.execution = Some(execution);
                continue;
            }
            if let Some(old) = previous.get_mut(&entry.node) {
                // Executions may only carry over when the placement and scheme are
                // unchanged AND the backend's executions are geometry-invariant —
                // simulated GPU executions bake shape-derived virtual costs in at
                // creation time and must be re-encoded for the new geometry.
                if old.backend_index == entry.backend_index
                    && old.hint == entry.hint
                    && old.execution.is_some()
                    && backends[entry.backend_index].executions_are_geometry_invariant()
                {
                    entry.execution = old.execution.take();
                    reused_executions += 1;
                    continue;
                }
            }
            let node = graph.node(entry.node)?;
            let execution = backends[entry.backend_index].on_create(node, graph, &entry.hint)?;
            entry.execution = Some(execution);
        }
    }

    let cost_skipped_nodes = crate::cost::skipped_cost_nodes(graph);
    let report = PreInferenceReport {
        placements: report_placements,
        estimated_total_ms,
        planned_memory_elements: memory_plan.planned_elements(),
        unplanned_memory_elements: memory_plan.unplanned_elements(),
        pre_inference_ms: start.elapsed().as_secs_f64() * 1000.0,
        reused_executions,
        from_cache: false,
        tuned_nodes,
        tuning_measured_candidates: tuner
            .map(|t| (t.stats().measured_candidates - tuning_baseline) as usize)
            .unwrap_or(0),
        cost_skipped_nodes,
    };

    Ok(ExecutionPlan {
        order,
        scheduled,
        report,
        memory_plan,
    })
}

/// Re-create any missing executions in `plan` (used when a plan is re-activated
/// from the shape-signature cache after some of its executions migrated to a
/// newer plan). Returns how many executions were retained as-is, so the
/// restored plan's report can describe *this* activation rather than the one
/// that originally built it.
pub(super) fn ensure_executions(
    plan: &mut ExecutionPlan,
    graph: &Graph,
    config: &SessionConfig,
    backends: &mut [Box<dyn Backend>],
) -> Result<usize, CoreError> {
    if !config.decouple_preparation {
        return Ok(0);
    }
    let mut retained = 0usize;
    for entry in &mut plan.scheduled {
        if entry.execution.is_none() {
            let node = graph.node(entry.node)?;
            entry.execution =
                Some(backends[entry.backend_index].on_create(node, graph, &entry.hint)?);
        } else {
            retained += 1;
        }
    }
    Ok(retained)
}
