//! Dynamic input resizing: MNN's `resizeTensor` + `resizeSession`.
//!
//! The paper's pre-inference (Fig. 2) runs once per *input geometry*: scheme
//! selection, hybrid scheduling and the memory plan are all functions of the
//! input shapes. When an application changes an input's shape it calls
//! [`Session::resize_input`] (staging, like MNN's `resizeTensor`) and then
//! [`Session::resize_session`], which re-runs shape inference and pre-inference
//! for the new geometry while:
//!
//! * **reusing execution instances** whose backend placement and scheme are
//!   unchanged — constant-weight captures, including Winograd-transformed
//!   weights, survive the resize;
//! * **caching whole plans per shape signature**, so alternating between
//!   previously-seen geometries swaps plans in O(1) instead of re-planning.

use super::plan::{build_plan, ensure_executions};
use super::{CachedPlan, Session};
use crate::CoreError;
use mnn_graph::Graph;
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::Instant;

impl Session {
    /// Stage a new shape for the input named `name` (MNN's `resizeTensor`).
    ///
    /// Nothing is re-planned until [`Session::resize_session`] is called, so
    /// several inputs can be resized in one batch. Runs performed before
    /// `resize_session` still use the old geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an unknown input name.
    pub fn resize_input(&mut self, name: &str, shape: Shape) -> Result<(), CoreError> {
        let id = self.resolve_input(name)?;
        self.pending_shapes.insert(id, shape);
        Ok(())
    }

    /// Apply staged input shapes: re-run shape inference and pre-inference for the
    /// new geometry (MNN's `resizeSession`).
    ///
    /// The previous geometry's plan is parked in the per-shape-signature cache;
    /// resizing back to it later restores it without re-planning (visible as
    /// [`PreInferenceReport::from_cache`](super::PreInferenceReport::from_cache)
    /// and counted by [`Session::plan_cache_hits`]). Staged input tensors are
    /// re-allocated (zero-filled) for inputs whose shape changed; outputs of
    /// previous runs are cleared.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] when the new shapes do not satisfy shape
    /// inference (e.g. a channel-count change that contradicts the weights), in
    /// which case the session keeps its previous geometry and remains usable.
    /// Staged shapes are consumed either way — a rejected resize does not
    /// poison later `resize_input` + `resize_session` calls.
    pub fn resize_session(&mut self) -> Result<(), CoreError> {
        // Consume the staged shapes up front so every exit path — including the
        // error ones — leaves the session with a clean slate.
        let pending = std::mem::take(&mut self.pending_shapes);
        if pending.is_empty() {
            return Ok(());
        }
        let start = Instant::now();

        let current_key = self.shape_signature();
        let mut target_key = current_key.clone();
        for (position, id) in self.graph.inputs().iter().enumerate() {
            if let Some(shape) = pending.get(id) {
                target_key[position] = shape.clone();
            }
        }
        if target_key == current_key {
            return Ok(());
        }
        mnn_obs::global()
            .counter(
                mnn_obs::metrics::names::SESSION_RESIZES,
                "resize_session calls that changed the active geometry.",
            )
            .inc();

        if let Some(mut cached) = self.plan_cache.remove(&target_key) {
            // The restored plan leaves the cache account immediately; if
            // execution re-creation below fails the plan is dropped, so its
            // bytes must already be off the books.
            if let Some(accounts) = &self.accounts {
                accounts.plan_cache.sub(cached.arena_bytes);
            }
            // Cache hit: swap plans. Executions that migrated to a newer plan in
            // the meantime are re-created; everything else is reused as-is.
            let retained = ensure_executions(
                &mut cached.plan,
                &cached.graph,
                &self.config,
                &mut self.backends,
            )?;
            cached.plan.report.from_cache = true;
            // Describe *this* activation: how many executions the cached plan
            // still held, not whatever the original cold build reused.
            cached.plan.report.reused_executions = retained;
            cached.plan.report.pre_inference_ms = start.elapsed().as_secs_f64() * 1000.0;
            let restored_bytes = cached.arena_bytes;
            let old_plan = std::mem::replace(&mut self.plan, cached.plan);
            let old_graph = std::mem::replace(&mut self.graph, cached.graph);
            let old_bytes = old_plan.memory_plan.planned_bytes() as u64;
            if let Some(accounts) = &self.accounts {
                accounts.arena.sub(old_bytes);
                accounts.arena.add(restored_bytes);
            }
            self.park_plan(
                current_key,
                CachedPlan {
                    graph: old_graph,
                    plan: old_plan,
                    arena_bytes: old_bytes,
                },
            );
            self.cache_hits += 1;
            mnn_obs::global()
                .counter(
                    mnn_obs::metrics::names::PLAN_CACHE_HITS,
                    "Resizes served from the per-shape-signature plan cache.",
                )
                .inc();
        } else {
            // Cold resize: re-infer shapes on a (cheap, weight-sharing) copy of the
            // graph, then re-run pre-inference, migrating unchanged executions.
            let mut new_graph: Graph = (*self.graph).clone();
            for (id, shape) in &pending {
                new_graph.set_input_shape(*id, shape.clone())?;
            }
            new_graph.infer_shapes()?;
            let new_graph = Arc::new(new_graph);
            let mut new_plan = match build_plan(
                &new_graph,
                &self.config,
                &mut self.backends,
                Some(&mut self.plan),
                self.tuner.as_ref(),
            ) {
                Ok(plan) => plan,
                Err(e) => {
                    // Re-create any executions the failed build migrated out of the
                    // active plan, so the session stays usable at its old geometry.
                    let _ = ensure_executions(
                        &mut self.plan,
                        &self.graph,
                        &self.config,
                        &mut self.backends,
                    )?;
                    return Err(e);
                }
            };
            Self::persist_tuning(self.tuner.as_ref());
            mnn_obs::global()
                .counter(
                    mnn_obs::metrics::names::PLAN_CACHE_MISSES,
                    "Resizes that re-ran pre-inference for a new geometry.",
                )
                .inc();
            new_plan.report.pre_inference_ms = start.elapsed().as_secs_f64() * 1000.0;
            let new_bytes = new_plan.memory_plan.planned_bytes() as u64;
            let old_plan = std::mem::replace(&mut self.plan, new_plan);
            let old_graph = std::mem::replace(&mut self.graph, new_graph);
            let old_bytes = old_plan.memory_plan.planned_bytes() as u64;
            if let Some(accounts) = &self.accounts {
                accounts.arena.sub(old_bytes);
                accounts.arena.add(new_bytes);
            }
            self.park_plan(
                current_key,
                CachedPlan {
                    graph: old_graph,
                    plan: old_plan,
                    arena_bytes: old_bytes,
                },
            );
        }

        // Refresh staged inputs: keep tensors whose shape is unchanged, replace
        // resized ones with zero-filled tensors of the new shape.
        for id in self.graph.inputs() {
            let expected = self.graph.tensor_info(*id)?.shape.clone().ok_or_else(|| {
                CoreError::InvalidInput(format!("graph input {id} has no declared shape"))
            })?;
            let stale = self
                .inputs
                .get(id)
                .map(|t| t.shape() != &expected)
                .unwrap_or(true);
            if stale {
                self.inputs.insert(*id, Tensor::zeros(expected));
            }
        }
        self.outputs.clear();
        Ok(())
    }

    /// Park a geometry's plan in the cache, evicting an arbitrary entry when the
    /// cache is full (the parked plan itself is always kept — the common pattern
    /// alternates between a small set of geometries). With
    /// [`SessionConfig::plan_cache_capacity`] set to 0 the plan is dropped
    /// instead: caching is disabled.
    fn park_plan(&mut self, key: Vec<Shape>, cached: CachedPlan) {
        let capacity = self.config.plan_cache_capacity;
        if capacity == 0 {
            // The plan is dropped; its bytes already left the arena account
            // at the swap, so there is nothing to move to the cache account.
            return;
        }
        if self.plan_cache.len() >= capacity {
            if let Some(evict) = self.plan_cache.keys().next().cloned() {
                if let Some(evicted) = self.plan_cache.remove(&evict) {
                    if let Some(accounts) = &self.accounts {
                        accounts.plan_cache.sub(evicted.arena_bytes);
                    }
                }
            }
        }
        if let Some(accounts) = &self.accounts {
            accounts.plan_cache.add(cached.arena_bytes);
        }
        self.plan_cache.insert(key, cached);
    }

    /// The session's current input shapes, in graph-input order (the key of the
    /// pre-inference cache).
    pub fn shape_signature(&self) -> Vec<Shape> {
        self.graph
            .inputs()
            .iter()
            .map(|id| {
                self.graph
                    .tensor_info(*id)
                    .ok()
                    .and_then(|info| info.shape.clone())
                    .unwrap_or_else(|| Shape::vector(0))
            })
            .collect()
    }

    /// Number of geometries whose pre-inference results are currently cached
    /// (excluding the active one).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// How many `resize_session` calls were served from the pre-inference cache.
    pub fn plan_cache_hits(&self) -> usize {
        self.cache_hits
    }
}
