use super::*;
use crate::CoreError;
use mnn_backend::{ConvScheme, ForwardType, GpuProfile};
use mnn_graph::{ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, GraphBuilder, PoolAttrs};
use mnn_tensor::Shape;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new("small-cnn");
    let x = b.input("x", Shape::nchw(1, 3, 16, 16));
    let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
    let y = b.activation("relu1", y, ActivationKind::Relu);
    let skip = b.conv2d_auto("proj", y, Conv2dAttrs::pointwise(8, 8), false);
    let y2 = b.conv2d_auto("conv2", y, Conv2dAttrs::same_3x3(8, 8), false);
    let y = b.binary("residual", y2, skip, BinaryKind::Add);
    let y = b.pool("pool", y, PoolAttrs::global_avg());
    let y = b.flatten("flat", y, FlattenAttrs { start_axis: 1 });
    let y = b.fully_connected_auto("fc", y, 8, 4);
    let y = b.softmax("prob", y);
    b.build(vec![y])
}

/// A fully convolutional network (no flatten/FC) whose output shape follows the
/// input's spatial size — the interesting case for `resize_session`.
fn fully_conv_net() -> Graph {
    let mut b = GraphBuilder::new("fcn");
    let x = b.input("x", Shape::nchw(1, 3, 16, 16));
    let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
    let y = b.activation("relu1", y, ActivationKind::Relu);
    let y = b.conv2d_auto("conv2", y, Conv2dAttrs::same_3x3(8, 8), false);
    let y = b.conv2d_auto("head", y, Conv2dAttrs::pointwise(8, 2), false);
    b.build(vec![y])
}

fn input_tensor() -> Tensor {
    Tensor::from_vec(
        Shape::nchw(1, 3, 16, 16),
        (0..768).map(|v| ((v % 23) as f32 - 11.0) * 0.05).collect(),
    )
}

fn sized_input(size: usize) -> Tensor {
    Tensor::from_vec(
        Shape::nchw(1, 3, size, size),
        (0..3 * size * size)
            .map(|v| ((v % 23) as f32 - 11.0) * 0.05)
            .collect(),
    )
}

#[test]
fn end_to_end_cpu_inference_produces_probabilities() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let outputs = session.run(&[input_tensor()]).unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].shape().dims(), &[1, 4]);
    let sum: f32 = outputs[0].data_f32().iter().sum();
    assert!((sum - 1.0).abs() < 1e-4, "softmax outputs must sum to 1");
}

#[test]
fn decoupled_and_coupled_modes_agree_numerically() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut with = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut without = interpreter
        .create_session(SessionConfig {
            decouple_preparation: false,
            ..SessionConfig::cpu(2)
        })
        .unwrap();
    let input = input_tensor();
    let a = with.run(std::slice::from_ref(&input)).unwrap();
    let b = without.run(std::slice::from_ref(&input)).unwrap();
    assert!(a[0].max_abs_diff(&b[0]) < 1e-5);
}

#[test]
fn gpu_session_matches_cpu_session_outputs() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut cpu = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut gpu = interpreter
        .create_session(SessionConfig::gpu(
            ForwardType::Vulkan,
            GpuProfile::by_name("Mali-G72"),
        ))
        .unwrap();
    let input = input_tensor();
    let a = cpu.run(std::slice::from_ref(&input)).unwrap();
    let b = gpu.run(std::slice::from_ref(&input)).unwrap();
    assert!(a[0].max_abs_diff(&b[0]) < 1e-4);
    // The GPU session must actually have used the simulated GPU for heavy ops.
    assert!(gpu.last_stats().gpu_virtual_ms > 0.0);
    let report = gpu.report();
    assert!(report
        .placements
        .iter()
        .any(|p| p.forward_type == ForwardType::Vulkan));
    // The fully-connected head is not GPU-supported: hybrid scheduling keeps it
    // on the CPU within the same session.
    assert!(report
        .placements
        .iter()
        .any(|p| p.op == "FullyConnected" && p.forward_type == ForwardType::Cpu));
}

#[test]
fn report_contains_schemes_for_convolutions() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let report = session.report();
    let conv_placements: Vec<_> = report
        .placements
        .iter()
        .filter(|p| p.op == "Conv2d")
        .collect();
    assert_eq!(conv_placements.len(), 3);
    assert!(conv_placements.iter().all(|p| p.scheme.is_some()));
    assert!(report.estimated_total_ms > 0.0);
    assert!(report.planned_memory_elements > 0);
    assert!(report.planned_memory_elements <= report.unplanned_memory_elements);
}

#[test]
fn report_display_prints_a_placement_table() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let rendered = session.report().to_string();
    assert!(rendered.contains("pre-inference"));
    assert!(rendered.contains("node"));
    assert!(rendered.contains("conv1"));
    assert!(rendered.contains("Conv2d"));
    assert!(rendered.contains("cpu"));
    // One table row per placement.
    assert!(rendered.lines().count() >= session.report().placements.len() + 3);
}

#[test]
fn input_validation_rejects_wrong_shapes_and_counts() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    assert!(session.run(&[]).is_err());
    let wrong = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
    assert!(session.run(&[wrong]).is_err());
}

#[test]
fn benchmark_returns_positive_averages() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let stats = session.benchmark(&[input_tensor()], 1, 3).unwrap();
    assert!(stats.wall_ms > 0.0);
}

#[test]
fn repeated_runs_are_deterministic() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let input = input_tensor();
    let a = session.run(std::slice::from_ref(&input)).unwrap();
    let b = session.run(std::slice::from_ref(&input)).unwrap();
    assert_eq!(a[0].data_f32(), b[0].data_f32());
}

#[test]
fn zero_threads_is_rejected() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let err = interpreter
        .create_session(SessionConfig {
            threads: 0,
            ..SessionConfig::default()
        })
        .err()
        .unwrap();
    assert!(matches!(err, CoreError::InvalidConfig(_)));
}

// ---------------------------------------------------------------------------
// Owned sessions, named I/O, resize
// ---------------------------------------------------------------------------

#[test]
fn session_outlives_its_interpreter() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    drop(interpreter);
    let outputs = session.run(&[input_tensor()]).unwrap();
    assert_eq!(outputs[0].shape().dims(), &[1, 4]);
}

#[test]
fn session_moves_across_threads() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let expected = session.run(&[input_tensor()]).unwrap();
    let handle = std::thread::spawn(move || session.run(&[input_tensor()]).unwrap());
    let from_worker = handle.join().unwrap();
    assert_eq!(expected[0].data_f32(), from_worker[0].data_f32());
}

#[test]
fn named_run_matches_positional_run_bit_for_bit() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut positional = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut named = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let input = input_tensor();
    let a = positional.run(std::slice::from_ref(&input)).unwrap();
    let b = named.run_with(&[("x", &input)]).unwrap();
    assert_eq!(a[0].data_f32(), b[0].data_f32());
    // The staged-input flow produces the same bits again.
    *named.input_mut("x").unwrap() = input.clone();
    named.run_session().unwrap();
    assert_eq!(named.output("prob").unwrap().data_f32(), a[0].data_f32());
}

#[test]
fn named_io_rejects_unknown_names() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    assert!(session.input_mut("nope").is_err());
    assert!(session.run_with(&[("nope", &input_tensor())]).is_err());
    session.run(&[input_tensor()]).unwrap();
    assert!(session.output("nope").is_err());
    assert!(session.output("prob").is_ok());
}

#[test]
fn io_names_are_reported_in_order() {
    let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    assert_eq!(session.input_names(), vec!["x"]);
    assert_eq!(session.output_names(), vec!["prob"]);
}

#[test]
fn resize_session_recomputes_shapes_schemes_and_memory() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let small_plan = session.report().planned_memory_elements;
    let out = session.run(&[sized_input(16)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 16, 16]);

    // Grow the input: output shape and memory plan must follow.
    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    let out = session.run(&[sized_input(32)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 32, 32]);
    assert!(session.report().planned_memory_elements > small_plan);
    assert!(!session.report().from_cache);

    // Shrink below the original size.
    session.resize_input("x", Shape::nchw(1, 3, 8, 8)).unwrap();
    session.resize_session().unwrap();
    let out = session.run(&[sized_input(8)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 8, 8]);
    assert!(session.report().planned_memory_elements < small_plan);
}

#[test]
fn resized_session_matches_a_fresh_session() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut resized = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    resized.run(&[sized_input(16)]).unwrap();
    resized
        .resize_input("x", Shape::nchw(1, 3, 24, 24))
        .unwrap();
    resized.resize_session().unwrap();
    let a = resized.run(&[sized_input(24)]).unwrap();

    // A session created directly at the new geometry must agree bit-for-bit.
    let mut graph = fully_conv_net();
    let x = graph.inputs()[0];
    graph.set_input_shape(x, Shape::nchw(1, 3, 24, 24)).unwrap();
    let fresh_interpreter = Interpreter::from_graph(graph).unwrap();
    let mut fresh = fresh_interpreter
        .create_session(SessionConfig::cpu(2))
        .unwrap();
    let b = fresh.run(&[sized_input(24)]).unwrap();
    assert_eq!(a[0].data_f32(), b[0].data_f32());
    // And the re-planned decisions must match a cold plan for the same geometry.
    for (resized_p, fresh_p) in resized
        .report()
        .placements
        .iter()
        .zip(&fresh.report().placements)
    {
        assert_eq!(resized_p.scheme, fresh_p.scheme);
        assert_eq!(resized_p.forward_type, fresh_p.forward_type);
    }
}

#[test]
fn alternating_geometries_hit_the_pre_inference_cache() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    session.run(&[sized_input(16)]).unwrap();

    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_hits(), 0);
    assert_eq!(session.plan_cache_len(), 1);
    let out32 = session.run(&[sized_input(32)]).unwrap();

    // Back to the first geometry: must be served from the cache.
    session
        .resize_input("x", Shape::nchw(1, 3, 16, 16))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_hits(), 1);
    assert!(session.report().from_cache);
    let out16 = session.run(&[sized_input(16)]).unwrap();
    assert_eq!(out16[0].shape().dims(), &[1, 2, 16, 16]);

    // And forward again — both directions now swap cached plans.
    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_hits(), 2);
    let out32_again = session.run(&[sized_input(32)]).unwrap();
    assert_eq!(out32[0].data_f32(), out32_again[0].data_f32());
}

#[test]
fn plan_cache_capacity_zero_disables_caching() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let config = SessionConfig::builder()
        .threads(2)
        .plan_cache_capacity(0)
        .build();
    let mut session = interpreter.create_session(config).unwrap();

    // Bounce between two geometries: with caching disabled, no plan is ever
    // parked and no resize is served from the cache.
    for size in [32, 16, 32, 16] {
        session
            .resize_input("x", Shape::nchw(1, 3, size, size))
            .unwrap();
        session.resize_session().unwrap();
        assert_eq!(session.plan_cache_len(), 0);
        assert_eq!(session.plan_cache_hits(), 0);
        assert!(!session.report().from_cache);
    }
    // The session still computes correctly at the final geometry.
    let out = session.run(&[sized_input(16)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 16, 16]);
}

#[test]
fn plan_cache_capacity_bounds_the_cache() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let config = SessionConfig::builder()
        .threads(2)
        .plan_cache_capacity(2)
        .build();
    let mut session = interpreter.create_session(config).unwrap();

    // Visit more geometries than the cache can hold.
    for size in [16, 20, 24, 28, 32] {
        session
            .resize_input("x", Shape::nchw(1, 3, size, size))
            .unwrap();
        session.resize_session().unwrap();
        assert!(session.plan_cache_len() <= 2);
    }
}

#[test]
fn resize_reuses_unchanged_executions() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    // A modest spatial change keeps every conv's scheme; all executions
    // (including transformed Winograd weights) must carry over.
    session
        .resize_input("x", Shape::nchw(1, 3, 20, 20))
        .unwrap();
    session.resize_session().unwrap();
    let report = session.report();
    assert!(!report.from_cache);
    assert!(
        report.reused_executions > 0,
        "unchanged schemes should reuse execution instances"
    );
    let out = session.run(&[sized_input(20)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 20, 20]);
}

#[test]
fn failed_resize_does_not_poison_later_resizes() {
    let mut b = GraphBuilder::new("two-inputs");
    let x = b.input("a", Shape::nchw(1, 4, 8, 8));
    let y = b.input("b", Shape::nchw(1, 4, 8, 8));
    let z = b.binary("sum", x, y, BinaryKind::Add);
    let interpreter = Interpreter::from_graph(b.build(vec![z])).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();

    // Stage an impossible shape for "a" (binary operands must match): rejected.
    session.resize_input("a", Shape::nchw(1, 4, 3, 3)).unwrap();
    assert!(session.resize_session().is_err());

    // A later resize of both inputs must start from a clean slate — the
    // rejected 3x3 staging for "a" must not be silently re-applied.
    session.resize_input("a", Shape::nchw(1, 4, 6, 6)).unwrap();
    session.resize_input("b", Shape::nchw(1, 4, 6, 6)).unwrap();
    session.resize_session().unwrap();
    let t = Tensor::full(Shape::nchw(1, 4, 6, 6), 1.0);
    let out = session.run_with(&[("a", &t), ("b", &t)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 4, 6, 6]);
}

#[test]
fn resize_to_the_current_shape_is_a_noop() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    session
        .resize_input("x", Shape::nchw(1, 3, 16, 16))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_len(), 0);
    assert_eq!(session.plan_cache_hits(), 0);
}

#[test]
fn resize_rejects_unknown_inputs_and_bad_shapes() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    assert!(session
        .resize_input("nope", Shape::nchw(1, 3, 8, 8))
        .is_err());
    // Channel changes contradict the conv weights: shape inference must refuse,
    // and the session must keep working at its old geometry.
    session
        .resize_input("x", Shape::nchw(1, 5, 16, 16))
        .unwrap();
    assert!(session.resize_session().is_err());
    let out = session.run(&[sized_input(16)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 2, 16, 16]);
}

#[test]
fn resized_gpu_session_still_matches_cpu() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut cpu = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut gpu = interpreter
        .create_session(SessionConfig::gpu(
            ForwardType::Vulkan,
            GpuProfile::by_name("Mali-G72"),
        ))
        .unwrap();
    for session in [&mut cpu, &mut gpu] {
        session
            .resize_input("x", Shape::nchw(1, 3, 24, 24))
            .unwrap();
        session.resize_session().unwrap();
    }
    let a = cpu.run(&[sized_input(24)]).unwrap();
    let b = gpu.run(&[sized_input(24)]).unwrap();
    assert!(a[0].max_abs_diff(&b[0]) < 1e-4);
}

#[test]
fn run_with_rejects_duplicate_input_names() {
    let mut b = GraphBuilder::new("two-inputs");
    let x = b.input("a", Shape::nchw(1, 4, 8, 8));
    let y = b.input("b", Shape::nchw(1, 4, 8, 8));
    let z = b.binary("sum", x, y, BinaryKind::Add);
    let interpreter = Interpreter::from_graph(b.build(vec![z])).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let t = Tensor::full(Shape::nchw(1, 4, 8, 8), 1.0);
    // Same count as the graph's inputs, but "a" twice and "b" never: must error
    // rather than silently run with stale "b" data.
    let err = session.run_with(&[("a", &t), ("a", &t)]).err().unwrap();
    assert!(err.to_string().contains("more than once"), "{err}");
    // The legitimate call still works.
    let out = session.run_with(&[("a", &t), ("b", &t)]).unwrap();
    assert_eq!(out[0].data_f32()[0], 2.0);
}

#[test]
fn gpu_virtual_cost_tracks_geometry_across_resize() {
    // Simulated-GPU executions bake shape-derived costs in at creation time, so
    // resize must re-encode them: after growing the input 2x per side, the
    // virtual cost of a run must grow ~4x (conv muls scale with output area).
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter
        .create_session(SessionConfig::gpu(
            ForwardType::Vulkan,
            GpuProfile::by_name("Mali-G72"),
        ))
        .unwrap();
    session.run(&[sized_input(16)]).unwrap();
    let small_ms = session.last_stats().gpu_virtual_ms;
    assert!(small_ms > 0.0);

    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    session.run(&[sized_input(32)]).unwrap();
    let large_ms = session.last_stats().gpu_virtual_ms;
    let ratio = large_ms / small_ms;
    assert!(
        ratio > 2.0,
        "virtual GPU cost must be re-derived for the new geometry \
         (got {small_ms:.4} ms -> {large_ms:.4} ms, ratio {ratio:.2})"
    );
}

#[test]
fn cache_hit_report_reflects_the_restored_activation() {
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    session
        .resize_input("x", Shape::nchw(1, 3, 16, 16))
        .unwrap();
    session.resize_session().unwrap();
    let report = session.report();
    assert!(report.from_cache);
    // The count must describe this activation (executions the cached plan still
    // held), never exceeding the plan size.
    assert!(report.reused_executions <= session.execution_order().len());

    // A second round trip: nothing steals from cached plans anymore, so every
    // execution is retained on restore.
    session
        .resize_input("x", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    session
        .resize_input("x", Shape::nchw(1, 3, 16, 16))
        .unwrap();
    session.resize_session().unwrap();
    let report = session.report();
    assert!(report.from_cache);
    assert_eq!(report.reused_executions, session.execution_order().len());
}

#[test]
fn scheme_changes_across_resize_are_visible_in_the_report() {
    // Large spatial sizes favor Winograd with bigger tiles / different schemes
    // than tiny inputs; the report must reflect the re-selection.
    let interpreter = Interpreter::from_graph(fully_conv_net()).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let schemes_at = |session: &Session| -> Vec<Option<ConvScheme>> {
        session
            .report()
            .placements
            .iter()
            .filter(|p| p.op == "Conv2d")
            .map(|p| p.scheme)
            .collect()
    };
    let small = schemes_at(&session);
    session
        .resize_input("x", Shape::nchw(1, 3, 64, 64))
        .unwrap();
    session.resize_session().unwrap();
    let large = schemes_at(&session);
    assert_eq!(small.len(), large.len());
    // Both geometries must have selected a scheme for every convolution.
    assert!(small.iter().all(Option::is_some));
    assert!(large.iter().all(Option::is_some));
}
