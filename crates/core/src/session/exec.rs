//! Session execution: named and positional run paths over the pre-inference plan.

use super::Session;
use crate::CoreError;
use mnn_graph::{NodeId, TensorId};
use mnn_tensor::Tensor;
use std::collections::HashMap;
use std::time::Instant;

/// Timing of one inference.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock milliseconds spent in `run` (CPU work measured for real).
    pub wall_ms: f64,
    /// Virtual milliseconds accumulated by simulated GPU backends during the run.
    pub gpu_virtual_ms: f64,
}

impl Session {
    /// Mutable access to the staged input tensor named `name`.
    ///
    /// Fill it with data, then call [`Session::run_session`]. After a
    /// [`Session::resize_input`] + [`Session::resize_session`], the staged tensor
    /// has the new shape (zero-filled).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an unknown input name.
    pub fn input_mut(&mut self, name: &str) -> Result<&mut Tensor, CoreError> {
        let id = self.resolve_input(name)?;
        self.inputs
            .get_mut(&id)
            .ok_or_else(|| CoreError::InvalidInput(format!("input '{name}' has no staged tensor")))
    }

    /// The output tensor named `name`, produced by the most recent run.
    ///
    /// Output names are the producing node's name (e.g. `"prob"`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an unknown output name or when no
    /// run has produced outputs yet.
    pub fn output(&self, name: &str) -> Result<&Tensor, CoreError> {
        let id = self
            .graph
            .output_named(name)
            .ok_or_else(|| self.unknown_output(name))?;
        self.outputs.get(&id).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "output '{name}' is not available: run the session first"
            ))
        })
    }

    /// Run one inference with named inputs, e.g.
    /// `session.run_with(&[("data", &tensor)])`.
    ///
    /// Returns the outputs in graph-output order; they also stay readable through
    /// [`Session::output`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on unknown or duplicated names,
    /// missing inputs or shape mismatches, and propagates backend errors.
    pub fn run_with(&mut self, inputs: &[(&str, &Tensor)]) -> Result<Vec<Tensor>, CoreError> {
        if inputs.len() != self.graph.inputs().len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} inputs, got {}",
                self.graph.inputs().len(),
                inputs.len()
            )));
        }
        // Resolve and validate the complete input list before staging anything:
        // a rejected call must not leave a half-updated staging area behind.
        let mut provided: Vec<TensorId> = Vec::with_capacity(inputs.len());
        for (name, tensor) in inputs {
            let id = self.resolve_input(name)?;
            if provided.contains(&id) {
                return Err(CoreError::InvalidInput(format!(
                    "input '{name}' was provided more than once"
                )));
            }
            self.check_input_shape(id, tensor)?;
            provided.push(id);
        }
        for (id, (_, tensor)) in provided.iter().zip(inputs) {
            self.inputs.insert(*id, (*tensor).clone());
        }
        self.run_session()?;
        self.collect_outputs()
    }

    /// Run one inference from the staged input tensors (the
    /// [`Session::input_mut`] flow, mirroring MNN's `runSession`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when a staged input's shape disagrees
    /// with the current geometry (e.g. after writing a differently-shaped tensor
    /// into [`Session::input_mut`] without resizing), and propagates backend
    /// errors.
    pub fn run_session(&mut self) -> Result<(), CoreError> {
        for id in self.graph.inputs() {
            let staged = self.inputs.get(id).ok_or_else(|| {
                CoreError::InvalidInput(format!("input {id} has no staged tensor"))
            })?;
            self.check_input_shape(*id, staged)?;
        }
        self.execute()
    }

    /// Run one inference with positional inputs (compatibility wrapper).
    ///
    /// `inputs` must match the graph's declared inputs in order and shape. New
    /// code should prefer the named paths — [`Session::run_with`] or
    /// [`Session::input_mut`] + [`Session::run_session`] — which stay stable under
    /// model refactors that reorder inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on input-count/shape mismatch and
    /// propagates backend errors.
    pub fn run(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>, CoreError> {
        let graph_inputs = self.graph.inputs();
        if inputs.len() != graph_inputs.len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} inputs, got {}",
                graph_inputs.len(),
                inputs.len()
            )));
        }
        // Validate every input before staging any (see `run_with`).
        let ids: Vec<TensorId> = graph_inputs.to_vec();
        for (tensor, id) in inputs.iter().zip(&ids) {
            self.check_input_shape(*id, tensor)?;
        }
        for (tensor, id) in inputs.iter().zip(&ids) {
            self.inputs.insert(*id, tensor.clone());
        }
        self.execute()?;
        self.collect_outputs()
    }

    /// Run `runs` timed inferences after `warmup` untimed ones and return the mean
    /// wall-clock and virtual-GPU milliseconds per inference.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Session::run`].
    pub fn benchmark(
        &mut self,
        inputs: &[Tensor],
        warmup: usize,
        runs: usize,
    ) -> Result<RunStats, CoreError> {
        for _ in 0..warmup {
            self.run(inputs)?;
        }
        let mut total = RunStats::default();
        for _ in 0..runs.max(1) {
            self.run(inputs)?;
            let stats = self.last_stats();
            total.wall_ms += stats.wall_ms;
            total.gpu_virtual_ms += stats.gpu_virtual_ms;
        }
        let n = runs.max(1) as f64;
        Ok(RunStats {
            wall_ms: total.wall_ms / n,
            gpu_virtual_ms: total.gpu_virtual_ms / n,
        })
    }

    pub(super) fn resolve_input(&self, name: &str) -> Result<TensorId, CoreError> {
        self.graph.input_named(name).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "unknown input '{name}'; graph inputs are {:?}",
                self.graph.input_names()
            ))
        })
    }

    fn unknown_output(&self, name: &str) -> CoreError {
        CoreError::InvalidInput(format!(
            "unknown output '{name}'; graph outputs are {:?}",
            self.graph.output_names()
        ))
    }

    fn check_input_shape(&self, id: TensorId, tensor: &Tensor) -> Result<(), CoreError> {
        let expected = self.graph.tensor_info(id)?.shape.clone();
        if let Some(expected) = expected {
            if &expected != tensor.shape() {
                return Err(CoreError::InvalidInput(format!(
                    "input {id} expects shape {expected}, got {} (use resize_input + \
                     resize_session to change the geometry)",
                    tensor.shape()
                )));
            }
        }
        Ok(())
    }

    // The returned `Vec` requires one copy per output tensor: outputs stay
    // retained for `Session::output` while the run()/run_with() contract hands
    // back owned tensors. The `input_mut` + `run_session` + `output` flow pays
    // no such copy — outputs are usually small (logits), inputs/activations are
    // the hot buffers and those are not copied.
    fn collect_outputs(&mut self) -> Result<Vec<Tensor>, CoreError> {
        let mut outputs = Vec::with_capacity(self.graph.outputs().len());
        for id in self.graph.outputs() {
            let tensor = self.outputs.get(id).ok_or_else(|| {
                CoreError::InvalidInput(format!("graph output {id} was never produced"))
            })?;
            outputs.push(tensor.clone());
        }
        Ok(outputs)
    }

    /// The inference loop: pure computation against the pre-selected schemes,
    /// placements and memory (paper Fig. 2's "execute" stage).
    fn execute(&mut self) -> Result<(), CoreError> {
        // reset GPU virtual clocks so per-run stats are meaningful
        for backend in &mut self.backends {
            backend.reset_virtual_clock();
        }
        for backend in &mut self.backends {
            backend.on_execute_begin();
        }
        let start = Instant::now();

        // Opt-in per-op profiling. When no profiler is attached (or it is
        // disabled) `recorder` is `None` and the loop below takes no
        // timestamps. Scheme/placement strings come from the plan report,
        // snapshotted up front because the loop holds `self.plan` mutably.
        // `capture` additionally feeds per-op spans to the request trace
        // active on this thread, if any (see `mnn_obs::context`); its spans
        // land on the request's timebase and flush when it drops.
        let mut recorder = self.config.profiler.as_ref().and_then(|p| p.begin_run());
        let mut capture = mnn_obs::context::begin_op_capture();
        let timed = recorder.is_some() || capture.is_some();
        let node_meta: HashMap<NodeId, (String, String)> = if timed {
            self.plan
                .report
                .placements
                .iter()
                .map(|p| {
                    let scheme = p
                        .scheme
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "-".to_string());
                    (p.node, (scheme, p.forward_type.to_string()))
                })
                .collect()
        } else {
            HashMap::new()
        };

        // Remaining-use counts drive early release of intermediate tensors, the
        // runtime counterpart of the static plan.
        let mut remaining_uses: HashMap<TensorId, usize> = HashMap::new();
        for node in self.graph.nodes() {
            for input in &node.inputs {
                *remaining_uses.entry(*input).or_insert(0) += 1;
            }
        }
        for output in self.graph.outputs() {
            *remaining_uses.entry(*output).or_insert(0) += 1;
        }

        // Intermediate tensors produced during this run. Graph inputs are read
        // by reference from the staged `self.inputs` map — no copy on the hot
        // path.
        let mut storage: HashMap<TensorId, Tensor> = HashMap::new();
        let staged_inputs = &self.inputs;

        for entry in &mut self.plan.scheduled {
            let node = self.graph.node(entry.node)?;
            // Gather activation inputs (constants were captured at creation time).
            let mut activation_inputs: Vec<&Tensor> = Vec::new();
            for input in &node.inputs {
                let info = self.graph.tensor_info(*input)?;
                if info.is_constant {
                    continue;
                }
                let tensor = storage
                    .get(input)
                    .or_else(|| staged_inputs.get(input))
                    .ok_or_else(|| {
                        CoreError::InvalidInput(format!(
                            "tensor {input} required by node '{}' is not available",
                            node.name
                        ))
                    })?;
                activation_inputs.push(tensor);
            }
            let mut output = Tensor::zeros(mnn_tensor::Shape::vector(1));
            // Bytes are summed *before* the timestamp so accounting never
            // inflates the measured kernel time.
            let profiled = timed.then(|| {
                let input_bytes: u64 = activation_inputs.iter().map(|t| t.byte_size() as u64).sum();
                (input_bytes, Instant::now())
            });
            if self.config.decouple_preparation {
                let execution = entry
                    .execution
                    .as_mut()
                    .expect("executions are pre-created when decoupled");
                execution.run(&activation_inputs, &mut output)?;
            } else {
                // Pay the preparation cost inside the inference loop (Table 2 "w/o").
                let mut execution =
                    self.backends[entry.backend_index].on_create(node, &self.graph, &entry.hint)?;
                execution.run(&activation_inputs, &mut output)?;
            }
            drop(activation_inputs);
            if let Some((input_bytes, kernel_start)) = profiled {
                let (scheme, placement) = node_meta
                    .get(&entry.node)
                    .map(|(s, p)| (s.as_str(), p.as_str()))
                    .unwrap_or(("-", "-"));
                let bytes = input_bytes + output.byte_size() as u64;
                let shape = output.shape().to_string();
                if let Some(rec) = recorder.as_mut() {
                    rec.record_node(
                        &node.name,
                        node.op.name(),
                        scheme,
                        placement,
                        &shape,
                        kernel_start,
                        bytes,
                    );
                }
                if let Some(cap) = capture.as_mut() {
                    cap.record_node(
                        &node.name,
                        node.op.name(),
                        scheme,
                        placement,
                        &shape,
                        kernel_start,
                        bytes,
                    );
                }
            }
            storage.insert(node.outputs[0], output);

            // Release inputs whose last consumer has run (memory reuse at runtime).
            for input in &node.inputs {
                let info = self.graph.tensor_info(*input)?;
                if info.is_constant || self.graph.inputs().contains(input) {
                    continue;
                }
                if let Some(uses) = remaining_uses.get_mut(input) {
                    *uses = uses.saturating_sub(1);
                    if *uses == 0 && !self.graph.outputs().contains(input) {
                        storage.remove(input);
                    }
                }
            }
        }

        for backend in &mut self.backends {
            backend.on_execute_end();
        }
        if let Some(rec) = recorder {
            rec.finish();
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let gpu_virtual_ms: f64 = self.backends.iter().map(|b| b.virtual_elapsed_ms()).sum();
        self.last_stats = RunStats {
            wall_ms,
            gpu_virtual_ms,
        };

        self.outputs.clear();
        for id in self.graph.outputs() {
            // A graph output is normally produced by a node; a degenerate graph
            // may also mark an input as an output (passthrough).
            let tensor = match storage.remove(id) {
                Some(tensor) => tensor,
                None => self.inputs.get(id).cloned().ok_or_else(|| {
                    CoreError::InvalidInput(format!("graph output {id} was never produced"))
                })?,
            };
            self.outputs.insert(*id, tensor);
        }
        Ok(())
    }
}
