//! Session configuration and its builder.

use crate::scheme::CostModel;
use mnn_backend::{ForwardType, GpuProfile};
use mnn_obs::Profiler;
use mnn_tune::TuningMode;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a session, chosen by the application developer.
///
/// Construct one with [`SessionConfig::builder`] (preferred — new knobs never
/// break builder call sites), with the [`SessionConfig::cpu`] /
/// [`SessionConfig::gpu`] shorthands, or by filling fields over
/// [`SessionConfig::default`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Backend preference list. The CPU is always available as the universal
    /// fallback even if it is not listed.
    pub forward_types: Vec<ForwardType>,
    /// CPU thread count (the paper evaluates 2 and 4 threads).
    pub threads: usize,
    /// Whether preparation (execution creation, weight transforms, GPU command
    /// encoding) is decoupled from execution. Disabling this reproduces the "w/o"
    /// rows of Table 2.
    pub decouple_preparation: bool,
    /// Largest Winograd output tile size considered by scheme selection.
    pub max_winograd_tile: usize,
    /// GPU profile used by simulated GPU backends.
    pub gpu_profile: GpuProfile,
    /// CPU FLOPS estimate override for the cost model (e.g. from a device profile).
    pub cpu_flops: Option<f64>,
    /// Upper bound on pre-inference plans cached per session (one entry per
    /// input-shape signature, excluding the active plan). `0` disables the
    /// cache entirely: every geometry change re-plans from scratch. Servers
    /// that alternate between many batch sizes should size this at least
    /// `max_batch + 1`.
    pub plan_cache_capacity: usize,
    /// How convolution schemes are resolved: pure cost model
    /// ([`TuningMode::Off`], the default), cached measurements only
    /// ([`TuningMode::Cached`]), or measure-on-miss ([`TuningMode::Full`]).
    pub tuning: TuningMode,
    /// Where the device-keyed tuning cache persists. `None` falls back to the
    /// `MNN_TUNE_CACHE` environment variable; if that is unset too, tuning
    /// results are shared in-process only.
    pub tune_cache_path: Option<PathBuf>,
    /// Constants of the scheme cost model (overridable for reproducible tests
    /// or re-calibrated devices; see `mnn_tune::calibrate`).
    pub cost_model: CostModel,
    /// Per-op runtime profiler the session records execution spans into
    /// (`None`, the default, skips all timestamping). Share one `Arc` across
    /// the sessions of a pool to profile a whole server.
    pub profiler: Option<Arc<Profiler>>,
    /// Exclude SIMD kernel variants from this session's tuning candidate
    /// pools, pinning every convolution to the scalar kernels. The process-wide
    /// equivalent is `MNN_SIMD=scalar`; this knob scopes it to one session
    /// (e.g. for scalar-vs-SIMD A/B measurements in the same process).
    pub force_scalar: bool,
    /// Scope (usually: model name) the session's arena and plan-cache bytes
    /// are charged to in the `mnn_obs::resources` ledger. `None` charges
    /// under the graph's name. Servers set this to the registry name so
    /// `/v1/status` rolls every pooled session up per model.
    pub resource_scope: Option<String>,
    /// Whether this session charges its memory to the `mnn_obs::resources`
    /// ledger at all (default `true`; the accounting-overhead bench turns it
    /// off for its baseline arm).
    pub account_resources: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            forward_types: vec![ForwardType::Cpu],
            threads: mnn_kernels::parallel::default_threads(),
            decouple_preparation: true,
            max_winograd_tile: crate::scheme::MAX_WINOGRAD_TILE,
            gpu_profile: GpuProfile::GENERIC,
            cpu_flops: None,
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tuning: TuningMode::Off,
            tune_cache_path: None,
            cost_model: CostModel::default(),
            profiler: None,
            force_scalar: false,
            resource_scope: None,
            account_resources: true,
        }
    }
}

/// Default number of cached pre-inference plans per session.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

impl SessionConfig {
    /// Start building a configuration:
    /// `SessionConfig::builder().threads(4).forward(ForwardType::Cpu).build()`.
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder {
            forward_types: Vec::new(),
            config: SessionConfig::default(),
        }
    }

    /// CPU-only configuration with an explicit thread count.
    pub fn cpu(threads: usize) -> Self {
        SessionConfig {
            threads,
            ..SessionConfig::default()
        }
    }

    /// Configuration preferring a (simulated) GPU backend with the given profile.
    pub fn gpu(standard: ForwardType, profile: GpuProfile) -> Self {
        SessionConfig {
            forward_types: vec![standard, ForwardType::Cpu],
            gpu_profile: profile,
            ..SessionConfig::default()
        }
    }
}

/// Builder for [`SessionConfig`], so future knobs extend the API without breaking
/// existing constructor calls.
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    /// Forward types accumulated by [`SessionConfigBuilder::forward`]; empty means
    /// "CPU only".
    forward_types: Vec<ForwardType>,
    config: SessionConfig,
}

impl SessionConfigBuilder {
    /// Append a backend to the preference list, most-preferred first. The CPU is
    /// always appended as the universal fallback, so listing it is optional.
    pub fn forward(mut self, forward_type: ForwardType) -> Self {
        self.forward_types.push(forward_type);
        self
    }

    /// Set the CPU thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enable/disable preparation–execution decoupling (Table 2's ablation).
    pub fn decouple_preparation(mut self, decouple: bool) -> Self {
        self.config.decouple_preparation = decouple;
        self
    }

    /// Bound the Winograd tile-size search of scheme selection.
    pub fn max_winograd_tile(mut self, tile: usize) -> Self {
        self.config.max_winograd_tile = tile;
        self
    }

    /// Set the GPU profile used by simulated GPU backends.
    pub fn gpu_profile(mut self, profile: GpuProfile) -> Self {
        self.config.gpu_profile = profile;
        self
    }

    /// Override the CPU FLOPS estimate used by the cost model.
    pub fn cpu_flops(mut self, flops: f64) -> Self {
        self.config.cpu_flops = Some(flops);
        self
    }

    /// Bound the per-session pre-inference plan cache (entries are whole plans,
    /// one per input-shape signature). `0` disables plan caching.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Select the kernel auto-tuning mode (default [`TuningMode::Off`]).
    ///
    /// With [`TuningMode::Full`] session preparation micro-benchmarks every
    /// viable convolution scheme on the node's real geometry and keeps the
    /// fastest; results are shared in-process (one tuning pass per
    /// `SessionPool`) and persisted when a cache path is configured.
    pub fn tuning(mut self, mode: TuningMode) -> Self {
        self.config.tuning = mode;
        self
    }

    /// Persist the tuning cache at `path` (overrides the `MNN_TUNE_CACHE`
    /// environment variable). A warm file lets a fresh process prepare
    /// sessions with zero measurements.
    pub fn tune_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.tune_cache_path = Some(path.into());
        self
    }

    /// Override the scheme cost-model constants (e.g. with the output of
    /// `mnn_tune::calibrate`, or pinned values for reproducible tests).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.cost_model = model;
        self
    }

    /// Attach a per-op runtime profiler: every session run records one span
    /// per executed node into it (see `mnn_obs::Profiler`). Pass the same
    /// `Arc` to several sessions to aggregate across a pool; toggle
    /// collection at runtime with `Profiler::set_enabled`.
    pub fn profiling(mut self, profiler: Arc<Profiler>) -> Self {
        self.config.profiler = Some(profiler);
        self
    }

    /// Keep this session on the scalar kernels: SIMD scheme variants are
    /// dropped from the tuning candidate pools (and cached SIMD winners are
    /// therefore rejected by the candidate-membership guard). Default `false`.
    pub fn force_scalar(mut self, force: bool) -> Self {
        self.config.force_scalar = force;
        self
    }

    /// Charge this session's arena and plan-cache bytes under `scope` in the
    /// `mnn_obs::resources` ledger instead of the graph's name.
    pub fn resource_scope(mut self, scope: impl Into<String>) -> Self {
        self.config.resource_scope = Some(scope.into());
        self
    }

    /// Enable/disable resource accounting for this session (default on).
    pub fn account_resources(mut self, account: bool) -> Self {
        self.config.account_resources = account;
        self
    }

    /// Finish building the configuration.
    pub fn build(mut self) -> SessionConfig {
        if !self.forward_types.is_empty() {
            self.config.forward_types = self.forward_types;
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_issue_example() {
        let config = SessionConfig::builder()
            .threads(4)
            .forward(ForwardType::Cpu)
            .build();
        assert_eq!(config.threads, 4);
        assert_eq!(config.forward_types, vec![ForwardType::Cpu]);
        assert!(config.decouple_preparation);
    }

    #[test]
    fn builder_defaults_to_cpu_when_no_forward_given() {
        let config = SessionConfig::builder().threads(2).build();
        assert_eq!(config.forward_types, vec![ForwardType::Cpu]);
    }

    #[test]
    fn builder_sets_tuning_knobs() {
        let config = SessionConfig::builder()
            .tuning(TuningMode::Full)
            .tune_cache_path("/tmp/tune.json")
            .cost_model(CostModel {
                int8_cost_factor: 0.5,
                ..CostModel::default()
            })
            .build();
        assert_eq!(config.tuning, TuningMode::Full);
        assert_eq!(
            config.tune_cache_path.as_deref(),
            Some(std::path::Path::new("/tmp/tune.json"))
        );
        assert_eq!(config.cost_model.int8_cost_factor, 0.5);
    }

    #[test]
    fn tuning_defaults_to_off() {
        let config = SessionConfig::default();
        assert_eq!(config.tuning, TuningMode::Off);
        assert!(config.tune_cache_path.is_none());
        assert_eq!(config.cost_model, CostModel::default());
        assert!(!config.force_scalar);
    }

    #[test]
    fn builder_sets_force_scalar() {
        let config = SessionConfig::builder().force_scalar(true).build();
        assert!(config.force_scalar);
    }

    #[test]
    fn builder_preserves_gpu_preference_order() {
        let config = SessionConfig::builder()
            .forward(ForwardType::Vulkan)
            .gpu_profile(GpuProfile::by_name("Mali-G72"))
            .build();
        assert_eq!(config.forward_types, vec![ForwardType::Vulkan]);
        assert_eq!(config.gpu_profile.name, "Mali-G72");
    }
}
