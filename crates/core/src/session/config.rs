//! Session configuration and its builder.

use mnn_backend::{ForwardType, GpuProfile};

/// Configuration of a session, chosen by the application developer.
///
/// Construct one with [`SessionConfig::builder`] (preferred — new knobs never
/// break builder call sites), with the [`SessionConfig::cpu`] /
/// [`SessionConfig::gpu`] shorthands, or by filling fields over
/// [`SessionConfig::default`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Backend preference list. The CPU is always available as the universal
    /// fallback even if it is not listed.
    pub forward_types: Vec<ForwardType>,
    /// CPU thread count (the paper evaluates 2 and 4 threads).
    pub threads: usize,
    /// Whether preparation (execution creation, weight transforms, GPU command
    /// encoding) is decoupled from execution. Disabling this reproduces the "w/o"
    /// rows of Table 2.
    pub decouple_preparation: bool,
    /// Largest Winograd output tile size considered by scheme selection.
    pub max_winograd_tile: usize,
    /// GPU profile used by simulated GPU backends.
    pub gpu_profile: GpuProfile,
    /// CPU FLOPS estimate override for the cost model (e.g. from a device profile).
    pub cpu_flops: Option<f64>,
    /// Upper bound on pre-inference plans cached per session (one entry per
    /// input-shape signature, excluding the active plan). `0` disables the
    /// cache entirely: every geometry change re-plans from scratch. Servers
    /// that alternate between many batch sizes should size this at least
    /// `max_batch + 1`.
    pub plan_cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            forward_types: vec![ForwardType::Cpu],
            threads: mnn_kernels::parallel::default_threads(),
            decouple_preparation: true,
            max_winograd_tile: crate::scheme::MAX_WINOGRAD_TILE,
            gpu_profile: GpuProfile::GENERIC,
            cpu_flops: None,
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
        }
    }
}

/// Default number of cached pre-inference plans per session.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

impl SessionConfig {
    /// Start building a configuration:
    /// `SessionConfig::builder().threads(4).forward(ForwardType::Cpu).build()`.
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder {
            forward_types: Vec::new(),
            config: SessionConfig::default(),
        }
    }

    /// CPU-only configuration with an explicit thread count.
    pub fn cpu(threads: usize) -> Self {
        SessionConfig {
            threads,
            ..SessionConfig::default()
        }
    }

    /// Configuration preferring a (simulated) GPU backend with the given profile.
    pub fn gpu(standard: ForwardType, profile: GpuProfile) -> Self {
        SessionConfig {
            forward_types: vec![standard, ForwardType::Cpu],
            gpu_profile: profile,
            ..SessionConfig::default()
        }
    }
}

/// Builder for [`SessionConfig`], so future knobs extend the API without breaking
/// existing constructor calls.
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    /// Forward types accumulated by [`SessionConfigBuilder::forward`]; empty means
    /// "CPU only".
    forward_types: Vec<ForwardType>,
    config: SessionConfig,
}

impl SessionConfigBuilder {
    /// Append a backend to the preference list, most-preferred first. The CPU is
    /// always appended as the universal fallback, so listing it is optional.
    pub fn forward(mut self, forward_type: ForwardType) -> Self {
        self.forward_types.push(forward_type);
        self
    }

    /// Set the CPU thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enable/disable preparation–execution decoupling (Table 2's ablation).
    pub fn decouple_preparation(mut self, decouple: bool) -> Self {
        self.config.decouple_preparation = decouple;
        self
    }

    /// Bound the Winograd tile-size search of scheme selection.
    pub fn max_winograd_tile(mut self, tile: usize) -> Self {
        self.config.max_winograd_tile = tile;
        self
    }

    /// Set the GPU profile used by simulated GPU backends.
    pub fn gpu_profile(mut self, profile: GpuProfile) -> Self {
        self.config.gpu_profile = profile;
        self
    }

    /// Override the CPU FLOPS estimate used by the cost model.
    pub fn cpu_flops(mut self, flops: f64) -> Self {
        self.config.cpu_flops = Some(flops);
        self
    }

    /// Bound the per-session pre-inference plan cache (entries are whole plans,
    /// one per input-shape signature). `0` disables plan caching.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Finish building the configuration.
    pub fn build(mut self) -> SessionConfig {
        if !self.forward_types.is_empty() {
            self.config.forward_types = self.forward_types;
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_issue_example() {
        let config = SessionConfig::builder()
            .threads(4)
            .forward(ForwardType::Cpu)
            .build();
        assert_eq!(config.threads, 4);
        assert_eq!(config.forward_types, vec![ForwardType::Cpu]);
        assert!(config.decouple_preparation);
    }

    #[test]
    fn builder_defaults_to_cpu_when_no_forward_given() {
        let config = SessionConfig::builder().threads(2).build();
        assert_eq!(config.forward_types, vec![ForwardType::Cpu]);
    }

    #[test]
    fn builder_preserves_gpu_preference_order() {
        let config = SessionConfig::builder()
            .forward(ForwardType::Vulkan)
            .gpu_profile(GpuProfile::by_name("Mali-G72"))
            .build();
        assert_eq!(config.forward_types, vec![ForwardType::Vulkan]);
        assert_eq!(config.gpu_profile.name, "Mali-G72");
    }
}
