//! Computation scheme selection (paper Section 3.2, Eq. 2–3).
//!
//! For every convolution, pre-inference evaluates the *scheme pool*:
//!
//! * `k = 1` → the convolution is a plain matrix multiplication; the Strassen
//!   algorithm is applied (Eq. 3, case 1 / Section 3.3.2).
//! * `k > 1` → Winograd `F(n×n, k×k)` is evaluated for every candidate output tile
//!   size using the arithmetic cost `C(n)` of Eq. 2; if the optimal tile size `n̂`
//!   degenerates to 1 the sliding-window kernel is chosen, otherwise Winograd with
//!   `n̂` (Eq. 3, cases 2–3).
//!
//! The cost is expressed in estimated scalar multiplications for the whole layer so
//! it can be combined with the backend term of Eq. 1 (`C_total = C_algorithm +
//! C_backend`).

use mnn_backend::ConvScheme;
use mnn_kernels::conv::ConvParams;
use mnn_kernels::strassen;
use mnn_kernels::winograd::winograd_tile_cost;

/// Largest Winograd output tile size the scheme pool evaluates.
pub const MAX_WINOGRAD_TILE: usize = 6;

/// The cost of one candidate scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeChoice {
    /// The candidate scheme.
    pub scheme: ConvScheme,
    /// Estimated arithmetic cost (scalar multiplications for the whole layer).
    pub cost: f64,
}

/// The outcome of scheme selection for one convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeDecision {
    /// The selected scheme (minimum-cost entry of `pool`).
    pub selected: ConvScheme,
    /// Estimated cost of the selected scheme.
    pub cost: f64,
    /// Every candidate that was evaluated, for inspection / reporting.
    pub pool: Vec<SchemeChoice>,
}

/// Estimated scalar multiplications of the sliding-window kernel for the layer.
pub fn sliding_window_cost(params: &ConvParams, in_h: usize, in_w: usize) -> f64 {
    params.mul_count(in_h, in_w) as f64
}

/// Effective extra "tiles" charged per transform position to account for streaming
/// the transformed weights (`ic · oc · α²` values) through memory: when the tile
/// count is small the per-position GEMM is bandwidth-bound rather than compute-bound,
/// which is what makes very large tile sizes unattractive on small feature maps
/// (the WinoMax column of Table 1).
pub const WEIGHT_REUSE_TILES: f64 = 16.0;

/// Cost-model discount for the im2col + GEMM lowering over the direct kernel:
/// the multiplication count is identical, but GEMM-grade register/cache reuse
/// makes each multiplication slightly cheaper once the reduction dimension is
/// large enough to amortize the unfold.
pub const IM2COL_DISCOUNT: f64 = 0.95;

/// Overridable constants of the scheme cost model (Eq. 2–3).
///
/// The defaults are the shipped calibration (see the field docs); tests and
/// devices with different measured characteristics can override them per
/// session via `SessionConfig::builder().cost_model(...)`, and the
/// `mnn-tune` calibration harness
/// ([`calibrate_int8_cost_factor`](https://docs.rs/mnn-tune)) re-derives the
/// int8 discount from measurements on the actual machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Relative cost of one int8 multiply-accumulate against one f32 multiply
    /// (defaults to the calibrated [`INT8_COST_FACTOR`]).
    pub int8_cost_factor: f64,
    /// Weight-streaming surcharge of the Winograd GEMM term (defaults to
    /// [`WEIGHT_REUSE_TILES`]).
    pub weight_reuse_tiles: f64,
    /// Per-multiplication discount of the im2col lowering (defaults to
    /// [`IM2COL_DISCOUNT`]).
    pub im2col_discount: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int8_cost_factor: INT8_COST_FACTOR,
            weight_reuse_tiles: WEIGHT_REUSE_TILES,
            im2col_discount: IM2COL_DISCOUNT,
        }
    }
}

/// Estimated cost of Winograd `F(n×n, k×k)` for the layer, with the default
/// [`CostModel`].
pub fn winograd_cost(params: &ConvParams, in_h: usize, in_w: usize, tile: usize) -> f64 {
    winograd_cost_with(params, in_h, in_w, tile, &CostModel::default())
}

/// Estimated cost of Winograd `F(n×n, k×k)` for the layer.
///
/// The structure follows Eq. 2 (input transform + per-position GEMM + output
/// transform, times the tile count of Eq. 7) with two practical refinements over the
/// raw formula, documented in `DESIGN.md`: the output transform is charged per
/// output channel, and the GEMM term carries a weight-streaming surcharge
/// ([`CostModel::weight_reuse_tiles`]) so the model stays accurate when the tile
/// count is small.
pub fn winograd_cost_with(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
    tile: usize,
    model: &CostModel,
) -> f64 {
    let (out_h, out_w) = params.output_size(in_h, in_w);
    let tiles = (out_h.div_ceil(tile) * out_w.div_ceil(tile)) as f64;
    let alpha = (tile + params.kernel_h - 1) as f64;
    let (ic, oc, n) = (
        params.in_channels as f64,
        params.out_channels as f64,
        tile as f64,
    );
    let input_transform = tiles * 2.0 * ic * alpha * alpha * alpha;
    let gemm = (tiles + model.weight_reuse_tiles) * ic * oc * alpha * alpha;
    let output_transform = tiles * oc * n * alpha * (n + alpha);
    // Keep the pure Eq. 2 term linked for reference / comparison in tests.
    let _ = winograd_tile_cost;
    input_transform + gemm + output_transform
}

/// Estimated scalar multiplications of the Strassen-backed 1×1 convolution
/// (`[oc, ic] × [ic, h·w]` with the Eq. 9 recursion policy).
pub fn strassen_cost(params: &ConvParams, in_h: usize, in_w: usize) -> f64 {
    let spatial = in_h * in_w;
    strassen::strassen_mul_count(params.out_channels, params.in_channels, spatial) as f64
}

/// Relative cost of one int8 multiply-accumulate against one f32 multiply in the
/// scheme cost model.
///
/// Int8 operands are 4× narrower than f32, so an integer inner loop moves a
/// quarter of the bytes per multiply and packs 4× more lanes per SIMD register on
/// real hardware; the paper's engine exploits exactly this when it lowers
/// quantized layers to SDOT/SMLAL kernels. The factor keeps the integer kernel
/// deterministically cheaper than the dequantized float path while producing
/// comparable cost magnitudes for the pre-inference report.
///
/// The value is **measured, not guessed**: `mnn-tune`'s calibration harness
/// times the int8 kernel against the float direct kernel on representative
/// geometries and solves the cost equation for the factor (single-thread median
/// ≈ 0.29 on the reference x86-64 CI hardware, ≈ 0.25 at 4 threads). Re-derive
/// it for another device with
/// `cargo run --release -p mnn-bench --bin table_tuning -- --calibrate`, and
/// override it per session via `SessionConfig::builder().cost_model(...)`.
pub const INT8_COST_FACTOR: f64 = 0.29;

/// Estimated cost of the int8 integer kernel for the layer, with the default
/// [`CostModel`].
pub fn quantized_gemm_cost(params: &ConvParams, in_h: usize, in_w: usize) -> f64 {
    quantized_gemm_cost_with(params, in_h, in_w, &CostModel::default())
}

/// Estimated cost of the int8 integer kernel for the layer: the direct
/// multiplication count discounted by [`CostModel::int8_cost_factor`], plus the
/// per-run activation quantization pass (one operation per input element).
pub fn quantized_gemm_cost_with(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
    model: &CostModel,
) -> f64 {
    let quantize_pass = (params.in_channels * in_h * in_w) as f64;
    params.mul_count(in_h, in_w) as f64 * model.int8_cost_factor + quantize_pass
}

/// Select the computation scheme for a convolution whose weights are int8
/// (an [`Op::Conv2dQuantized`](mnn_graph::Op::Conv2dQuantized) node).
///
/// Non-depthwise layers deterministically choose the integer kernel
/// ([`ConvScheme::QuantizedGemm`]); the float candidates stay in the pool so the
/// report shows what the cost model compared. Depthwise layers are
/// deterministically kept in `f32` ([`ConvScheme::Depthwise`], weights
/// dequantized once at preparation time): with one input channel per group there
/// is no integer-GEMM reuse to exploit, and the per-run activation-quantization
/// pass would dominate the memory-bound channel-wise loop.
pub fn select_quantized_conv_scheme(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
) -> SchemeDecision {
    select_quantized_conv_scheme_with(params, in_h, in_w, &CostModel::default())
}

/// [`select_quantized_conv_scheme`] with explicit [`CostModel`] constants.
pub fn select_quantized_conv_scheme_with(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
    model: &CostModel,
) -> SchemeDecision {
    if params.is_depthwise() {
        let cost = sliding_window_cost(params, in_h, in_w);
        // The selection is deterministic (not min-cost): the pool reports the
        // integer candidate at its honestly-modelled cost purely for inspection.
        let pool = vec![
            SchemeChoice {
                scheme: ConvScheme::Depthwise,
                cost,
            },
            SchemeChoice {
                scheme: ConvScheme::QuantizedGemm,
                cost: quantized_gemm_cost_with(params, in_h, in_w, model),
            },
        ];
        return SchemeDecision {
            selected: ConvScheme::Depthwise,
            cost,
            pool,
        };
    }
    let quantized = SchemeChoice {
        scheme: ConvScheme::QuantizedGemm,
        cost: quantized_gemm_cost_with(params, in_h, in_w, model),
    };
    let float_direct = SchemeChoice {
        scheme: ConvScheme::SlidingWindow,
        cost: sliding_window_cost(params, in_h, in_w),
    };
    SchemeDecision {
        selected: quantized.scheme,
        cost: quantized.cost,
        pool: vec![quantized, float_direct],
    }
}

/// Scheme decision for a quantized fully-connected layer (reported alongside the
/// convolution decisions so [`PreInferenceReport`](crate::PreInferenceReport)
/// shows which nodes run integer kernels). `muls` is the layer's multiplication
/// count from [`Graph::node_mul_count`](mnn_graph::Graph::node_mul_count).
pub fn quantized_fc_decision(muls: u64) -> SchemeDecision {
    quantized_fc_decision_with(muls, &CostModel::default())
}

/// [`quantized_fc_decision`] with explicit [`CostModel`] constants.
pub fn quantized_fc_decision_with(muls: u64, model: &CostModel) -> SchemeDecision {
    let quantized = SchemeChoice {
        scheme: ConvScheme::QuantizedGemm,
        cost: muls as f64 * model.int8_cost_factor,
    };
    let float_gemm = SchemeChoice {
        scheme: ConvScheme::SlidingWindow,
        cost: muls as f64,
    };
    SchemeDecision {
        selected: quantized.scheme,
        cost: quantized.cost,
        pool: vec![quantized, float_gemm],
    }
}

/// Select the computation scheme for a convolution layer (Eq. 3).
///
/// `max_tile` bounds the Winograd tile-size search (use
/// [`MAX_WINOGRAD_TILE`] for the paper's setting).
pub fn select_conv_scheme(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
    max_tile: usize,
) -> SchemeDecision {
    select_conv_scheme_with(params, in_h, in_w, max_tile, &CostModel::default())
}

/// [`select_conv_scheme`] with explicit [`CostModel`] constants.
pub fn select_conv_scheme_with(
    params: &ConvParams,
    in_h: usize,
    in_w: usize,
    max_tile: usize,
    model: &CostModel,
) -> SchemeDecision {
    let mut pool = Vec::new();

    if params.is_depthwise() {
        // Depthwise convolutions have one input channel per group: the Winograd /
        // GEMM restructurings degenerate, so the direct kernel is used.
        let cost = sliding_window_cost(params, in_h, in_w);
        pool.push(SchemeChoice {
            scheme: ConvScheme::Depthwise,
            cost,
        });
        return SchemeDecision {
            selected: ConvScheme::Depthwise,
            cost,
            pool,
        };
    }

    if params.is_pointwise() {
        // Eq. 3, case 1: k == 1 is a matrix multiplication; apply Strassen.
        let strassen = SchemeChoice {
            scheme: ConvScheme::Strassen1x1,
            cost: strassen_cost(params, in_h, in_w),
        };
        let direct = SchemeChoice {
            scheme: ConvScheme::SlidingWindow,
            cost: sliding_window_cost(params, in_h, in_w),
        };
        pool.push(strassen);
        pool.push(direct);
        let selected = if strassen.cost <= direct.cost {
            strassen
        } else {
            direct
        };
        return SchemeDecision {
            selected: selected.scheme,
            cost: selected.cost,
            pool,
        };
    }

    // General k > 1 case.
    let sliding = SchemeChoice {
        scheme: ConvScheme::SlidingWindow,
        cost: sliding_window_cost(params, in_h, in_w),
    };
    pool.push(sliding);

    if params.winograd_applicable() {
        for tile in 2..=max_tile.max(2) {
            pool.push(SchemeChoice {
                scheme: ConvScheme::Winograd { tile },
                cost: winograd_cost_with(params, in_h, in_w, tile, model),
            });
        }
    } else if params.im2col_applicable() {
        // Strided / dilated / rectangular kernels go through im2col + GEMM; its
        // multiplication count matches the direct method but with GEMM-grade reuse,
        // so prefer it when the reduction dimension is large enough to amortize the
        // unfold cost.
        let cost = sliding_window_cost(params, in_h, in_w);
        let k_dim = params.in_channels * params.kernel_h * params.kernel_w;
        if k_dim >= 64 {
            pool.push(SchemeChoice {
                scheme: ConvScheme::Im2col,
                cost: cost * model.im2col_discount,
            });
        }
    }

    let selected = pool
        .iter()
        .copied()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap())
        .expect("scheme pool is never empty");
    SchemeDecision {
        selected: selected.scheme,
        cost: selected.cost,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv(k: usize, ic: usize, oc: usize) -> ConvParams {
        ConvParams::square(ic, oc, k, k / 2)
    }

    #[test]
    fn pointwise_layers_choose_strassen_when_it_saves_multiplications() {
        // Very large 1x1 conv: Strassen recursion pays off and the estimated cost
        // drops below the direct multiplication count.
        let p = conv(1, 1024, 1024);
        let d = select_conv_scheme(&p, 40, 40, MAX_WINOGRAD_TILE);
        assert_eq!(d.selected, ConvScheme::Strassen1x1);
        assert!(d.cost < sliding_window_cost(&p, 40, 40));

        // Moderate 1x1 conv: below the recursion block threshold the costs tie, and
        // the Strassen path (which falls back to plain GEMM internally) is kept.
        let p = conv(1, 512, 512);
        let d = select_conv_scheme(&p, 32, 32, MAX_WINOGRAD_TILE);
        assert_eq!(d.selected, ConvScheme::Strassen1x1);
        assert!(d.cost <= sliding_window_cost(&p, 32, 32));

        // Tiny 1x1 conv: same story.
        let p = conv(1, 8, 8);
        let d = select_conv_scheme(&p, 4, 4, MAX_WINOGRAD_TILE);
        assert_eq!(d.selected, ConvScheme::Strassen1x1);
    }

    #[test]
    fn depthwise_layers_use_the_direct_kernel() {
        let p = ConvParams::square(32, 32, 3, 1).depthwise();
        let d = select_conv_scheme(&p, 56, 56, MAX_WINOGRAD_TILE);
        assert_eq!(d.selected, ConvScheme::Depthwise);
    }

    #[test]
    fn large_channel_3x3_layers_choose_winograd() {
        // Table 1, third setting: (3, 64, 64, 112) — Winograd with a large tile wins.
        let p = conv(3, 64, 64);
        let d = select_conv_scheme(&p, 112, 112, MAX_WINOGRAD_TILE);
        match d.selected {
            ConvScheme::Winograd { tile } => assert!(tile >= 2),
            other => panic!("expected Winograd, got {other}"),
        }
        assert!(d.cost < sliding_window_cost(&p, 112, 112));
    }

    #[test]
    fn strided_convolutions_never_pick_winograd() {
        let p = ConvParams::square(32, 64, 3, 1).with_stride(2);
        let d = select_conv_scheme(&p, 56, 56, MAX_WINOGRAD_TILE);
        assert!(!matches!(d.selected, ConvScheme::Winograd { .. }));
    }

    #[test]
    fn rectangular_kernels_use_im2col_or_sliding() {
        // Inception-v3's 1x7 convolution.
        let p = ConvParams {
            in_channels: 128,
            out_channels: 128,
            kernel_h: 1,
            kernel_w: 7,
            pad_h: 0,
            pad_w: 3,
            ..ConvParams::default()
        };
        let d = select_conv_scheme(&p, 17, 17, MAX_WINOGRAD_TILE);
        assert!(matches!(
            d.selected,
            ConvScheme::Im2col | ConvScheme::SlidingWindow
        ));
    }

    #[test]
    fn scheme_pool_contains_all_winograd_candidates() {
        let p = conv(3, 64, 64);
        let d = select_conv_scheme(&p, 56, 56, 6);
        let tiles: Vec<usize> = d
            .pool
            .iter()
            .filter_map(|c| match c.scheme {
                ConvScheme::Winograd { tile } => Some(tile),
                _ => None,
            })
            .collect();
        assert_eq!(tiles, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn table1_settings_prefer_winograd_for_heavy_channels() {
        // (2, 512, 512, 16): Winograd should beat sliding window by a wide margin in
        // multiplication count, as in Table 1 where sliding takes 895 ms vs ~287 ms.
        let p = conv(2, 512, 512);
        let d = select_conv_scheme(&p, 16, 16, MAX_WINOGRAD_TILE);
        assert!(matches!(d.selected, ConvScheme::Winograd { .. }));
        let sliding = sliding_window_cost(&p, 16, 16);
        assert!(d.cost < sliding * 0.8);
    }

    #[test]
    fn quantized_convs_select_the_integer_kernel() {
        let p = conv(3, 32, 64);
        let d = select_quantized_conv_scheme(&p, 28, 28);
        assert_eq!(d.selected, ConvScheme::QuantizedGemm);
        // The integer kernel must be modelled as cheaper than the float direct
        // path (that is what makes the selection deterministic)…
        assert!(d.cost < sliding_window_cost(&p, 28, 28));
        // …and the float candidate stays in the pool for the report.
        assert!(d.pool.iter().any(|c| c.scheme == ConvScheme::SlidingWindow));
    }

    #[test]
    fn quantized_depthwise_convs_fall_back_to_f32() {
        let p = ConvParams::square(32, 32, 3, 1).depthwise();
        let d = select_quantized_conv_scheme(&p, 56, 56);
        // Deterministic fallback: Depthwise is selected even though the pool
        // reports the integer candidate at its honestly-modelled cost (the
        // arithmetic model cannot see the memory-bound nature of the
        // channel-wise loop, which is why the selection is not min-cost here).
        assert_eq!(d.selected, ConvScheme::Depthwise);
        assert!(d
            .pool
            .iter()
            .any(|c| c.scheme == ConvScheme::QuantizedGemm && c.cost.is_finite()));
    }

    #[test]
    fn quantized_pointwise_convs_select_the_integer_kernel() {
        let p = conv(1, 256, 256);
        let d = select_quantized_conv_scheme(&p, 14, 14);
        assert_eq!(d.selected, ConvScheme::QuantizedGemm);
    }

    #[test]
    fn cost_model_constants_are_overridable() {
        // Pin the int8 factor: the reported quantized cost follows the
        // override exactly, which is what makes cost-dependent tests
        // reproducible across re-calibrations of the default.
        let p = conv(3, 32, 64);
        let pinned = CostModel {
            int8_cost_factor: 0.5,
            ..CostModel::default()
        };
        let d = select_quantized_conv_scheme_with(&p, 28, 28, &pinned);
        let quantize_pass = (32 * 28 * 28) as f64;
        let expected = p.mul_count(28, 28) as f64 * 0.5 + quantize_pass;
        assert!((d.cost - expected).abs() < 1e-6);
        assert!((quantized_fc_decision_with(1_000_000, &pinned).cost - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn weight_reuse_override_steers_winograd_selection() {
        // With an absurd weight-streaming surcharge, Winograd's modelled cost
        // explodes and the selection flips away from it — proving the
        // constant actually drives the decision.
        let p = conv(3, 64, 64);
        let default = select_conv_scheme_with(&p, 56, 56, MAX_WINOGRAD_TILE, &CostModel::default());
        assert!(matches!(default.selected, ConvScheme::Winograd { .. }));
        let hostile = CostModel {
            weight_reuse_tiles: 1e9,
            ..CostModel::default()
        };
        let flipped = select_conv_scheme_with(&p, 56, 56, MAX_WINOGRAD_TILE, &hostile);
        assert!(!matches!(flipped.selected, ConvScheme::Winograd { .. }));
    }

    #[test]
    fn default_cost_model_matches_the_free_functions() {
        let p = conv(3, 16, 32);
        assert_eq!(
            select_conv_scheme(&p, 32, 32, MAX_WINOGRAD_TILE),
            select_conv_scheme_with(&p, 32, 32, MAX_WINOGRAD_TILE, &CostModel::default())
        );
        assert_eq!(
            quantized_gemm_cost(&p, 32, 32),
            quantized_gemm_cost_with(&p, 32, 32, &CostModel::default())
        );
    }

    #[test]
    fn quantized_fc_decision_discounts_the_float_cost() {
        let d = quantized_fc_decision(1_000_000);
        assert_eq!(d.selected, ConvScheme::QuantizedGemm);
        assert!((d.cost - 1_000_000.0 * INT8_COST_FACTOR).abs() < 1e-6);
        assert!(d.pool.iter().any(|c| c.cost > d.cost));
    }

    proptest! {
        #[test]
        fn prop_selected_scheme_has_minimum_cost(
            k in 1usize..6, ic in 1usize..128, oc in 1usize..128, size in 4usize..64
        ) {
            let p = conv(k, ic, oc);
            let d = select_conv_scheme(&p, size, size, MAX_WINOGRAD_TILE);
            for candidate in &d.pool {
                prop_assert!(d.cost <= candidate.cost + 1e-6);
            }
        }

        #[test]
        fn prop_selected_cost_is_finite_and_positive(
            k in 1usize..8, ic in 1usize..64, oc in 1usize..64, size in 2usize..64
        ) {
            let p = conv(k, ic, oc);
            let size = size.max(k);
            let d = select_conv_scheme(&p, size, size, MAX_WINOGRAD_TILE);
            prop_assert!(d.cost.is_finite());
            prop_assert!(d.cost > 0.0);
        }
    }
}
