//! Error type for session creation and execution.

use mnn_backend::BackendError;
use mnn_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Errors produced by the interpreter / session layer.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying graph is malformed or shape inference failed.
    Graph(GraphError),
    /// A backend refused to create or run an execution.
    Backend(BackendError),
    /// The caller supplied the wrong number of inputs, or an input with the wrong
    /// shape.
    InvalidInput(String),
    /// A configuration value is inconsistent (e.g. an empty backend preference list).
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Backend(e) => write!(f, "backend error: {e}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(value: GraphError) -> Self {
        CoreError::Graph(value)
    }
}

impl From<BackendError> for CoreError {
    fn from(value: BackendError) -> Self {
        CoreError::Backend(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_graph_and_backend_errors() {
        let e: CoreError = GraphError::Cycle.into();
        assert!(e.to_string().contains("cycle"));
        assert!(e.source().is_some());
        let e: CoreError = BackendError::InvalidBuffer(3).into();
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
