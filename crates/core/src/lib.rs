//! The MNN-rs engine core: pre-inference, hybrid scheduling and sessions.
//!
//! This crate implements the paper's primary contribution — the **semi-automated
//! search** architecture:
//!
//! * [`scheme`] — computation scheme selection (paper Section 3.2, Eq. 2–3): per
//!   convolution, the cost model picks sliding-window, Winograd `F(n̂×n̂, k×k)` with
//!   the optimal tile size, or the Strassen-backed 1×1 path.
//! * [`cost`] — backend cost evaluation (Eq. 4–5) and hybrid scheduling: each
//!   operator is placed on the backend with the lowest estimated cost, falling back
//!   to the CPU when a GPU-style backend lacks the operator.
//! * [`memory_plan`] — preparation–execution decoupling (Fig. 3): the whole graph is
//!   virtually walked at session-creation time to compute a reusable memory plan.
//! * [`session`] — the user-facing [`Interpreter`] / [`Session`] API: create an
//!   interpreter from a graph, create a session (which runs pre-inference once), then
//!   run inferences repeatedly against pre-selected schemes, backends and memory.
//!
//! Scheme selection can additionally be **measured** instead of modelled: with
//! `SessionConfig::builder().tuning(TuningMode::Full)` pre-inference
//! micro-benchmarks every viable kernel per convolution via `mnn-tune` and
//! records the winners in a process-shared, device-keyed cache (persistable to
//! disk), with the cost model as fallback.
//!
//! # Quickstart
//!
//! ```
//! use mnn_core::{Interpreter, SessionConfig};
//! use mnn_graph::{Conv2dAttrs, GraphBuilder};
//! use mnn_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("demo");
//! let x = b.input("x", Shape::nchw(1, 3, 32, 32));
//! let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 8), true);
//! let graph = b.build(vec![y]);
//!
//! let interpreter = Interpreter::from_graph(graph)?;
//! let mut session = interpreter.create_session(SessionConfig::default())?;
//! let input = Tensor::zeros(Shape::nchw(1, 3, 32, 32));
//! let outputs = session.run(&[input])?;
//! assert_eq!(outputs[0].shape().dims(), &[1, 8, 32, 32]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cost;
mod error;
pub mod memory_plan;
mod pool;
pub mod scheme;
mod session;

pub use cost::GraphCost;
pub use error::CoreError;
pub use memory_plan::MemoryPlan;
pub use mnn_tune::{TuningMode, TuningStats};
pub use pool::{PooledSession, SessionPool};
pub use scheme::{CostModel, SchemeChoice, SchemeDecision};
pub use session::{
    Interpreter, NodePlacement, PreInferenceReport, RunStats, Session, SessionConfig,
    SessionConfigBuilder, DEFAULT_PLAN_CACHE_CAPACITY,
};
