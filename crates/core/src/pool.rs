//! A pool of pre-warmed, checked-out/checked-in [`Session`]s.
//!
//! Pre-inference (scheme selection, hybrid scheduling, the memory plan and
//! execution creation) is the expensive part of session construction — exactly
//! what a server must not pay per request. A [`SessionPool`] builds `size`
//! sessions up front from one [`Interpreter`] (all sharing the interpreter's
//! graph and weights through an `Arc`), then hands them out one at a time:
//! [`SessionPool::acquire`] blocks until a session is idle and returns a
//! [`PooledSession`] guard that checks the session back in on drop. Each
//! pooled session keeps its own per-geometry plan cache warm across checkouts,
//! so a server alternating between batch sizes re-plans only on first sight of
//! a geometry.
//!
//! With auto-tuning enabled
//! ([`SessionConfig::builder().tuning(...)`](crate::SessionConfig::builder)),
//! the pool's sessions share the process-wide device-keyed tuning cache: the
//! first session measures, the remaining `size - 1` find every signature
//! already tuned — pre-warm cost stays one tuning pass regardless of pool
//! size.

use crate::{CoreError, Interpreter, Session, SessionConfig};
use mnn_graph::Graph;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Shared pool state: idle sessions plus the condition variable that wakes
/// blocked acquirers.
struct PoolShared {
    idle: Mutex<Vec<Session>>,
    available: Condvar,
    /// Process-wide `mnn_session_pool_acquires_total` counter, registered once
    /// at pool construction so checkouts stay allocation-free.
    acquires: mnn_obs::Counter,
}

impl PoolShared {
    fn idle_sessions(&self) -> std::sync::MutexGuard<'_, Vec<Session>> {
        // A panic while a session is checked out only loses that session's
        // guard, never the pool invariants; recover from poisoning.
        self.idle.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size pool of pre-warmed sessions sharing one model.
///
/// Cloning the pool is cheap and yields another handle to the same sessions,
/// so producer threads can each own a handle.
///
/// ```
/// use mnn_core::{SessionConfig, SessionPool};
/// use mnn_graph::{Conv2dAttrs, GraphBuilder};
/// use mnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("demo");
/// let x = b.input("x", Shape::nchw(1, 3, 8, 8));
/// let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
/// let pool = SessionPool::from_graph(b.build(vec![y]), SessionConfig::cpu(1), 2)?;
///
/// let mut session = pool.acquire();
/// let out = session.run_with(&[("x", &Tensor::zeros(Shape::nchw(1, 3, 8, 8)))])?;
/// assert_eq!(out[0].shape().dims(), &[1, 4, 8, 8]);
/// drop(session); // checked back in for the next acquirer
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SessionPool {
    shared: Arc<PoolShared>,
    size: usize,
}

impl SessionPool {
    /// Build a pool of `size` pre-warmed sessions from an interpreter.
    ///
    /// Every session runs full pre-inference here, so `acquire` never pays a
    /// cold start.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `size` is 0 and propagates any
    /// session-creation failure.
    pub fn new(
        interpreter: &Interpreter,
        config: SessionConfig,
        size: usize,
    ) -> Result<Self, CoreError> {
        if size == 0 {
            return Err(CoreError::InvalidConfig(
                "session pool size must be >= 1".into(),
            ));
        }
        let mut sessions = Vec::with_capacity(size);
        for _ in 0..size {
            sessions.push(interpreter.create_session(config.clone())?);
        }
        Ok(SessionPool {
            shared: Arc::new(PoolShared {
                idle: Mutex::new(sessions),
                available: Condvar::new(),
                acquires: mnn_obs::global().counter(
                    mnn_obs::metrics::names::POOL_ACQUIRES,
                    "Session-pool checkouts.",
                ),
            }),
            size,
        })
    }

    /// Convenience: validate `graph`, infer shapes, and build a pool from it.
    ///
    /// # Errors
    ///
    /// Propagates graph validation and session-creation failures, and rejects
    /// `size == 0` like [`SessionPool::new`].
    pub fn from_graph(graph: Graph, config: SessionConfig, size: usize) -> Result<Self, CoreError> {
        let interpreter = Interpreter::from_graph(graph)?;
        Self::new(&interpreter, config, size)
    }

    /// Total number of sessions owned by the pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of sessions currently checked in (idle).
    pub fn available(&self) -> usize {
        self.shared.idle_sessions().len()
    }

    /// Check out a session, blocking until one is idle.
    pub fn acquire(&self) -> PooledSession {
        self.shared.acquires.inc();
        let mut idle = self.shared.idle_sessions();
        loop {
            if let Some(session) = idle.pop() {
                return PooledSession {
                    session: Some(session),
                    shared: Arc::clone(&self.shared),
                };
            }
            idle = self
                .shared
                .available
                .wait(idle)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Check out a session without blocking; `None` when all are busy.
    pub fn try_acquire(&self) -> Option<PooledSession> {
        self.shared.idle_sessions().pop().map(|session| {
            self.shared.acquires.inc();
            PooledSession {
                session: Some(session),
                shared: Arc::clone(&self.shared),
            }
        })
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("size", &self.size)
            .field("available", &self.available())
            .finish()
    }
}

/// RAII guard over a checked-out [`Session`]; derefs to the session and checks
/// it back into the pool on drop.
pub struct PooledSession {
    session: Option<Session>,
    shared: Arc<PoolShared>,
}

impl Deref for PooledSession {
    type Target = Session;

    fn deref(&self) -> &Session {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession {
    fn deref_mut(&mut self) -> &mut Session {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.shared.idle_sessions().push(session);
            self.shared.available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::{Shape, Tensor};
    use std::thread;
    use std::time::Duration;

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new("pool-test");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 4), true);
        b.build(vec![y])
    }

    #[test]
    fn rejects_empty_pool() {
        assert!(matches!(
            SessionPool::from_graph(small_graph(), SessionConfig::cpu(1), 0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn acquire_and_release_cycle() {
        let pool = SessionPool::from_graph(small_graph(), SessionConfig::cpu(1), 2).unwrap();
        assert_eq!(pool.size(), 2);
        assert_eq!(pool.available(), 2);

        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.available(), 0);
        assert!(pool.try_acquire().is_none());

        drop(a);
        assert_eq!(pool.available(), 1);
        assert!(pool.try_acquire().is_some()); // dropped immediately: back to 1
        drop(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pooled_sessions_run_inference() {
        let pool = SessionPool::from_graph(small_graph(), SessionConfig::cpu(1), 1).unwrap();
        let mut session = pool.acquire();
        let out = session
            .run_with(&[("x", &Tensor::full(Shape::nchw(1, 3, 8, 8), 0.5))])
            .unwrap();
        assert_eq!(out[0].shape().dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let pool = SessionPool::from_graph(small_graph(), SessionConfig::cpu(1), 1).unwrap();
        let held = pool.acquire();
        let contender = {
            let pool = pool.clone();
            thread::spawn(move || {
                let session = pool.acquire();
                session.input_names().len()
            })
        };
        // Give the contender time to block, then release.
        thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(contender.join().unwrap(), 1);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn pool_handles_are_send_and_cheap_to_clone() {
        fn assert_send<T: Send>() {}
        assert_send::<SessionPool>();
        assert_send::<PooledSession>();
    }
}
