//! The Interpreter / Session API and the pre-inference pipeline.
//!
//! Mirroring MNN's user-facing flow (paper Fig. 2, "on-device inference"):
//!
//! 1. An [`Interpreter`] is created from an (optimized) graph; it validates the graph
//!    and runs shape inference.
//! 2. [`Interpreter::create_session`] runs **pre-inference**: computation scheme
//!    selection for every convolution (Eq. 2–3), backend cost evaluation and hybrid
//!    scheduling (Eq. 4–5), the static memory plan (Fig. 3), and — when
//!    preparation–execution decoupling is enabled — creation of every execution
//!    instance (including Winograd weight transforms and simulated GPU command
//!    encoding).
//! 3. [`Session::run`] then performs pure computation against the pre-selected
//!    schemes, placements and memory.

use crate::cost::{hybrid_schedule, placement_cost_ms, Placement};
use crate::memory_plan::MemoryPlan;
use crate::scheme::{select_conv_scheme, SchemeDecision};
use crate::CoreError;
use mnn_backend::{
    Backend, ConvScheme, CpuBackend, Execution, ForwardType, GpuProfile, SchemeHint, SimGpuBackend,
};
use mnn_graph::{Graph, NodeId, Op, TensorId};
use mnn_tensor::Tensor;
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of a session, chosen by the application developer.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Backend preference list. The CPU is always available as the universal
    /// fallback even if it is not listed.
    pub forward_types: Vec<ForwardType>,
    /// CPU thread count (the paper evaluates 2 and 4 threads).
    pub threads: usize,
    /// Whether preparation (execution creation, weight transforms, GPU command
    /// encoding) is decoupled from execution. Disabling this reproduces the "w/o"
    /// rows of Table 2.
    pub decouple_preparation: bool,
    /// Largest Winograd output tile size considered by scheme selection.
    pub max_winograd_tile: usize,
    /// GPU profile used by simulated GPU backends.
    pub gpu_profile: GpuProfile,
    /// CPU FLOPS estimate override for the cost model (e.g. from a device profile).
    pub cpu_flops: Option<f64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            forward_types: vec![ForwardType::Cpu],
            threads: mnn_kernels::parallel::default_threads(),
            decouple_preparation: true,
            max_winograd_tile: crate::scheme::MAX_WINOGRAD_TILE,
            gpu_profile: GpuProfile::GENERIC,
            cpu_flops: None,
        }
    }
}

impl SessionConfig {
    /// CPU-only configuration with an explicit thread count.
    pub fn cpu(threads: usize) -> Self {
        SessionConfig {
            threads,
            ..SessionConfig::default()
        }
    }

    /// Configuration preferring a (simulated) GPU backend with the given profile.
    pub fn gpu(standard: ForwardType, profile: GpuProfile) -> Self {
        SessionConfig {
            forward_types: vec![standard, ForwardType::Cpu],
            gpu_profile: profile,
            ..SessionConfig::default()
        }
    }
}

/// The per-node outcome of pre-inference.
#[derive(Debug, Clone)]
pub struct NodePlacement {
    /// The node.
    pub node: NodeId,
    /// Node name (for reporting).
    pub name: String,
    /// Operator name.
    pub op: &'static str,
    /// Backend chosen by hybrid scheduling.
    pub forward_type: ForwardType,
    /// Convolution scheme chosen by the cost model, when the node is a convolution.
    pub scheme: Option<ConvScheme>,
    /// Estimated cost on the chosen backend, in milliseconds.
    pub estimated_cost_ms: f64,
}

/// Summary of everything pre-inference decided, for inspection and experiments.
#[derive(Debug)]
pub struct PreInferenceReport {
    /// Per-node backend/scheme decisions.
    pub placements: Vec<NodePlacement>,
    /// Estimated total cost of the placement, in milliseconds (Eq. 4).
    pub estimated_total_ms: f64,
    /// Arena elements required with live-range reuse.
    pub planned_memory_elements: usize,
    /// Elements required without reuse.
    pub unplanned_memory_elements: usize,
    /// Milliseconds spent in pre-inference (scheme search + execution creation).
    pub pre_inference_ms: f64,
}

impl PreInferenceReport {
    /// Fraction of intermediate memory saved by the plan.
    pub fn memory_savings_ratio(&self) -> f64 {
        if self.unplanned_memory_elements == 0 {
            return 0.0;
        }
        1.0 - self.planned_memory_elements as f64 / self.unplanned_memory_elements as f64
    }
}

/// Timing of one inference.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock milliseconds spent in `run` (CPU work measured for real).
    pub wall_ms: f64,
    /// Virtual milliseconds accumulated by simulated GPU backends during the run.
    pub gpu_virtual_ms: f64,
}

/// The model holder: owns the validated, shape-inferred graph.
#[derive(Debug)]
pub struct Interpreter {
    graph: Graph,
}

impl Interpreter {
    /// Create an interpreter, validating the graph and inferring every shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] when the graph is structurally invalid or shapes
    /// cannot be inferred.
    pub fn from_graph(mut graph: Graph) -> Result<Self, CoreError> {
        graph.validate()?;
        graph.infer_shapes()?;
        Ok(Interpreter { graph })
    }

    /// The underlying graph (shapes inferred).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Run pre-inference and build a session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for inconsistent configurations and
    /// propagates backend errors from execution creation.
    pub fn create_session(&self, config: SessionConfig) -> Result<Session<'_>, CoreError> {
        Session::create(&self.graph, config)
    }
}

/// One node scheduled for execution inside a session.
struct ScheduledNode {
    node: NodeId,
    backend_index: usize,
    hint: SchemeHint,
    /// Pre-created execution when preparation is decoupled from execution.
    execution: Option<Box<dyn Execution>>,
}

/// An inference session: pre-inference results plus runtime state.
pub struct Session<'g> {
    graph: &'g Graph,
    config: SessionConfig,
    backends: Vec<Box<dyn Backend>>,
    cpu_index: usize,
    order: Vec<NodeId>,
    scheduled: Vec<ScheduledNode>,
    report: PreInferenceReport,
    memory_plan: MemoryPlan,
    last_stats: RunStats,
}

impl<'g> Session<'g> {
    fn create(graph: &'g Graph, config: SessionConfig) -> Result<Self, CoreError> {
        if config.threads == 0 {
            return Err(CoreError::InvalidConfig("thread count must be >= 1".into()));
        }
        let start = Instant::now();

        // --- Backends -------------------------------------------------------
        let mut backends: Vec<Box<dyn Backend>> = Vec::new();
        let mut cpu_index = None;
        let mut forward_types = config.forward_types.clone();
        if !forward_types.contains(&ForwardType::Cpu) {
            forward_types.push(ForwardType::Cpu);
        }
        for ft in &forward_types {
            match ft {
                ForwardType::Cpu => {
                    let mut cpu = CpuBackend::new(config.threads);
                    if let Some(flops) = config.cpu_flops {
                        cpu = cpu.with_flops(flops);
                    }
                    cpu_index = Some(backends.len());
                    backends.push(Box::new(cpu));
                }
                gpu => {
                    let mut sim = SimGpuBackend::new(*gpu, config.gpu_profile);
                    sim.set_decoupled(config.decouple_preparation);
                    backends.push(Box::new(sim));
                }
            }
        }
        let cpu_index = cpu_index.expect("CPU backend is always present");

        // --- Hybrid scheduling (Eq. 4–5) -------------------------------------
        let backend_refs: Vec<&dyn Backend> = backends.iter().map(|b| b.as_ref()).collect();
        let placements: Vec<Placement> = hybrid_schedule(graph, &backend_refs, cpu_index);
        let estimated_total_ms = placement_cost_ms(&placements);

        // --- Scheme selection (Eq. 2–3) --------------------------------------
        let order = graph.topological_order()?;
        let mut scheduled = Vec::with_capacity(order.len());
        let mut report_placements = Vec::with_capacity(order.len());
        for node_id in &order {
            let node = graph.node(*node_id)?;
            let placement = placements
                .iter()
                .find(|p| p.node == *node_id)
                .expect("placement exists for every node");
            let scheme_decision: Option<SchemeDecision> = match &node.op {
                Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => {
                    let input_shape = graph
                        .tensor_info(node.inputs[0])?
                        .shape
                        .clone()
                        .ok_or_else(|| {
                            CoreError::InvalidInput(format!("no shape for input of {}", node.name))
                        })?;
                    Some(select_conv_scheme(
                        &attrs.to_conv_params(),
                        input_shape.height(),
                        input_shape.width(),
                        config.max_winograd_tile,
                    ))
                }
                _ => None,
            };
            let hint = SchemeHint {
                conv_scheme: scheme_decision.as_ref().map(|d| d.selected),
                threads: Some(config.threads),
            };
            report_placements.push(NodePlacement {
                node: *node_id,
                name: node.name.clone(),
                op: node.op.name(),
                forward_type: backends[placement.backend_index].forward_type(),
                scheme: hint.conv_scheme,
                estimated_cost_ms: placement.cost_ms,
            });
            scheduled.push(ScheduledNode {
                node: *node_id,
                backend_index: placement.backend_index,
                hint,
                execution: None,
            });
        }

        // --- Memory plan (Fig. 3) --------------------------------------------
        let memory_plan = MemoryPlan::build(graph)?;

        // --- Preparation–execution decoupling ---------------------------------
        if config.decouple_preparation {
            for entry in &mut scheduled {
                let node = graph.node(entry.node)?;
                let execution =
                    backends[entry.backend_index].on_create(node, graph, &entry.hint)?;
                entry.execution = Some(execution);
            }
        }

        let report = PreInferenceReport {
            placements: report_placements,
            estimated_total_ms,
            planned_memory_elements: memory_plan.planned_elements(),
            unplanned_memory_elements: memory_plan.unplanned_elements(),
            pre_inference_ms: start.elapsed().as_secs_f64() * 1000.0,
        };

        Ok(Session {
            graph,
            config,
            backends,
            cpu_index,
            order,
            scheduled,
            report,
            memory_plan,
            last_stats: RunStats::default(),
        })
    }

    /// The pre-inference report (schemes, placements, memory, estimated cost).
    pub fn report(&self) -> &PreInferenceReport {
        &self.report
    }

    /// The static memory plan computed at session creation.
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.memory_plan
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Timing of the most recent [`Session::run`].
    pub fn last_stats(&self) -> RunStats {
        self.last_stats
    }

    /// Run one inference. `inputs` must match the graph's declared inputs in order
    /// and shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on input-count/shape mismatch and
    /// propagates backend errors.
    pub fn run(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>, CoreError> {
        let graph_inputs = self.graph.inputs();
        if inputs.len() != graph_inputs.len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} inputs, got {}",
                graph_inputs.len(),
                inputs.len()
            )));
        }
        for (tensor, id) in inputs.iter().zip(graph_inputs) {
            let expected = self.graph.tensor_info(*id)?.shape.clone();
            if let Some(expected) = expected {
                if &expected != tensor.shape() {
                    return Err(CoreError::InvalidInput(format!(
                        "input {id} expects shape {expected}, got {}",
                        tensor.shape()
                    )));
                }
            }
        }

        // reset GPU virtual clocks so per-run stats are meaningful
        for backend in &mut self.backends {
            backend.reset_virtual_clock();
        }
        for backend in &mut self.backends {
            backend.on_execute_begin();
        }
        let start = Instant::now();

        // Remaining-use counts drive early release of intermediate tensors, the
        // runtime counterpart of the static plan.
        let mut remaining_uses: HashMap<TensorId, usize> = HashMap::new();
        for node in self.graph.nodes() {
            for input in &node.inputs {
                *remaining_uses.entry(*input).or_insert(0) += 1;
            }
        }
        for output in self.graph.outputs() {
            *remaining_uses.entry(*output).or_insert(0) += 1;
        }

        let mut storage: HashMap<TensorId, Tensor> = HashMap::new();
        for (tensor, id) in inputs.iter().zip(graph_inputs) {
            storage.insert(*id, tensor.clone());
        }

        for entry in &mut self.scheduled {
            let node = self.graph.node(entry.node)?;
            // Gather activation inputs (constants were captured at creation time).
            let mut activation_inputs: Vec<&Tensor> = Vec::new();
            for input in &node.inputs {
                let info = self.graph.tensor_info(*input)?;
                if info.is_constant {
                    continue;
                }
                let tensor = storage.get(input).ok_or_else(|| {
                    CoreError::InvalidInput(format!(
                        "tensor {input} required by node '{}' is not available",
                        node.name
                    ))
                })?;
                activation_inputs.push(tensor);
            }
            let mut output = Tensor::zeros(mnn_tensor::Shape::vector(1));
            if self.config.decouple_preparation {
                let execution = entry
                    .execution
                    .as_mut()
                    .expect("executions are pre-created when decoupled");
                execution.run(&activation_inputs, &mut output)?;
            } else {
                // Pay the preparation cost inside the inference loop (Table 2 "w/o").
                let mut execution =
                    self.backends[entry.backend_index].on_create(node, self.graph, &entry.hint)?;
                execution.run(&activation_inputs, &mut output)?;
            }
            drop(activation_inputs);
            storage.insert(node.outputs[0], output);

            // Release inputs whose last consumer has run (memory reuse at runtime).
            for input in &node.inputs {
                let info = self.graph.tensor_info(*input)?;
                if info.is_constant || self.graph.inputs().contains(input) {
                    continue;
                }
                if let Some(uses) = remaining_uses.get_mut(input) {
                    *uses = uses.saturating_sub(1);
                    if *uses == 0 {
                        storage.remove(input);
                    }
                }
            }
        }

        for backend in &mut self.backends {
            backend.on_execute_end();
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let gpu_virtual_ms: f64 = self.backends.iter().map(|b| b.virtual_elapsed_ms()).sum();
        self.last_stats = RunStats {
            wall_ms,
            gpu_virtual_ms,
        };

        let mut outputs = Vec::with_capacity(self.graph.outputs().len());
        for id in self.graph.outputs() {
            let tensor = storage.remove(id).ok_or_else(|| {
                CoreError::InvalidInput(format!("graph output {id} was never produced"))
            })?;
            outputs.push(tensor);
        }
        Ok(outputs)
    }

    /// Run `runs` timed inferences after `warmup` untimed ones and return the mean
    /// wall-clock and virtual-GPU milliseconds per inference.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Session::run`].
    pub fn benchmark(
        &mut self,
        inputs: &[Tensor],
        warmup: usize,
        runs: usize,
    ) -> Result<RunStats, CoreError> {
        for _ in 0..warmup {
            self.run(inputs)?;
        }
        let mut total = RunStats::default();
        for _ in 0..runs.max(1) {
            self.run(inputs)?;
            let stats = self.last_stats();
            total.wall_ms += stats.wall_ms;
            total.gpu_virtual_ms += stats.gpu_virtual_ms;
        }
        let n = runs.max(1) as f64;
        Ok(RunStats {
            wall_ms: total.wall_ms / n,
            gpu_virtual_ms: total.gpu_virtual_ms / n,
        })
    }

    /// Index of the CPU fallback backend in this session's backend list.
    pub fn cpu_backend_index(&self) -> usize {
        self.cpu_index
    }

    /// Execution order used by the session (topological).
    pub fn execution_order(&self) -> &[NodeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{ActivationKind, BinaryKind, Conv2dAttrs, FlattenAttrs, GraphBuilder, PoolAttrs};
    use mnn_tensor::Shape;

    fn small_cnn() -> Graph {
        let mut b = GraphBuilder::new("small-cnn");
        let x = b.input("x", Shape::nchw(1, 3, 16, 16));
        let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(3, 8), true);
        let y = b.activation("relu1", y, ActivationKind::Relu);
        let skip = b.conv2d_auto("proj", y, Conv2dAttrs::pointwise(8, 8), false);
        let y2 = b.conv2d_auto("conv2", y, Conv2dAttrs::same_3x3(8, 8), false);
        let y = b.binary("residual", y2, skip, BinaryKind::Add);
        let y = b.pool("pool", y, PoolAttrs::global_avg());
        let y = b.flatten("flat", y, FlattenAttrs { start_axis: 1 });
        let y = b.fully_connected_auto("fc", y, 8, 4);
        let y = b.softmax("prob", y);
        b.build(vec![y])
    }

    fn input_tensor() -> Tensor {
        Tensor::from_vec(
            Shape::nchw(1, 3, 16, 16),
            (0..768).map(|v| ((v % 23) as f32 - 11.0) * 0.05).collect(),
        )
    }

    #[test]
    fn end_to_end_cpu_inference_produces_probabilities() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let outputs = session.run(&[input_tensor()]).unwrap();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].shape().dims(), &[1, 4]);
        let sum: f32 = outputs[0].data_f32().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax outputs must sum to 1");
    }

    #[test]
    fn decoupled_and_coupled_modes_agree_numerically() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut with = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let mut without = interpreter
            .create_session(SessionConfig {
                decouple_preparation: false,
                ..SessionConfig::cpu(2)
            })
            .unwrap();
        let input = input_tensor();
        let a = with.run(std::slice::from_ref(&input)).unwrap();
        let b = without.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].max_abs_diff(&b[0]) < 1e-5);
    }

    #[test]
    fn gpu_session_matches_cpu_session_outputs() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut cpu = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let mut gpu = interpreter
            .create_session(SessionConfig::gpu(
                ForwardType::Vulkan,
                GpuProfile::by_name("Mali-G72"),
            ))
            .unwrap();
        let input = input_tensor();
        let a = cpu.run(std::slice::from_ref(&input)).unwrap();
        let b = gpu.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].max_abs_diff(&b[0]) < 1e-4);
        // The GPU session must actually have used the simulated GPU for heavy ops.
        assert!(gpu.last_stats().gpu_virtual_ms > 0.0);
        let report = gpu.report();
        assert!(report
            .placements
            .iter()
            .any(|p| p.forward_type == ForwardType::Vulkan));
        // The fully-connected head is not GPU-supported: hybrid scheduling keeps it
        // on the CPU within the same session.
        assert!(report
            .placements
            .iter()
            .any(|p| p.op == "FullyConnected" && p.forward_type == ForwardType::Cpu));
    }

    #[test]
    fn report_contains_schemes_for_convolutions() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let report = session.report();
        let conv_placements: Vec<_> = report
            .placements
            .iter()
            .filter(|p| p.op == "Conv2d")
            .collect();
        assert_eq!(conv_placements.len(), 3);
        assert!(conv_placements.iter().all(|p| p.scheme.is_some()));
        assert!(report.estimated_total_ms > 0.0);
        assert!(report.planned_memory_elements > 0);
        assert!(report.planned_memory_elements <= report.unplanned_memory_elements);
    }

    #[test]
    fn input_validation_rejects_wrong_shapes_and_counts() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
        assert!(session.run(&[]).is_err());
        let wrong = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
        assert!(session.run(&[wrong]).is_err());
    }

    #[test]
    fn benchmark_returns_positive_averages() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let stats = session.benchmark(&[input_tensor()], 1, 3).unwrap();
        assert!(stats.wall_ms > 0.0);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
        let input = input_tensor();
        let a = session.run(std::slice::from_ref(&input)).unwrap();
        let b = session.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].data_f32(), b[0].data_f32());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let interpreter = Interpreter::from_graph(small_cnn()).unwrap();
        let err = interpreter
            .create_session(SessionConfig {
                threads: 0,
                ..SessionConfig::default()
            })
            .err()
            .unwrap();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }
}
