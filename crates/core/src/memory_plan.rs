//! Static memory planning: the "virtual walk" of paper Fig. 3.
//!
//! Because input sizes are fixed, every intermediate tensor's size is known after
//! shape inference, so the engine can simulate the whole inference — recording each
//! allocation and release — once at session-creation time. The resulting plan
//! assigns every intermediate tensor an offset in a single reusable arena; buffers
//! whose live ranges do not overlap share memory.

use crate::CoreError;
use mnn_backend::memory::{MemoryPlanner, PlanId};
use mnn_graph::{Graph, TensorId};
use std::collections::HashMap;

/// The memory plan produced by the virtual walk.
///
/// The walk is performed in **bytes**, honouring each slot's element type
/// ([`TensorInfo::dtype`](mnn_graph::TensorInfo)): an int8 intermediate costs one
/// byte per element where an `f32` costs four. The element-based accessors
/// report `f32`-equivalent counts for continuity with the paper's tables.
#[derive(Debug)]
pub struct MemoryPlan {
    /// Assignment of each planned (non-constant, non-input) tensor to an arena slot.
    assignments: HashMap<TensorId, PlanId>,
    /// Arena size in bytes with live-range reuse.
    planned_bytes: usize,
    /// Total bytes that would be needed without any reuse (sum of all
    /// intermediate tensor sizes).
    unplanned_bytes: usize,
    planner: MemoryPlanner,
}

impl MemoryPlan {
    /// Build the plan for `graph` (shapes must already be inferred).
    ///
    /// The walk visits nodes in topological order; a node's output buffer is
    /// acquired before it runs and each input buffer is released after its last
    /// consumer has run — exactly the interleaving shown in Fig. 3, performed
    /// entirely ahead of real execution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the graph is cyclic or a shape is missing.
    pub fn build(graph: &Graph) -> Result<Self, CoreError> {
        let order = graph.topological_order()?;

        // Count how many consumers each tensor has among graph nodes; graph outputs
        // get an extra reference so they are never recycled.
        let mut remaining_uses: HashMap<TensorId, usize> = HashMap::new();
        for node in graph.nodes() {
            for input in &node.inputs {
                *remaining_uses.entry(*input).or_insert(0) += 1;
            }
        }
        for output in graph.outputs() {
            *remaining_uses.entry(*output).or_insert(0) += 1;
        }

        let mut planner = MemoryPlanner::new();
        let mut assignments = HashMap::new();
        let mut unplanned = 0usize;

        let tensor_bytes = |id: TensorId| -> Result<usize, CoreError> {
            let info = graph.tensor_info(id)?;
            let shape = info.shape.as_ref().ok_or_else(|| {
                CoreError::InvalidInput(format!("tensor {id} has no inferred shape"))
            })?;
            Ok(shape.num_elements() * info.dtype.size_of())
        };

        for node_id in order {
            let node = graph.node(node_id)?;
            // Acquire the output buffer.
            for output in &node.outputs {
                let bytes = tensor_bytes(*output)?;
                unplanned += bytes;
                let plan = planner.plan_acquire(bytes);
                assignments.insert(*output, plan);
            }
            // Release inputs whose last consumer has now run.
            for input in &node.inputs {
                let info = graph.tensor_info(*input)?;
                if info.is_constant || graph.inputs().contains(input) {
                    continue;
                }
                if let Some(uses) = remaining_uses.get_mut(input) {
                    *uses -= 1;
                    if *uses == 0 {
                        if let Some(plan) = assignments.get(input) {
                            planner.plan_release(*plan);
                        }
                    }
                }
            }
        }

        Ok(MemoryPlan {
            assignments,
            planned_bytes: planner
                .buffers()
                .iter()
                .map(|b| b.offset + b.len)
                .max()
                .unwrap_or(0),
            unplanned_bytes: unplanned,
            planner,
        })
    }

    /// Arena size in bytes required with reuse (dtype-accurate: int8 slots count
    /// one byte per element).
    ///
    /// This is also the figure a session charges to the `mnn_obs::resources`
    /// ledger for its active plan (and per parked plan in the plan cache), so
    /// `/v1/status` per-model "arena" bytes are sums of this value.
    pub fn planned_bytes(&self) -> usize {
        self.planned_bytes
    }

    /// Total bytes needed if every intermediate tensor had its own buffer.
    pub fn unplanned_bytes(&self) -> usize {
        self.unplanned_bytes
    }

    /// Arena size in `f32`-equivalent elements required with reuse.
    pub fn planned_elements(&self) -> usize {
        self.planned_bytes.div_ceil(4)
    }

    /// Total `f32`-equivalent elements needed if every intermediate tensor had its
    /// own buffer.
    pub fn unplanned_elements(&self) -> usize {
        self.unplanned_bytes.div_ceil(4)
    }

    /// Memory saved by reuse, as a fraction of the unplanned total (0 when the graph
    /// has no intermediates).
    pub fn savings_ratio(&self) -> f64 {
        if self.unplanned_bytes == 0 {
            return 0.0;
        }
        1.0 - self.planned_bytes as f64 / self.unplanned_bytes as f64
    }

    /// The arena slot assigned to a tensor, if it was planned.
    pub fn assignment(&self, id: TensorId) -> Option<PlanId> {
        self.assignments.get(&id).copied()
    }

    /// The underlying planner (offsets/lengths), for building an arena.
    pub fn planner(&self) -> &MemoryPlanner {
        &self.planner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{ActivationKind, Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn chain(depth: usize) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut x = b.input("x", Shape::nchw(1, 8, 32, 32));
        for i in 0..depth {
            x = b.activation(&format!("relu{i}"), x, ActivationKind::Relu);
        }
        let mut g = b.build(vec![x]);
        g.infer_shapes().unwrap();
        g
    }

    #[test]
    fn chain_of_equal_tensors_needs_two_slots() {
        let g = chain(10);
        let plan = MemoryPlan::build(&g).unwrap();
        let one = 8 * 32 * 32;
        assert_eq!(plan.unplanned_elements(), 10 * one);
        assert!(plan.planned_elements() <= 2 * one);
        assert!(plan.savings_ratio() > 0.5);
    }

    #[test]
    fn residual_branches_keep_both_operands_live() {
        let mut b = GraphBuilder::new("residual");
        let x = b.input("x", Shape::nchw(1, 4, 16, 16));
        let a = b.activation("branch_a", x, ActivationKind::Relu);
        let c = b.activation("branch_b", x, ActivationKind::Sigmoid);
        let sum = b.binary("sum", a, c, mnn_graph::BinaryKind::Add);
        let mut g = b.build(vec![sum]);
        g.infer_shapes().unwrap();
        let plan = MemoryPlan::build(&g).unwrap();
        let one = 4 * 16 * 16;
        // Both branch outputs are simultaneously live, plus the sum output.
        assert!(plan.planned_elements() >= 2 * one);
        assert!(plan.planned_elements() <= 3 * one);
    }

    #[test]
    fn graph_outputs_are_never_recycled() {
        let g = chain(3);
        let plan = MemoryPlan::build(&g).unwrap();
        let out = g.outputs()[0];
        assert!(plan.assignment(out).is_some());
    }

    #[test]
    fn conv_network_plans_every_intermediate() {
        let mut b = GraphBuilder::new("convnet");
        let x = b.input("x", Shape::nchw(1, 3, 32, 32));
        let y = b.conv2d_auto("c1", x, Conv2dAttrs::same_3x3(3, 16), false);
        let y = b.conv2d_auto("c2", y, Conv2dAttrs::square(16, 32, 3, 2, 1), false);
        let y = b.conv2d_auto("c3", y, Conv2dAttrs::pointwise(32, 64), false);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        let plan = MemoryPlan::build(&g).unwrap();
        for node in g.nodes() {
            assert!(plan.assignment(node.outputs[0]).is_some());
        }
        assert!(plan.planned_elements() < plan.unplanned_elements());
    }

    #[test]
    fn missing_shapes_are_reported() {
        let mut b = GraphBuilder::new("noshapes");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.activation("relu", x, ActivationKind::Relu);
        let g = b.build(vec![y]);
        // infer_shapes() not called
        assert!(MemoryPlan::build(&g).is_err());
    }
}
