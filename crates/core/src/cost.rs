//! Backend cost evaluation and hybrid scheduling (paper Eq. 4–5, Section 3.4).
//!
//! The backend term of `C_total = C_algorithm + C_backend` sums, over all operators,
//! the estimated time on each candidate backend:
//!
//! ```text
//! C_op = MUL / FLOPS * 1000                 (CPU)
//! C_op = MUL / FLOPS * 1000 + t_schedule    (GPU)
//! ```
//!
//! Whole-graph placement can either put every operator on the single cheapest
//! backend (the paper's Eq. 4 "choose the backend with minimal total cost") or place
//! each operator individually — *hybrid scheduling* — falling back to the CPU for
//! operators the GPU backend does not implement.

use mnn_backend::{Backend, BackendDescriptor};
use mnn_graph::{Graph, NodeId};

/// A whole-graph cost estimate, together with how complete it is.
///
/// `skipped_nodes` counts nodes whose multiplication count could not be
/// estimated (unknown shapes): their cost is **missing from the sum**, so a
/// placement decided on a partial sum should be treated with suspicion. The
/// count is surfaced in `PreInferenceReport` so hybrid placement is never
/// silently decided on incomplete information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphCost {
    /// Sum of per-node cost estimates, in milliseconds (Eq. 4).
    pub cost_ms: f64,
    /// Nodes excluded from the sum because their shapes are unknown.
    pub skipped_nodes: usize,
}

/// Number of nodes in `graph` whose cost cannot be estimated (unknown
/// shapes) — the nodes every Eq. 4 sum over this graph silently excludes.
pub fn skipped_cost_nodes(graph: &Graph) -> usize {
    graph
        .nodes()
        .iter()
        .filter(|node| graph.node_mul_count(node).is_none())
        .count()
}

/// Estimated cost of running every node of `graph` on the backend described by
/// `descriptor` (Eq. 4), reporting how many nodes had to be skipped for
/// unknown shapes.
pub fn graph_cost(graph: &Graph, descriptor: &BackendDescriptor) -> GraphCost {
    let cost_ms = graph
        .nodes()
        .iter()
        .filter_map(|node| graph.node_mul_count(node))
        .map(|muls| descriptor.op_cost_ms(muls))
        .sum();
    GraphCost {
        cost_ms,
        skipped_nodes: skipped_cost_nodes(graph),
    }
}

/// Estimated cost of running every node of `graph` on the backend described by
/// `descriptor` (Eq. 4). Thin wrapper over [`graph_cost`] that discards the
/// skipped-node count; prefer [`graph_cost`] where completeness matters.
pub fn graph_cost_ms(graph: &Graph, descriptor: &BackendDescriptor) -> f64 {
    graph_cost(graph, descriptor).cost_ms
}

/// Pick the index of the backend with the smallest whole-graph cost (Eq. 4).
///
/// Returns `None` when `backends` is empty.
pub fn select_backend(graph: &Graph, backends: &[&dyn Backend]) -> Option<usize> {
    (0..backends.len()).min_by(|&a, &b| {
        let ca = graph_cost(graph, &backends[a].descriptor()).cost_ms;
        let cb = graph_cost(graph, &backends[b].descriptor()).cost_ms;
        ca.partial_cmp(&cb).unwrap()
    })
}

/// Per-node backend placement produced by hybrid scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The node being placed.
    pub node: NodeId,
    /// Index into the backend list passed to [`hybrid_schedule`].
    pub backend_index: usize,
    /// Estimated cost of the node on that backend, in milliseconds.
    pub cost_ms: f64,
}

/// Assign every node to the cheapest backend that supports its operator
/// (Section 3.4, "enable hybrid scheduling").
///
/// `fallback` is the index of the backend guaranteed to support everything (the
/// CPU); it is used when no other backend supports an operator.
///
/// # Panics
///
/// Panics if `backends` is empty or `fallback` is out of range.
pub fn hybrid_schedule(
    graph: &Graph,
    backends: &[&dyn Backend],
    fallback: usize,
) -> Vec<Placement> {
    assert!(!backends.is_empty(), "at least one backend is required");
    assert!(fallback < backends.len(), "fallback index out of range");
    graph
        .nodes()
        .iter()
        .map(|node| {
            let muls = graph.node_mul_count(node).unwrap_or(0);
            let mut best: Option<(usize, f64)> = None;
            for (i, backend) in backends.iter().enumerate() {
                if !backend.supports(&node.op) {
                    continue;
                }
                let cost = backend.descriptor().op_cost_ms(muls);
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some((i, cost));
                }
            }
            let (backend_index, cost_ms) = best
                .unwrap_or_else(|| (fallback, backends[fallback].descriptor().op_cost_ms(muls)));
            Placement {
                node: node.id,
                backend_index,
                cost_ms,
            }
        })
        .collect()
}

/// Total estimated cost of a hybrid placement, in milliseconds.
pub fn placement_cost_ms(placements: &[Placement]) -> f64 {
    placements.iter().map(|p| p.cost_ms).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_backend::{CpuBackend, ForwardType, GpuProfile, SimGpuBackend};
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn conv_heavy_graph() -> Graph {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", Shape::nchw(1, 32, 56, 56));
        let y = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(32, 64), false);
        let y = b.conv2d_auto("conv2", y, Conv2dAttrs::same_3x3(64, 64), false);
        let y = b.flatten("flat", y, mnn_graph::FlattenAttrs { start_axis: 1 });
        let y = b.fully_connected_auto("fc", y, 64 * 56 * 56, 10);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        g
    }

    #[test]
    fn graph_cost_scales_inversely_with_flops() {
        let g = conv_heavy_graph();
        let slow = CpuBackend::new(1).descriptor();
        let fast = CpuBackend::new(4).descriptor();
        assert!(graph_cost_ms(&g, &slow) > graph_cost_ms(&g, &fast));
    }

    #[test]
    fn graph_cost_reports_skipped_nodes_instead_of_hiding_them() {
        let g = conv_heavy_graph();
        let d = CpuBackend::new(1).descriptor();
        // Fully-inferred graph: nothing skipped.
        assert_eq!(graph_cost(&g, &d).skipped_nodes, 0);

        // Erase an intermediate shape: the node's cost drops out of the sum
        // and the skip is counted rather than silently swallowed.
        let mut partial = g.clone();
        let conv2_input = partial.nodes()[1].inputs[0];
        partial.tensor_info_mut(conv2_input).unwrap().shape = None;
        let cost = graph_cost(&partial, &d);
        assert!(cost.skipped_nodes >= 1);
        assert!(cost.cost_ms < graph_cost(&g, &d).cost_ms);
        assert_eq!(graph_cost_ms(&partial, &d), cost.cost_ms);
    }

    #[test]
    fn select_backend_prefers_the_faster_gpu_for_heavy_graphs() {
        let g = conv_heavy_graph();
        let cpu = CpuBackend::new(2);
        let gpu = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::by_name("Mali-G72"));
        let backends: Vec<&dyn Backend> = vec![&cpu, &gpu];
        // Mali-G72 (31.6 GFLOPS) vastly outruns the 4 GFLOPS 2-thread CPU estimate.
        assert_eq!(select_backend(&g, &backends), Some(1));
    }

    #[test]
    fn hybrid_schedule_places_unsupported_ops_on_cpu() {
        let g = conv_heavy_graph();
        let cpu = CpuBackend::new(2);
        let gpu = SimGpuBackend::new(ForwardType::Vulkan, GpuProfile::by_name("Mali-G72"));
        let backends: Vec<&dyn Backend> = vec![&cpu, &gpu];
        let placements = hybrid_schedule(&g, &backends, 0);
        assert_eq!(placements.len(), g.nodes().len());
        // Convolutions land on the (fast) GPU…
        assert_eq!(placements[0].backend_index, 1);
        assert_eq!(placements[1].backend_index, 1);
        // …while the fully-connected head, unsupported there, stays on the CPU.
        let fc_index = g
            .nodes()
            .iter()
            .position(|n| matches!(n.op, mnn_graph::Op::FullyConnected { .. }))
            .unwrap();
        assert_eq!(placements[fc_index].backend_index, 0);
    }

    #[test]
    fn hybrid_cost_is_no_worse_than_single_backend_cost() {
        let g = conv_heavy_graph();
        let cpu = CpuBackend::new(2);
        let gpu = SimGpuBackend::new(ForwardType::OpenCl, GpuProfile::by_name("Adreno 540"));
        let backends: Vec<&dyn Backend> = vec![&cpu, &gpu];
        let hybrid = placement_cost_ms(&hybrid_schedule(&g, &backends, 0));
        let cpu_only = graph_cost_ms(&g, &cpu.descriptor());
        // Hybrid may only improve on the universal CPU placement.
        assert!(hybrid <= cpu_only + 1e-9);
    }

    #[test]
    fn tiny_graphs_prefer_cpu_due_to_schedule_overhead() {
        // A graph of many trivially small ops: per-op GPU schedule overhead dominates.
        let mut b = GraphBuilder::new("tiny");
        let mut x = b.input("x", Shape::nchw(1, 1, 4, 4));
        for i in 0..20 {
            x = b.activation(&format!("relu{i}"), x, mnn_graph::ActivationKind::Relu);
        }
        let mut g = b.build(vec![x]);
        g.infer_shapes().unwrap();
        let cpu = CpuBackend::new(1);
        let gpu = SimGpuBackend::new(ForwardType::OpenCl, GpuProfile::by_name("Adreno 540"));
        let backends: Vec<&dyn Backend> = vec![&cpu, &gpu];
        assert_eq!(select_backend(&g, &backends), Some(0));
        let placements = hybrid_schedule(&g, &backends, 0);
        assert!(placements.iter().all(|p| p.backend_index == 0));
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn hybrid_schedule_requires_backends() {
        let g = conv_heavy_graph();
        hybrid_schedule(&g, &[], 0);
    }
}
