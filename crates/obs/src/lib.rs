//! # `mnn-obs` — observability for the MNN-rs serving stack
//!
//! The paper's engineering method is *measurement-driven*: MNN picks kernels
//! and backends from measured cost, and its Fig. 8 bottleneck study is a
//! per-op wall-time breakdown. This crate makes the same evidence available
//! at **inference time**, across the whole stack, in three layers:
//!
//! * [`Profiler`] — an opt-in per-op runtime profiler. A session configured
//!   with `SessionConfig::builder().profiling(profiler)` records one span per
//!   executed node (node name, op type, scheme + placement, output shape,
//!   wall time, bytes moved) with **zero timer calls when profiling is off**.
//!   Spans aggregate into a [`ProfileReport`] (per-op-type totals, hottest
//!   nodes, % of wall time — the Fig. 8 table, but live) and export as
//!   chrome://tracing Trace Event Format JSON ([`Profiler::chrome_trace`]).
//! * [`metrics`] — a process-wide registry of lock-free [`Counter`]s,
//!   [`Gauge`]s and [`Histogram`]s with a stable naming scheme
//!   ([`metrics::names`]), rendered in Prometheus text exposition format
//!   ([`Registry::render_prometheus`]) and served by `mnn-http` at
//!   `GET /metrics`. The engine layers (session prepare/resize/plan-cache,
//!   tuning cache, serve queue/batcher/workers, HTTP handler) all write into
//!   [`metrics::global`].
//! * [`log`] — a leveled structured log facade ([`log!`], [`error!`],
//!   [`warn!`], [`info!`], [`debug!`], [`trace!`]) filtered by the `MNN_LOG`
//!   environment variable with an injectable sink, replacing the workspace's
//!   ad-hoc `eprintln!`s. Lines emitted inside a trace scope automatically
//!   carry `trace_id=`.
//! * [`context`] + [`recorder`] — request-scoped distributed tracing: a
//!   [`TraceContext`] (W3C `traceparent` parse/format) is created or adopted
//!   per request, carried through queueing, batching and inference, and every
//!   completed request lands as a [`RequestTrace`] — a per-stage waterfall
//!   (`parse → queue_wait → batch_assembly → inference → scatter → write`)
//!   with nested per-op spans — in a bounded [`FlightRecorder`] (ring of
//!   recent traces + always-kept slow-request reservoir), exported as JSON
//!   and chrome://tracing. With tracing off, every instrumented path costs a
//!   single relaxed atomic load, like the profiler.
//! * [`resources`] + [`slo`] — resource observability: a process-wide byte
//!   ledger ([`AccountedBytes`] handles charged by sessions, plan caches,
//!   model constants and the tune cache, rolled up per model and
//!   process-wide next to `/proc/self` RSS/thread gauges), and rolling-window
//!   SLO tracking ([`SloTracker`]: availability + latency objectives with
//!   burn rates). Both feed `/metrics` and the `mnn-http` `/v1/status`
//!   operator surface. Charging an account is one relaxed atomic op.
//!
//! The crate sits below every engine layer (its only runtime dependencies
//! are `serde` and the dependency-free `mnn-kernels`, for naming the active
//! kernel backend in build info), so tensor-to-HTTP code can share one
//! vocabulary of evidence.

#![deny(missing_docs)]

pub mod context;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod resources;
pub mod slo;
mod trace;

pub use context::{OpCapture, TraceContext, TraceScope};
pub use log::{set_max_level, set_sink, Level, LogSink, StderrSink};
pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use profile::{NodeBreakdown, OpBreakdown, ProfileReport, Profiler, RunRecorder, SpanRecord};
pub use recorder::{ActiveTrace, BatchLink, FlightRecorder, RequestTrace, StageSpan};
pub use resources::{AccountedBytes, BuildInfo, ResourceSnapshot, ScopeResources};
pub use slo::{SloConfig, SloSnapshot, SloTracker};
